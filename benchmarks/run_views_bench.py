#!/usr/bin/env python
"""Record the view/storage kernel benchmarks in ``BENCH_views.json``.

Runs the storage, view-construction, and scalability benchmark modules
under ``pytest-benchmark --benchmark-json`` and writes the raw results
to the repository root (override with ``-o``), so successive PRs can
track the performance trajectory of the columnar engine against the
sparse-dict baseline.  After the run it prints the dict/engine speedup
for every bulk-kernel pair; the acceptance bar is >= 5x on the
``tree-6x3`` and ``wide-400`` shapes.

Usage::

    python benchmarks/run_views_bench.py [-o BENCH_views.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

BENCH_FILES = (
    "benchmarks/bench_storage.py",
    "benchmarks/bench_views.py",
    "benchmarks/bench_scalability.py",
)

KERNELS = ("attribution", "top_k", "shares")
SHAPES = ("tree-6x3", "wide-400")


def report_speedups(json_path: Path) -> None:
    data = json.loads(json_path.read_text())
    means = {b["name"]: b["stats"]["mean"] for b in data["benchmarks"]}
    print()
    print("bulk-kernel speedups (dict mean / engine mean):")
    for shape in SHAPES:
        for kernel in KERNELS:
            dict_mean = means.get(f"test_bench_bulk_{kernel}_dict[{shape}]")
            engine_mean = means.get(f"test_bench_bulk_{kernel}_engine[{shape}]")
            if not dict_mean or not engine_mean:
                continue
            print(f"  {shape:10s} {kernel:12s} {dict_mean / engine_mean:8.1f}x")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_views.json",
        help="output path, relative to the repository root",
    )
    args = parser.parse_args(argv)
    out = (REPO / args.output).resolve()

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "pytest", *BENCH_FILES,
        "--benchmark-only", f"--benchmark-json={out}",
    ]
    code = subprocess.run(cmd, cwd=REPO, env=env).returncode
    if code:
        return code
    report_speedups(out)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmarks for the concurrent analysis service.

Measures the request pipeline at two levels: the transport-independent
app core (decode → route → lock → cache → render) and the full HTTP
round trip through ``ThreadingHTTPServer``.  The cached-render benchmark
is the tier-1 ``bench_smoke`` sentinel for this subsystem: it keeps the
server importable and its hot path passing on every run.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.obs import span, uninstall
from repro.server import AnalysisApp, build_server

RENDER = json.dumps({"view": "cct", "depth": 3}).encode()


@pytest.fixture(scope="module")
def app():
    instance = AnalysisApp()
    status, _ = instance.handle("POST", "/sessions", b'{"workload": "fig1"}')
    assert status == 201
    return instance


@pytest.fixture(scope="module")
def cold_app():
    instance = AnalysisApp(cache_size=0)
    status, _ = instance.handle("POST", "/sessions", b'{"workload": "fig1"}')
    assert status == 201
    return instance


@pytest.fixture(scope="module")
def server():
    srv = build_server(workload="fig1", port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)


@pytest.mark.bench_smoke
def test_bench_server_cached_render(benchmark, app):
    """App-core latency of a cache-hit render (the steady-state path)."""

    def hit():
        status, payload = app.handle("POST", "/sessions/s1/render", RENDER)
        assert status == 200
        return payload

    hit()  # warm: populate the cache so the measured path is the hit
    payload = benchmark(hit)
    assert payload["text"].startswith("== Calling Context View: fig1 ==")
    assert app.cache.stats()["hits"] >= 1


def test_bench_server_uncached_render(benchmark, cold_app):
    """Full render cost per request when caching is disabled."""

    def miss():
        status, payload = cold_app.handle(
            "POST", "/sessions/s1/render", RENDER
        )
        assert status == 200
        return payload

    payload = benchmark(miss)
    assert "cycles (I)" in payload["text"]


def test_bench_server_hotpath(benchmark, cold_app):
    def run():
        status, payload = cold_app.handle(
            "POST", "/sessions/s1/hotpath", b'{"threshold": 0.5}'
        )
        assert status == 200
        return payload

    payload = benchmark(run)
    assert payload["hotspot"]


@pytest.mark.bench_smoke
def test_bench_disabled_span_is_noop(benchmark):
    """Cost of one *disabled* span hook site — what every untraced
    deployment pays at each instrumentation point.  Must stay within
    nanoseconds: one global read plus a shared no-op context manager."""
    uninstall()  # ensure the disabled fast path is the one measured

    def hook():
        with span("bench.noop"):
            pass

    benchmark(hook)


def test_bench_server_http_roundtrip(benchmark, server):
    """Socket-to-socket latency of one cached render over real HTTP."""
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}/sessions/s1/render"

    def roundtrip():
        req = urllib.request.Request(url, data=RENDER, method="POST")
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 200
            return json.loads(resp.read())

    payload = benchmark(roundtrip)
    assert payload["view"] == "calling-context"

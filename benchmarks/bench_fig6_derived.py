"""Benchmark Fig. 6: derived waste/efficiency metrics over all S3D rows."""

from __future__ import annotations

import pytest

from repro.core.metrics import MetricFlavor
from repro.experiments import fig6_derived


@pytest.fixture(scope="module")
def experiment():
    return fig6_derived.build_experiment()


def test_bench_fig6_derived_evaluation(benchmark, experiment, print_report):
    view = experiment.flat_view()
    spec = experiment.spec("fp waste", MetricFlavor.EXCLUSIVE)
    rows = [n for r in view.roots for n in r.walk()]

    def evaluate_all():
        # drop caches so the formula engine really runs per row
        for row in rows:
            row.exclusive.pop(spec.mid, None)
        return sum(view.value(row, spec) for row in rows)

    total = benchmark(evaluate_all)
    assert total > 0
    print_report(fig6_derived.run())


def test_bench_fig6_sort_by_derived(benchmark, experiment):
    view = experiment.flat_view()
    view.flatten()
    view.flatten()
    spec = experiment.spec("fp waste", MetricFlavor.EXCLUSIVE)

    def sort_rows():
        return sorted(
            view.current_roots(),
            key=lambda r: view.value(r, spec),
            reverse=True,
        )

    top = benchmark(sort_rows)[0]
    assert top.struct.location.file == "diffflux.f90"

#!/usr/bin/env python
"""Record the query engine's numbers in ``BENCH_query.json``.

Two measurements, both with budgets enforced *in the run* so they
cannot silently regress:

1. **Query latency on a scaled store.**  Four ranks of the
   ``scale-7x4`` program (~8.4k scopes) are merged into an mmap-backed
   ``.rpstore``; a fresh subprocess opens it and times a battery of
   representative queries (match-all, hot-filter + sort + limit,
   prune + groupby, squash, share predicate), reporting per-query
   median latency over repeated runs.  Every query's median must stay
   under ``QUERY_BUDGET_S`` — vectorized evaluation on ~8.4k rows is a
   few milliseconds; tree-walking Python would blow the budget.

2. **100-profile corpus diagnosis.**  A corpus is seeded with one
   tenant holding 100 grouped profiles (25 scaling groups of 4, with
   ``nranks`` metadata so the comparative rules engage) and another
   holding 10 of the same shape.  Fresh subprocesses run
   ``diagnose_corpus`` over each and report wall-clock and peak RSS.
   The 100-profile diagnosis must finish under ``DIAG_BUDGET_S``, and
   its peak RSS may exceed the 10-profile run's by at most
   ``RSS_RATIO_BUDGET`` — the streaming contract: profiles are loaded,
   examined, and released one at a time, so RSS stays flat at 10x the
   profile count.

Usage::

    python benchmarks/run_query_bench.py [-o BENCH_query.json]
        [--repeats 20]
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.hpcprof.merge import merge_rank_files  # noqa: E402
from repro.sim.scale import generate_rank_files  # noqa: E402

QUERY_BUDGET_S = 0.25       # per-query median on the ~8.4k-row store
DIAG_BUDGET_S = 30.0        # 100-profile corpus diagnosis wall-clock
RSS_RATIO_BUDGET = 1.5      # peak RSS, 100 profiles vs 10

#: the latency battery: (slug, query spec) — specs are the wire form,
#: so the same shapes are exercised end-to-end by /v1/query
QUERIES = [
    ("match-all", {"pattern": "** / *"}),
    ("hot-top10", {"ops": [{"op": "match", "pattern": "** / *"},
                           {"op": "filter",
                            "where": ["cycles.exclusive >= 0.01%"]}],
                   "sort": {"metric": "cycles", "flavor": "exclusive"},
                   "limit": 10}),
    ("prune-groupby", {"ops": [{"op": "prune", "pattern": "p3_*"},
                               {"op": "match", "pattern": "** / *"},
                               {"op": "groupby", "key": "name"}],
                       "sort": {"metric": "cycles"}}),
    ("squash-frames", {"ops": [{"op": "match", "pattern": "** / p*"},
                               {"op": "squash"}]}),
    ("share-50pct", {"ops": [{"op": "match", "pattern": "** / *"},
                             {"op": "filter",
                              "where": ["cycles.inclusive >= 50%"]}]}),
]

_CHILD_QUERY = r"""
import json, resource, statistics, sys, time
from repro.hpcprof import database
from repro.query import Query, run_query

store_path, spec_json, repeats = sys.argv[1], sys.argv[2], int(sys.argv[3])
specs = json.loads(spec_json)
exp = database.load(store_path)
rows = run_query(Query.from_spec({"pattern": "** / *"}), exp).row_count
out = {"store_rows": rows, "queries": {}}
for slug, spec in specs:
    q = Query.from_spec(spec)
    run_query(q, exp)                       # warm (mmap pages, caches)
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_query(q, exp)
        samples.append(time.perf_counter() - t0)
    out["queries"][slug] = {
        "rows": result.row_count,
        "median_s": statistics.median(samples),
        "max_s": max(samples),
    }
out["peak_rss_kib"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
exp.close()
print(json.dumps(out))
"""

_CHILD_DIAG = r"""
import json, resource, sys, time
from repro.corpus import open_corpus
from repro.query import diagnose_corpus

root, tenant = sys.argv[1], sys.argv[2]
with open_corpus(root) as corpus:
    t0 = time.perf_counter()
    diag = diagnose_corpus(corpus, tenant)
    wall = time.perf_counter() - t0
print(json.dumps({
    "wall_s": wall,
    "profiles_examined": diag.profiles_examined,
    "findings": len(diag.findings),
    "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _run_child(code: str, *argv: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code, *argv],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def bench_store_queries(workdir: str, repeats: int) -> dict:
    rank_dir = os.path.join(workdir, "ranks")
    paths = generate_rank_files(rank_dir, 4, fanout=7, depth=4)
    store = os.path.join(workdir, "scaled.rpstore")
    merge_rank_files(paths, store, summarize="all")

    out = _run_child(_CHILD_QUERY, store, json.dumps(QUERIES), str(repeats))
    failures = [
        f"{slug}: median {stats['median_s'] * 1e3:.1f} ms "
        f"> budget {QUERY_BUDGET_S * 1e3:.0f} ms"
        for slug, stats in out["queries"].items()
        if stats["median_s"] > QUERY_BUDGET_S
    ]
    if failures:
        raise SystemExit("query latency budget blown:\n  "
                         + "\n  ".join(failures))
    out["budget_s"] = QUERY_BUDGET_S
    out["repeats"] = repeats
    return out


def _seed_corpus(root: str) -> None:
    """One tenant with 100 grouped profiles, one with 10 of the same
    shape — the small tenant is the flat-RSS baseline."""
    from repro.core.attribution import attribute
    from repro.corpus import open_corpus
    from repro.hpcprof.binio import dumps_binary
    from repro.hpcprof.experiment import Experiment
    from repro.sim.workloads import fig1

    base = Experiment.from_program(fig1.build())

    def scaled(factor: float) -> bytes:
        exp = Experiment.from_program(fig1.build())
        for node in exp.cct.walk():
            for mid, value in list(node.raw.items()):
                node.raw[mid] = value * factor
        attribute(exp.cct)
        exp.cct.invalidate_caches()
        return dumps_binary(exp)

    # 4 rungs per scaling group: ideal would be flat totals as nranks
    # grows; these grow, so every group plants a scaling-loss finding
    blobs = [(dumps_binary(base), 1), (scaled(1.3), 2),
             (scaled(1.8), 4), (scaled(2.5), 8)]
    with open_corpus(root, create=True) as corpus:
        for tenant, ngroups in (("big", 20), ("small", 2)):
            for g in range(ngroups):
                for i, (blob, nranks) in enumerate(blobs):
                    corpus.ingest_bytes(
                        tenant, blob, name=f"g{g}-r{i}.rpdb",
                        group=f"scale-{g}", meta={"nranks": nranks})
                # one ungrouped singleton per group rounds out the 100
                corpus.ingest_bytes(tenant, blobs[0][0],
                                    name=f"g{g}-solo.rpdb")


def bench_corpus_diagnosis(workdir: str) -> dict:
    root = os.path.join(workdir, "corpus")
    t0 = time.perf_counter()
    _seed_corpus(root)
    seed_s = time.perf_counter() - t0

    big = _run_child(_CHILD_DIAG, root, "big")
    small = _run_child(_CHILD_DIAG, root, "small")
    assert big["profiles_examined"] == 100, big
    assert small["profiles_examined"] == 10, small

    rss_ratio = big["peak_rss_kib"] / small["peak_rss_kib"]
    if big["wall_s"] > DIAG_BUDGET_S:
        raise SystemExit(
            f"diagnosis budget blown: {big['wall_s']:.2f} s "
            f"> {DIAG_BUDGET_S} s for {big['profiles_examined']} profiles")
    if rss_ratio > RSS_RATIO_BUDGET:
        raise SystemExit(
            f"RSS not flat: {big['profiles_examined']}-profile diagnosis "
            f"peaked at {rss_ratio:.2f}x the "
            f"{small['profiles_examined']}-profile run "
            f"(budget {RSS_RATIO_BUDGET}x)")
    return {
        "seed_s": round(seed_s, 3),
        "large": big,
        "baseline": small,
        "rss_ratio": round(rss_ratio, 3),
        "wall_budget_s": DIAG_BUDGET_S,
        "rss_ratio_budget": RSS_RATIO_BUDGET,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_query.json",
                        help="output path, relative to the repository root")
    parser.add_argument("--repeats", type=int, default=20,
                        help="latency samples per query (default 20)")
    args = parser.parse_args(argv)

    report = {"benchmark": "call-path query engine",
              "python": platform.python_version()}
    with tempfile.TemporaryDirectory(prefix="query-bench-") as tmp:
        report["store_queries"] = bench_store_queries(tmp, args.repeats)
        report["corpus_diagnosis"] = bench_corpus_diagnosis(tmp)

    out = (REPO / args.output).resolve()
    out.write_text(json.dumps(report, indent=2) + "\n")

    sq = report["store_queries"]
    print(f"\nquery latency on the {sq['store_rows']}-row scaled store "
          f"(budget {QUERY_BUDGET_S * 1e3:.0f} ms each):")
    for slug, stats in sq["queries"].items():
        print(f"  {slug:14s} {stats['median_s'] * 1e3:7.2f} ms median  "
              f"{stats['rows']:6d} rows")
    cd = report["corpus_diagnosis"]
    print(f"corpus diagnosis: {cd['large']['profiles_examined']} profiles "
          f"in {cd['large']['wall_s']:.2f} s "
          f"({cd['large']['findings']} findings), "
          f"RSS {cd['rss_ratio']}x the "
          f"{cd['baseline']['profiles_examined']}-profile baseline")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

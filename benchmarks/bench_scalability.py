"""Benchmark §VII: scalable presentation — lazy construction and rendering.

The ablations behind the paper's scalability section:

* lazy vs eager Callers View construction (time to first render);
* tree-tabular rendering cost vs total CCT size (fixed visible window);
* view construction scaling across CCT sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import scalability
from repro.experiments.scalability import synthetic_tree_program
from repro.hpcprof.experiment import Experiment
from repro.viewer.navigation import NavigationState
from repro.viewer.table import TableOptions, render_table


@pytest.fixture(scope="module")
def experiment():
    return Experiment.from_program(synthetic_tree_program(fanout=8, depth=3))


def test_bench_lazy_callers_first_render(benchmark, experiment, print_report):
    def first_render():
        view = experiment.callers_view(eager=False)
        state = NavigationState(view)
        return render_table(view, state, options=TableOptions(max_rows=30))

    assert "scope" in benchmark(first_render)
    print_report(scalability.run())


def test_bench_eager_callers_first_render(benchmark, experiment):
    def first_render():
        view = experiment.callers_view(eager=True)
        state = NavigationState(view)
        return render_table(view, state, options=TableOptions(max_rows=30))

    assert "scope" in benchmark(first_render)


@pytest.mark.parametrize("depth", [2, 3])
def test_bench_render_window_vs_tree_size(benchmark, depth):
    exp = Experiment.from_program(synthetic_tree_program(fanout=8, depth=depth))
    view = exp.calling_context_view()
    state = NavigationState(view)
    state.expand_hot_path()

    out = benchmark(
        lambda: render_table(view, state, options=TableOptions(max_rows=50))
    )
    assert "p0_0" in out


@pytest.mark.parametrize("fanout", [4, 8, 12])
@pytest.mark.parametrize("backend", ["dict", "columnar"])
def test_bench_attribution_scaling(benchmark, fanout, backend):
    from repro.core.attribution import attribute

    exp = Experiment.from_program(synthetic_tree_program(fanout=fanout, depth=3))
    benchmark(lambda: attribute(exp.cct, columnar=(backend == "columnar")))

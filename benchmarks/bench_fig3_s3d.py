"""Benchmark Fig. 3: S3D hot path analysis on the Calling Context View."""

from __future__ import annotations

import pytest

from repro.experiments import fig3_s3d
from repro.hpcrun.counters import CYCLES


@pytest.fixture(scope="module")
def experiment():
    return fig3_s3d.build_experiment()


def test_bench_fig3_hot_path(benchmark, experiment, print_report):
    result = benchmark(lambda: experiment.hot_path(CYCLES))
    assert result.hotspot.name == "chemkin_m_reaction_rate"
    print_report(fig3_s3d.run())


def test_bench_fig3_view_render(benchmark, experiment):
    from repro.viewer.table import render_view

    text = benchmark(lambda: render_view(
        experiment.calling_context_view(), depth=6
    ))
    assert "rhsf" in text

"""Benchmark §V-C: hot path analysis and the threshold ablation."""

from __future__ import annotations

import pytest

from repro.experiments import hotpath_threshold
from repro.experiments.scalability import synthetic_tree_program
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.sim.workloads import s3d


@pytest.fixture(scope="module")
def s3d_exp():
    return Experiment.from_program(s3d.build())


def test_bench_hotpath_default_threshold(benchmark, s3d_exp, print_report):
    view = s3d_exp.calling_context_view()
    result = benchmark(lambda: s3d_exp.hot_path(CYCLES, view=view))
    assert result.hotspot.name == "chemkin_m_reaction_rate"
    print_report(hotpath_threshold.run())


def test_bench_hotpath_threshold_sweep(benchmark, s3d_exp):
    rows = benchmark(lambda: hotpath_threshold.sweep(s3d_exp))
    assert len(rows) == len(hotpath_threshold.THRESHOLDS)


def test_bench_hotpath_on_wide_tree(benchmark):
    exp = Experiment.from_program(synthetic_tree_program(fanout=12, depth=3))
    benchmark(lambda: exp.hot_path("cycles"))

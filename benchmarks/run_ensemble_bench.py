#!/usr/bin/env python
"""Record the ensemble diff engine's numbers in ``BENCH_ensemble.json``.

For each corpus size (default 10, 50, 100 experiments) this:

1. generates one synthetic ``.rpdb`` per experiment (``repro.sim.scale``,
   one rank each so every member drifts a little);
2. aligns the corpus **in a fresh subprocess** — N-way union CCT plus
   the columnar metric matrices — timing the alignment, a mean-vs-last
   diff with regression detection, and the subprocess's peak RSS
   (``getrusage(RUSAGE_SELF).ru_maxrss``);
3. at the largest size converts every member to an mmap-backed
   ``.rpstore`` and aligns those too, demonstrating the acceptance
   criterion: 100 store-backed experiments align under the default
   working-set budget;
4. at the smallest size asserts, in-harness, that aligning the
   ``.rpdb`` paths and aligning the same experiments loaded in memory
   produce bit-identical matrices (the streaming loader adds nothing).

Usage::

    python benchmarks/run_ensemble_bench.py [-o BENCH_ensemble.json]
        [--sizes 10 50 100]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.core.ensemble import align_experiments  # noqa: E402
from repro.core.store import create_store  # noqa: E402
from repro.hpcprof import database  # noqa: E402
from repro.hpcprof.align import DEFAULT_WORKING_SET  # noqa: E402
from repro.sim.scale import generate_rank_files  # noqa: E402

_CHILD = r"""
import json, resource, sys, time
t0 = time.perf_counter()
from repro.core.ensemble import align_experiments, detect_regressions
paths = json.loads(sys.argv[1])
t_import = time.perf_counter() - t0

t0 = time.perf_counter()
ensemble = align_experiments(paths)
align_s = time.perf_counter() - t0

t0 = time.perf_counter()
diff = ensemble.diff("mean", -1)
findings = detect_regressions(ensemble)
diff_s = time.perf_counter() - t0

report = ensemble.alignment.report
print(json.dumps({
    "import_s": t_import,
    "align_s": align_s,
    "diff_and_detect_s": diff_s,
    "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "union_scopes": report.nnodes,
    "matrix_bytes": report.matrix_bytes,
    "peak_estimate_bytes": report.peak_estimate_bytes,
    "findings": len(findings),
    "diff_root": diff.cct.root.inclusive.get(0, 0.0),
}))
"""


def _run_child(paths: list[str]) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps(paths)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def _assert_loader_parity(paths: list[str]) -> None:
    """Path-based and in-memory alignment must be bit-identical."""
    inmem = align_experiments([database.load(p) for p in paths])
    frompath = align_experiments(paths)
    for key, matrix in inmem.alignment.matrices.items():
        if not np.array_equal(matrix, frompath.alignment.matrices[key]):
            raise RuntimeError(f"loader parity broken for matrix {key}")


def measure(size: int, workdir: str, check_parity: bool,
            as_stores: bool) -> dict:
    member_dir = os.path.join(workdir, f"members-{size}")
    t0 = time.perf_counter()
    paths = generate_rank_files(member_dir, size, fanout=2, depth=3)
    gen_s = time.perf_counter() - t0

    if check_parity:
        _assert_loader_parity(paths)

    child = _run_child(paths)
    entry = {
        "n_experiments": size,
        "member_bytes": sum(os.path.getsize(p) for p in paths),
        "generate_s": round(gen_s, 3),
        "working_set_budget_bytes": DEFAULT_WORKING_SET,
        "rpdb": child,
    }
    if as_stores:
        store_paths = []
        for i, path in enumerate(paths):
            store = os.path.join(workdir, f"store-{size}", f"m{i:04d}.rpstore")
            create_store(database.load(path), store).release()
            store_paths.append(store)
        stores = _run_child(store_paths)
        entry["rpstore"] = stores
        if stores["diff_root"] != child["diff_root"]:
            raise RuntimeError(
                f"size={size}: store-backed diff differs from rpdb diff"
            )
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default=str(REPO / "BENCH_ensemble.json"))
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[10, 50, 100])
    args = parser.parse_args(argv)

    results = []
    with tempfile.TemporaryDirectory() as workdir:
        for size in args.sizes:
            print(f"measuring n_experiments={size} ...", flush=True)
            entry = measure(
                size, workdir,
                check_parity=size == min(args.sizes),
                as_stores=size == max(args.sizes),
            )
            rpdb = entry["rpdb"]
            line = (f"  align {rpdb['align_s']*1e3:.1f}ms, "
                    f"diff+detect {rpdb['diff_and_detect_s']*1e3:.1f}ms, "
                    f"peak RSS {rpdb['peak_rss_kib']/1024:.1f} MiB, "
                    f"{rpdb['union_scopes']} union scopes")
            if "rpstore" in entry:
                line += (f" (store-backed align "
                         f"{entry['rpstore']['align_s']*1e3:.1f}ms)")
            print(line, flush=True)
            results.append(entry)

    payload = {
        "benchmark": "ensemble union-CCT alignment and diff",
        "python": sys.version.split()[0],
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

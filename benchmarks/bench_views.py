"""Benchmark view construction across CCT shape families.

Complements ``bench_scalability.py``: measures how each of the three
views scales with tree *shape* (deep chains, wide fans, recursion
ladders), since their construction costs stress different code paths —
the Callers View walks caller chains, the Flat View merges instances,
and the exposed-instance filter degrades with recursion depth.
"""

from __future__ import annotations

import pytest

from repro.hpcprof.experiment import Experiment
from repro.sim.workloads.synthetic import (
    deep_chain,
    recursive_ladder,
    uniform_tree,
    wide_flat,
)

_SHAPES = {
    "tree-6x3": lambda: uniform_tree(6, 3),
    "chain-120": lambda: deep_chain(120),
    "wide-400": lambda: wide_flat(400),
    "ladder-40x4": lambda: recursive_ladder(depth=40, contexts=4),
}


@pytest.fixture(scope="module", params=sorted(_SHAPES))
def experiment(request):
    return request.param, Experiment.from_program(_SHAPES[request.param]())


def test_bench_ccview_materialize(benchmark, experiment):
    _name, exp = experiment

    def build():
        view = exp.calling_context_view()
        return sum(1 for r in view.roots for _ in r.walk())

    assert benchmark(build) > 0


def test_bench_callers_materialize(benchmark, experiment):
    _name, exp = experiment

    def build():
        view = exp.callers_view(eager=True)
        return len(view.roots)

    assert benchmark(build) > 0


def test_bench_flat_materialize(benchmark, experiment):
    _name, exp = experiment

    def build():
        view = exp.flat_view()
        return sum(1 for r in view.roots for _ in r.walk())

    assert benchmark(build) > 0


def test_bench_search(benchmark, experiment):
    from repro.core.search import search

    _name, exp = experiment
    view = exp.calling_context_view()
    hits = benchmark(lambda: search(view, "*", limit=10))
    assert hits

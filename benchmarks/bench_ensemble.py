"""Ensemble engine kernels: N-way alignment and diff+detect latency.

``run_ensemble_bench.py`` records the full 10/50/100-experiment curve in
``BENCH_ensemble.json``; the two ``bench_smoke`` cases here keep the
alignment and diff paths compiling and passing on every tier-1 run.
"""

from __future__ import annotations

import pytest

from repro.core.ensemble import align_experiments, detect_regressions
from repro.hpcprof.experiment import Experiment
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.scale import scale_program

N_MEMBERS = 8


@pytest.fixture(scope="module")
def members():
    program = scale_program(fanout=2, depth=3)
    structure = build_structure(program)
    return [
        Experiment.from_profile(
            execute(program, rank=i, nranks=N_MEMBERS, seed=17),
            structure, name=f"m{i}",
        )
        for i in range(N_MEMBERS)
    ]


@pytest.fixture(scope="module")
def ensemble(members):
    return align_experiments(members)


@pytest.mark.bench_smoke
def test_bench_align(benchmark, members):
    ensemble = benchmark(lambda: align_experiments(members))
    assert ensemble.alignment.n_members == N_MEMBERS


@pytest.mark.bench_smoke
def test_bench_diff_and_detect(benchmark, ensemble):
    def run():
        diff = ensemble.diff("mean", -1)
        return diff, detect_regressions(ensemble)

    diff, findings = benchmark(run)
    assert diff.cct.root is not None
    assert isinstance(findings, list)


def test_bench_stats(benchmark, ensemble):
    stats = benchmark(lambda: ensemble.stats())
    assert stats.count == N_MEMBERS

"""Benchmark the sampling-robustness experiment's kernel.

Measures Poisson resampling of an exact profile plus the cost of
reaching a hot-path conclusion from the resampled data, and prints the
robustness report (the `sampling` registry entry).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import sampling_robustness
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.workloads import s3d


@pytest.fixture(scope="module")
def exact():
    program = s3d.build()
    return execute(program), build_structure(program)


def test_bench_resample(benchmark, exact):
    profile, _structure = exact
    rng = np.random.default_rng(0)
    noisy = benchmark(lambda: profile.resampled(2.0e5, rng))
    assert noisy.totals()


def test_bench_noisy_conclusion(benchmark, exact, print_report):
    profile, structure = exact
    rng = np.random.default_rng(0)
    noisy = profile.resampled(2.0e5, rng)

    def conclude():
        exp = Experiment.from_profile(noisy, structure)
        return exp.hot_path(CYCLES).hotspot.name

    assert benchmark(conclude) == "chemkin_m_reaction_rate"
    print_report(sampling_robustness.run())

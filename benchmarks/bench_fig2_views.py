"""Benchmark Fig. 2: constructing the three views of the worked example.

Measures the full pipeline cost for the Figure 1 program — execution,
structure recovery, correlation, attribution, view synthesis — and
prints the exact golden-value comparison.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2_views
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1


@pytest.fixture(scope="module")
def experiment():
    return fig2_views.build_experiment()


def test_bench_fig2_pipeline(benchmark, print_report):
    exp = benchmark(lambda: Experiment.from_program(fig1.build()))
    assert len(exp.cct) > 10
    print_report(fig2_views.run())


def test_bench_fig2_three_views(benchmark, experiment):
    def build_all():
        ccv, callers, flat = experiment.views()
        # materialize everything (callers/flat roots, lazy children)
        return sum(
            1 for view in (ccv, callers, flat)
            for root in view.roots for _ in root.walk()
        )

    rows = benchmark(build_all)
    assert rows > 30

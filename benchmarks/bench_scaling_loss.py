"""Benchmark §VI-A: the scale-and-difference derived metric."""

from __future__ import annotations

import pytest

from repro.experiments import scaling_loss
from repro.hpcprof.merge import scale_and_difference
from repro.hpcrun.counters import CYCLES


@pytest.fixture(scope="module")
def pair():
    return scaling_loss.build_pair(small=8, big=32)


def test_bench_scale_and_difference(benchmark, pair, print_report):
    exp_small, exp_big = pair
    mid = exp_big.metric_id(CYCLES)

    def run_once():
        metrics = exp_big.metrics.copy()
        return scale_and_difference(
            exp_small.cct, exp_big.cct, metrics, mid, factor=4.0,
            name="scaling loss",
        )

    loss_mid = benchmark(run_once)
    assert loss_mid > mid
    print_report(scaling_loss.run())

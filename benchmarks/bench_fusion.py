"""Benchmark §V-B: fused vs two-line call-site presentation."""

from __future__ import annotations

import pytest

from repro.experiments import fusion_ablation
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import s3d


@pytest.fixture(scope="module")
def experiment():
    return Experiment.from_program(s3d.build())


@pytest.mark.parametrize("fused", [True, False], ids=["fused", "two-line"])
def test_bench_ccview_walk(benchmark, experiment, fused, print_report):
    def walk_all():
        view = experiment.calling_context_view(fused=fused)
        return sum(1 for r in view.roots for _ in r.walk())

    rows = benchmark(walk_all)
    assert rows > 10
    if fused:
        print_report(fusion_ablation.run())

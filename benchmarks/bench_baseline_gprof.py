"""Benchmark (related work): gprof baseline vs exact attribution."""

from __future__ import annotations

import pytest

from repro.baselines.compare import compare_attribution
from repro.baselines.gprof import GprofProfile
from repro.experiments import gprof_baseline
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import s3d


@pytest.fixture(scope="module")
def s3d_cct():
    exp = Experiment.from_program(s3d.build())
    return exp.cct


def test_bench_gprof_build(benchmark, s3d_cct, print_report):
    gprof = benchmark(lambda: GprofProfile.from_cct(s3d_cct, mid=0))
    assert gprof.total_cost
    print_report(gprof_baseline.run())


def test_bench_attribution_comparison(benchmark, s3d_cct):
    rows = benchmark(lambda: compare_attribution(s3d_cct, mid=0))
    assert rows

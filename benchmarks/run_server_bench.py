#!/usr/bin/env python
"""Record analysis-server throughput in ``BENCH_server.json``.

Starts a real ``repro-serve`` server (in-process thread, real sockets),
fires a mixed workload from concurrent client threads — mostly repeated
cached renders with a sprinkling of varied renders and hot-path queries,
the steady-state shape of a dashboard fleet — and records requests/sec
and the server-reported cache hit-rate, so successive PRs can track the
service's performance trajectory alongside ``BENCH_views.json``.

Usage::

    python benchmarks/run_server_bench.py [-o BENCH_server.json]
        [--clients 8] [--requests 60] [--workload fig1]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.server import build_server  # noqa: E402 - path set above


def fire(base: str, method: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.status in (200, 201), (path, resp.status)
        return json.loads(resp.read())


def client_loop(base: str, sid: str, n_requests: int) -> None:
    for i in range(n_requests):
        if i % 10 < 7:  # steady state: the same cached render
            fire(base, "POST", f"/sessions/{sid}/render",
                 {"view": "cct", "depth": 3})
        elif i % 10 < 9:  # a small working set of varied renders
            fire(base, "POST", f"/sessions/{sid}/render",
                 {"view": ("flat", "callers")[i % 2], "depth": 2 + i % 3})
        else:
            fire(base, "GET", f"/sessions/{sid}/hotpath")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_server.json",
                        help="output path, relative to the repository root")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=60,
                        help="requests per client thread")
    parser.add_argument("--workload", default="fig1")
    args = parser.parse_args(argv)

    server = build_server(workload=args.workload, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    sid = server.app.registry.list_info()[0]["id"]

    # warm the lazy views and the cache once, outside the timed window
    fire(base, "POST", f"/sessions/{sid}/render", {"view": "cct", "depth": 3})

    clients = [
        threading.Thread(target=client_loop, args=(base, sid, args.requests))
        for _ in range(args.clients)
    ]
    t0 = time.perf_counter()
    for c in clients:
        c.start()
    for c in clients:
        c.join()
    elapsed = time.perf_counter() - t0

    stats = fire(base, "GET", "/stats")
    server.shutdown()
    server.server_close()

    total = args.clients * args.requests
    result = {
        "workload": args.workload,
        "clients": args.clients,
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "requests_per_sec": round(total / elapsed, 1),
        "cache_hit_rate": round(stats["cache"]["hits"]
                                / max(1, stats["cache"]["hits"]
                                      + stats["cache"]["misses"]), 4),
        "cache": stats["cache"],
        "server_requests": stats["requests"],
    }
    out = (REPO / args.output).resolve()
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"{total} requests from {args.clients} clients in {elapsed:.2f}s "
          f"-> {result['requests_per_sec']} req/s, "
          f"cache hit-rate {result['cache_hit_rate']:.1%}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Record analysis-server throughput in ``BENCH_server.json``.

Starts a real ``repro-serve`` server (in-process thread, real sockets),
fires a mixed workload from concurrent client threads — mostly repeated
cached renders with a sprinkling of varied renders and hot-path queries,
the steady-state shape of a dashboard fleet — and records requests/sec
and the server-reported cache hit-rate, so successive PRs can track the
service's performance trajectory alongside ``BENCH_views.json``.

Usage::

    python benchmarks/run_server_bench.py [-o BENCH_server.json]
        [--clients 8] [--requests 60] [--workload fig1]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.hpcprof import binio, database  # noqa: E402 - path set above
from repro.hpcprof.experiment import Experiment  # noqa: E402
from repro.obs import install, save_self_profile, span, uninstall  # noqa: E402
from repro.server import build_server  # noqa: E402
from repro.sim.workloads import s3d  # noqa: E402


def checksum_overhead(repeats: int = 40, loads_per_sample: int = 20) -> dict:
    """Cost of per-section CRC32 verification on the v2 binary loads.

    Loads the same serialized database with checksum verification on
    and off (same parse either way — the delta is pure CRC work) and
    reports the relative overhead against a <5% budget: framing exists
    to make corruption detectable, not to tax every clean load.

    Methodology matters at sub-millisecond scale: both modes are warmed
    first, each timing sample batches several loads, the two modes'
    samples alternate in both orders (so drift and cache effects hit
    them equally), and best-of-N per mode shaves scheduler noise.
    """
    blob = binio.dumps_binary(Experiment.from_program(s3d.build()))

    def sample(verify: bool) -> float:
        t0 = time.perf_counter()
        for _ in range(loads_per_sample):
            binio.loads_binary(blob, verify_checksums=verify)
        return (time.perf_counter() - t0) / loads_per_sample

    for _ in range(3):  # warm both paths outside the timed window
        sample(True), sample(False)
    v_times, u_times = [], []
    for i in range(repeats):
        if i % 2:
            v_times.append(sample(True))
            u_times.append(sample(False))
        else:
            u_times.append(sample(False))
            v_times.append(sample(True))
    verified, unverified = min(v_times), min(u_times)
    return {
        "database_bytes": len(blob),
        "load_verified_ms": round(verified * 1000, 4),
        "load_unverified_ms": round(unverified * 1000, 4),
        "overhead_pct": round(100.0 * (verified - unverified)
                              / max(unverified, 1e-9), 2),
        "budget_pct": 5.0,
    }


def tracing_overhead(repeats: int = 30, reqs_per_sample: int = 20) -> dict:
    """Cost of the self-profiling span tracer on served requests.

    Drives the same cache-hit render through a real socket round trip
    (the unit a client of ``repro-serve --self-profile`` pays for) with
    the tracer installed and uninstalled — identical work either way,
    the delta is span bookkeeping — and reports the relative overhead
    against a <3% budget: observability that taxes the thing it
    observes stops being worth reading.

    Same methodology as :func:`checksum_overhead` — warm both modes,
    batch each sample, alternate the two modes in both orders, take
    best-of-N — plus per-hook-site microbenches (the absolute cost of
    one disabled and one enabled span, in nanoseconds) and an
    end-to-end check that the recorded spans export to a loadable
    database whose three views actually show the request pipeline.
    """
    uninstall()  # start from a clean global regardless of caller state
    server = build_server(workload="fig1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    sid = server.app.registry.list_info()[0]["id"]
    body = {"view": "cct", "depth": 3}
    path = f"/v1/sessions/{sid}/render"

    def sample() -> float:
        t0 = time.perf_counter()
        for _ in range(reqs_per_sample):
            fire(base, "POST", path, body)
        return (time.perf_counter() - t0) / reqs_per_sample

    for _ in range(3):  # warm both paths outside the timed window
        sample()
        install()
        sample()
        uninstall()
    on_times, off_times = [], []
    for i in range(repeats):
        if i % 2:
            install()
            on_times.append(sample())
            uninstall()
            off_times.append(sample())
        else:
            off_times.append(sample())
            install()
            on_times.append(sample())
            uninstall()
    traced, untraced = min(on_times), min(off_times)

    def per_span_ns(n: int = 200_000) -> float:
        t0 = time.perf_counter()
        for _ in range(n):
            with span("bench.noop"):
                pass
        return (time.perf_counter() - t0) / n * 1e9

    # hook-site cost: disabled is one global read + a shared no-op
    # object; enabled pays the full record (clock, push/pop, dict)
    disabled_ns = per_span_ns()
    install()
    enabled_ns = per_span_ns()
    uninstall()

    # dogfooding proof: spans from a short traced run round-trip through
    # the regular v2 database and render in all three views
    tracer = install()
    for _ in range(5):
        fire(base, "POST", path, body)
    fire(base, "GET", f"/v1/sessions/{sid}/hotpath")
    uninstall()
    server.shutdown()
    server.server_close()
    import tempfile

    from repro.core.views import ViewKind
    from repro.viewer.session import ViewerSession
    from repro.viewer.table import render_view

    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "self.rpdb")
        _exported, db_bytes = save_self_profile(tracer, db_path)
        loaded = database.load(db_path)
        session = ViewerSession(loaded)
        views_ok = 0
        for kind in ViewKind:
            text = render_view(session.view(kind), depth=4)
            assert "server.request" in text, kind
            views_ok += 1

    return {
        "traced_request_ms": round(traced * 1000, 4),
        "untraced_request_ms": round(untraced * 1000, 4),
        "overhead_pct": round(100.0 * (traced - untraced)
                              / max(untraced, 1e-9), 2),
        "budget_pct": 3.0,
        "disabled_span_ns": round(disabled_ns, 1),
        "enabled_span_ns": round(enabled_ns, 1),
        "self_profile": {
            "spans": tracer.span_count(),
            "database_bytes": db_bytes,
            "views_rendered": views_ok,
        },
    }


def fire(base: str, method: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.status in (200, 201), (path, resp.status)
        return json.loads(resp.read())


def client_loop(base: str, sid: str, n_requests: int) -> None:
    for i in range(n_requests):
        if i % 10 < 7:  # steady state: the same cached render
            fire(base, "POST", f"/v1/sessions/{sid}/render",
                 {"view": "cct", "depth": 3})
        elif i % 10 < 9:  # a small working set of varied renders
            fire(base, "POST", f"/v1/sessions/{sid}/render",
                 {"view": ("flat", "callers")[i % 2], "depth": 2 + i % 3})
        else:
            fire(base, "GET", f"/v1/sessions/{sid}/hotpath")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_server.json",
                        help="output path, relative to the repository root")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=60,
                        help="requests per client thread")
    parser.add_argument("--workload", default="fig1")
    args = parser.parse_args(argv)

    server = build_server(workload=args.workload, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    sid = server.app.registry.list_info()[0]["id"]

    # warm the lazy views and the cache once, outside the timed window
    fire(base, "POST", f"/v1/sessions/{sid}/render",
         {"view": "cct", "depth": 3})

    clients = [
        threading.Thread(target=client_loop, args=(base, sid, args.requests))
        for _ in range(args.clients)
    ]
    t0 = time.perf_counter()
    for c in clients:
        c.start()
    for c in clients:
        c.join()
    elapsed = time.perf_counter() - t0

    stats = fire(base, "GET", "/v1/stats")
    server.shutdown()
    server.server_close()

    total = args.clients * args.requests
    result = {
        "workload": args.workload,
        "clients": args.clients,
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "requests_per_sec": round(total / elapsed, 1),
        "cache_hit_rate": round(stats["cache"]["hits"]
                                / max(1, stats["cache"]["hits"]
                                      + stats["cache"]["misses"]), 4),
        "cache": stats["cache"],
        "server_requests": stats["requests"],
        "checksum_verification": checksum_overhead(),
        "tracing_overhead": tracing_overhead(),
    }
    out = (REPO / args.output).resolve()
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"{total} requests from {args.clients} clients in {elapsed:.2f}s "
          f"-> {result['requests_per_sec']} req/s, "
          f"cache hit-rate {result['cache_hit_rate']:.1%}")
    tr = result["tracing_overhead"]
    print(f"tracing overhead {tr['overhead_pct']}% "
          f"(budget {tr['budget_pct']}%), "
          f"span {tr['disabled_span_ns']} ns off / "
          f"{tr['enabled_span_ns']} ns on, "
          f"self-profile {tr['self_profile']['spans']} spans -> "
          f"{tr['self_profile']['database_bytes']} bytes")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Record analysis-server throughput in ``BENCH_server.json``.

Two experiments, so successive PRs can track the service's performance
trajectory alongside ``BENCH_views.json``:

* **mixed workload** — a real single-process ``repro-serve`` server
  (in-process thread, real sockets) under concurrent client threads
  firing mostly repeated cached renders with a sprinkling of varied
  renders and hot-path queries: the steady-state shape of a dashboard
  fleet;
* **scaling curve** — the pre-forked worker pool at 1/2/4/8 workers,
  each worker count measured under both wire encodings (JSON and the
  zero-copy columnar frame) against a synthetically scaled database
  whose CCT table runs to thousands of rows.  Every result block
  records the worker count, the host's CPU count, and the encoding, so
  a curve measured on a one-core container reads as exactly that.  The
  harness also decodes one columnar response and asserts it equals the
  JSON table bit for bit before timing anything.

Usage::

    python benchmarks/run_server_bench.py [-o BENCH_server.json]
        [--clients 8] [--requests 60] [--workload fig1]
        [--scale-requests 150]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.hpcprof import binio, database  # noqa: E402 - path set above
from repro.hpcprof.experiment import Experiment  # noqa: E402
from repro.obs import install, save_self_profile, span, uninstall  # noqa: E402
from repro.server import build_server  # noqa: E402
from repro.server.client import RetryingClient  # noqa: E402
from repro.server.pool import ServerPool  # noqa: E402
from repro.server.wire import COLUMNAR_CONTENT_TYPE  # noqa: E402
from repro.sim.scale import scale_program  # noqa: E402
from repro.sim.workloads import s3d  # noqa: E402


def checksum_overhead(repeats: int = 40, loads_per_sample: int = 20) -> dict:
    """Cost of per-section CRC32 verification on the v2 binary loads.

    Loads the same serialized database with checksum verification on
    and off (same parse either way — the delta is pure CRC work) and
    reports the relative overhead against a <5% budget: framing exists
    to make corruption detectable, not to tax every clean load.

    Methodology matters at sub-millisecond scale: both modes are warmed
    first, each timing sample batches several loads, the two modes'
    samples alternate in both orders (so drift and cache effects hit
    them equally), and best-of-N per mode shaves scheduler noise.
    """
    blob = binio.dumps_binary(Experiment.from_program(s3d.build()))

    def sample(verify: bool) -> float:
        t0 = time.perf_counter()
        for _ in range(loads_per_sample):
            binio.loads_binary(blob, verify_checksums=verify)
        return (time.perf_counter() - t0) / loads_per_sample

    for _ in range(3):  # warm both paths outside the timed window
        sample(True), sample(False)
    v_times, u_times = [], []
    for i in range(repeats):
        if i % 2:
            v_times.append(sample(True))
            u_times.append(sample(False))
        else:
            u_times.append(sample(False))
            v_times.append(sample(True))
    verified, unverified = min(v_times), min(u_times)
    return {
        "database_bytes": len(blob),
        "load_verified_ms": round(verified * 1000, 4),
        "load_unverified_ms": round(unverified * 1000, 4),
        "overhead_pct": round(100.0 * (verified - unverified)
                              / max(unverified, 1e-9), 2),
        "budget_pct": 5.0,
    }


def tracing_overhead(repeats: int = 30, reqs_per_sample: int = 20) -> dict:
    """Cost of the self-profiling span tracer on served requests.

    Drives the same cache-hit render through a real socket round trip
    (the unit a client of ``repro-serve --self-profile`` pays for) with
    the tracer installed and uninstalled — identical work either way,
    the delta is span bookkeeping — and reports the relative overhead
    against a <3% budget: observability that taxes the thing it
    observes stops being worth reading.

    Same methodology as :func:`checksum_overhead` — warm both modes,
    batch each sample, alternate the two modes in both orders, take
    best-of-N — plus per-hook-site microbenches (the absolute cost of
    one disabled and one enabled span, in nanoseconds) and an
    end-to-end check that the recorded spans export to a loadable
    database whose three views actually show the request pipeline.
    """
    uninstall()  # start from a clean global regardless of caller state
    server = build_server(workload="fig1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    sid = server.app.registry.list_info()[0]["id"]
    body = {"view": "cct", "depth": 3}
    path = f"/v1/sessions/{sid}/render"

    def sample() -> float:
        t0 = time.perf_counter()
        for _ in range(reqs_per_sample):
            fire(base, "POST", path, body)
        return (time.perf_counter() - t0) / reqs_per_sample

    for _ in range(3):  # warm both paths outside the timed window
        sample()
        install()
        sample()
        uninstall()
    on_times, off_times = [], []
    for i in range(repeats):
        if i % 2:
            install()
            on_times.append(sample())
            uninstall()
            off_times.append(sample())
        else:
            off_times.append(sample())
            install()
            on_times.append(sample())
            uninstall()
    traced, untraced = min(on_times), min(off_times)

    def per_span_ns(n: int = 200_000) -> float:
        t0 = time.perf_counter()
        for _ in range(n):
            with span("bench.noop"):
                pass
        return (time.perf_counter() - t0) / n * 1e9

    # hook-site cost: disabled is one global read + a shared no-op
    # object; enabled pays the full record (clock, push/pop, dict)
    disabled_ns = per_span_ns()
    install()
    enabled_ns = per_span_ns()
    uninstall()

    # dogfooding proof: spans from a short traced run round-trip through
    # the regular v2 database and render in all three views
    tracer = install()
    for _ in range(5):
        fire(base, "POST", path, body)
    fire(base, "GET", f"/v1/sessions/{sid}/hotpath")
    uninstall()
    server.shutdown()
    server.server_close()
    import tempfile

    from repro.core.views import ViewKind
    from repro.viewer.session import ViewerSession
    from repro.viewer.table import render_view

    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "self.rpdb")
        _exported, db_bytes = save_self_profile(tracer, db_path)
        loaded = database.load(db_path)
        session = ViewerSession(loaded)
        views_ok = 0
        for kind in ViewKind:
            text = render_view(session.view(kind), depth=4)
            assert "server.request" in text, kind
            views_ok += 1

    return {
        "traced_request_ms": round(traced * 1000, 4),
        "untraced_request_ms": round(untraced * 1000, 4),
        "overhead_pct": round(100.0 * (traced - untraced)
                              / max(untraced, 1e-9), 2),
        "budget_pct": 3.0,
        "disabled_span_ns": round(disabled_ns, 1),
        "enabled_span_ns": round(enabled_ns, 1),
        "self_profile": {
            "spans": tracer.span_count(),
            "database_bytes": db_bytes,
            "views_rendered": views_ok,
        },
    }


def _build_scaled_db(tmp: str, fanout: int = 5, depth: int = 5,
                     nranks: int = 4) -> str:
    """A synthetic database whose CCT table runs to thousands of rows.

    The built-in workloads mirror the paper's figures and stay small;
    encoding throughput only separates the wire formats once a table is
    big enough that serialization, not socket bookkeeping, dominates.
    """
    experiment = Experiment.from_program(
        scale_program(fanout=fanout, depth=depth), nranks=nranks
    )
    path = str(Path(tmp) / f"scale-f{fanout}d{depth}.rpdb")
    Path(path).write_bytes(binio.dumps_binary(experiment))
    return path


def _keepalive_loop(host: str, port: int, path: str, headers: dict,
                    n_requests: int, failures: list) -> None:
    """Drive one persistent connection; reconnect once per failure."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        for _ in range(n_requests):
            try:
                conn.request("GET", path, headers=headers)
                response = conn.getresponse()
                response.read()
                if response.status != 200:
                    failures.append(response.status)
            except (OSError, http.client.HTTPException) as exc:
                failures.append(type(exc).__name__)
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
    finally:
        conn.close()


def scaling_curve(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    clients: int = 8,
    requests: int = 150,
    view: str = "cct",
    depth: int = 6,
) -> dict:
    """Pool throughput at each worker count, for both wire encodings.

    Each client thread owns one session (preloaded identically in every
    worker, so session-affinity spreads them across the pool) and one
    keep-alive connection.  Because every request on a connection names
    the same session, the worker's affinity discipline keeps the
    connection open — routing is paid once and requests then flow with
    no further routing cost, the pool's intended steady state.  (A
    connection switching sessions would be refused with 421 and
    re-routed on reconnect; this workload never does.)
    """
    table_query = f"view={view}&depth={depth}&max_rows=100000"
    curve: list[dict] = []
    parity = False
    response_bytes = {}
    with tempfile.TemporaryDirectory() as tmp:
        db_path = _build_scaled_db(tmp)
        config = {"databases": [db_path] * clients, "max_body": 1 << 20}
        for workers in worker_counts:
            pool = ServerPool(workers=workers, config=config).start()
            try:
                host, port = pool.address
                client = RetryingClient(base_url=f"http://{host}:{port}")
                if not parity:
                    # decoded columnar must equal the JSON table exactly
                    # (floats included: JSON's repr round-trips binary64)
                    as_json = client.get_table(
                        "s1", columnar=False,
                        view=view, depth=depth, max_rows=100000,
                    )
                    as_cols = client.get_table(
                        "s1", columnar=True,
                        view=view, depth=depth, max_rows=100000,
                    )
                    assert as_cols.content_type == COLUMNAR_CONTENT_TYPE
                    reference = {k: v for k, v in as_json.payload.items()
                                 if k != "session"}
                    assert as_cols.payload == reference, "encoding mismatch"
                    response_bytes = {"json": len(as_json.body),
                                      "columnar": len(as_cols.body)}
                    parity = True
                sids = [f"s{i + 1}" for i in range(clients)]
                for encoding in ("json", "columnar"):
                    headers = (
                        {"Accept": COLUMNAR_CONTENT_TYPE}
                        if encoding == "columnar" else {}
                    )
                    # warm every session's cache (and adoption) untimed
                    for sid in sids:
                        _keepalive_loop(
                            host, port,
                            f"/v1/sessions/{sid}/table?{table_query}",
                            headers, 2, [],
                        )
                    failures: list = []
                    threads = [
                        threading.Thread(
                            target=_keepalive_loop,
                            args=(host, port,
                                  f"/v1/sessions/{sid}/table?{table_query}",
                                  headers, requests, failures),
                        )
                        for sid in sids
                    ]
                    t0 = time.perf_counter()
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
                    elapsed = time.perf_counter() - t0
                    total = clients * requests
                    curve.append({
                        "workers": workers,
                        "cpu_count": os.cpu_count(),
                        "encoding": encoding,
                        "clients": clients,
                        "requests": total,
                        "failures": len(failures),
                        "elapsed_s": round(elapsed, 4),
                        "requests_per_sec": round(total / elapsed, 1),
                    })
            finally:
                pool.close()

    def rate(workers: int, encoding: str) -> float:
        for block in curve:
            if block["workers"] == workers and block["encoding"] == encoding:
                return block["requests_per_sec"]
        return 0.0

    baseline = rate(worker_counts[0], "json")
    best = max(worker_counts)
    return {
        "endpoint": "/v1/sessions/<sid>/table",
        "table": {"view": view, "depth": depth, "max_rows": 100000},
        "parity_verified": parity,
        "response_bytes": response_bytes,
        "curve": curve,
        "summary": {
            "single_worker_json_rps": baseline,
            "best_columnar_rps": max(rate(w, "columnar")
                                     for w in worker_counts),
            "speedup_columnar_vs_json_1w": round(
                rate(worker_counts[0], "columnar") / max(baseline, 1e-9), 2),
            "speedup_best_vs_json_1w": round(
                rate(best, "columnar") / max(baseline, 1e-9), 2),
        },
    }


def fire(base: str, method: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.status in (200, 201), (path, resp.status)
        return json.loads(resp.read())


def client_loop(base: str, sid: str, n_requests: int) -> None:
    for i in range(n_requests):
        if i % 10 < 7:  # steady state: the same cached render
            fire(base, "POST", f"/v1/sessions/{sid}/render",
                 {"view": "cct", "depth": 3})
        elif i % 10 < 9:  # a small working set of varied renders
            fire(base, "POST", f"/v1/sessions/{sid}/render",
                 {"view": ("flat", "callers")[i % 2], "depth": 2 + i % 3})
        else:
            fire(base, "GET", f"/v1/sessions/{sid}/hotpath")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_server.json",
                        help="output path, relative to the repository root")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=60,
                        help="requests per client thread")
    parser.add_argument("--workload", default="fig1")
    parser.add_argument("--scale-requests", type=int, default=150,
                        help="requests per client in each scaling-curve "
                             "block (1/2/4/8 workers x 2 encodings)")
    args = parser.parse_args(argv)

    server = build_server(workload=args.workload, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    sid = server.app.registry.list_info()[0]["id"]

    # warm the lazy views and the cache once, outside the timed window
    fire(base, "POST", f"/v1/sessions/{sid}/render",
         {"view": "cct", "depth": 3})

    clients = [
        threading.Thread(target=client_loop, args=(base, sid, args.requests))
        for _ in range(args.clients)
    ]
    t0 = time.perf_counter()
    for c in clients:
        c.start()
    for c in clients:
        c.join()
    elapsed = time.perf_counter() - t0

    stats = fire(base, "GET", "/v1/stats")
    server.shutdown()
    server.server_close()

    total = args.clients * args.requests
    result = {
        "workload": args.workload,
        "workers": 1,
        "cpu_count": os.cpu_count(),
        "encoding": "json",
        "clients": args.clients,
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "requests_per_sec": round(total / elapsed, 1),
        "cache_hit_rate": round(stats["cache"]["hits"]
                                / max(1, stats["cache"]["hits"]
                                      + stats["cache"]["misses"]), 4),
        "cache": stats["cache"],
        "server_requests": stats["requests"],
        "scaling": scaling_curve(requests=args.scale_requests,
                                 clients=args.clients),
        "checksum_verification": checksum_overhead(),
        "tracing_overhead": tracing_overhead(),
    }
    out = (REPO / args.output).resolve()
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"{total} requests from {args.clients} clients in {elapsed:.2f}s "
          f"-> {result['requests_per_sec']} req/s, "
          f"cache hit-rate {result['cache_hit_rate']:.1%}")
    for block in result["scaling"]["curve"]:
        print(f"scaling: {block['workers']}w {block['encoding']:8s} "
              f"{block['requests_per_sec']:>8} req/s "
              f"({block['failures']} failures, "
              f"{block['cpu_count']} cpu)")
    summary = result["scaling"]["summary"]
    print(f"scaling: columnar vs 1-worker json "
          f"{summary['speedup_best_vs_json_1w']}x at best worker count "
          f"(parity verified: {result['scaling']['parity_verified']})")
    tr = result["tracing_overhead"]
    print(f"tracing overhead {tr['overhead_pct']}% "
          f"(budget {tr['budget_pct']}%), "
          f"span {tr['disabled_span_ns']} ns off / "
          f"{tr['enabled_span_ns']} ns on, "
          f"self-profile {tr['self_profile']['spans']} spans -> "
          f"{tr['self_profile']['database_bytes']} bytes")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared fixtures for the benchmark harness.

Every bench module regenerates one paper figure/claim: it benchmarks the
computation that produces it and prints the paper-vs-measured rows once,
so ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
harness.
"""

from __future__ import annotations

import pytest

_printed: set[str] = set()


@pytest.fixture()
def print_report(capsys):
    """Print an ExperimentReport once per session, outside capture."""

    def _print(report) -> None:
        if report.exp_id in _printed:
            return
        _printed.add(report.exp_id)
        with capsys.disabled():
            print()
            print(report.render())

    return _print

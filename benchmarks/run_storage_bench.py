#!/usr/bin/env python
"""Record the out-of-core storage tier's numbers in ``BENCH_storage.json``.

For each rank count (default 64, 256, 1000) this:

1. generates one synthetic ``.rpdb`` per rank (``repro.sim.scale``);
2. streams them through :func:`repro.hpcprof.merge.merge_rank_files`
   into an mmap-backed ``.rpstore`` under the default working-set
   budget, timing the merge;
3. opens the store **in a fresh subprocess**, renders all three views,
   and records wall-clock open latency plus the subprocess's peak RSS
   (``getrusage(RUSAGE_SELF).ru_maxrss``) — a clean number untouched by
   the generator's own allocations;
4. does the same with the fully in-memory path (load every rank,
   ``merge_experiments``) at the smaller sizes, so the report shows the
   RSS gap the store exists to close; at the smallest size the two
   paths' rendered views are asserted byte-identical.

It also measures the profile corpus (``repro.corpus``): ingesting 100
profiles through the journaled staging/intent/rename/commit protocol,
then reopening the catalog cold — a full journal replay — plus a
recovery open with an interrupted ingest left pending.  The replay
must stay under 250 ms for the 100-profile catalog; the run fails
otherwise so the number cannot silently regress.

Usage::

    python benchmarks/run_storage_bench.py [-o BENCH_storage.json]
        [--ranks 64 256 1000] [--corpus-only]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.hpcprof.merge import DEFAULT_WORKING_SET, merge_rank_files  # noqa: E402
from repro.sim.scale import generate_rank_files  # noqa: E402

#: ranks at which the in-memory reference path is also measured (loading
#: every rank eagerly at 1000 ranks is exactly what we are avoiding)
_INMEM_CAP = 256

_CHILD_OOC = r"""
import json, resource, sys, time
t0 = time.perf_counter()
from repro.hpcprof import database
from repro.viewer.table import render_view
exp = database.load(sys.argv[1])
t_open = time.perf_counter() - t0
renders = [render_view(v, depth=4) for v in exp.views()]
t_total = time.perf_counter() - t0
exp.close()
print(json.dumps({
    "open_s": t_open,
    "open_and_render_s": t_total,
    "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "render_bytes": sum(len(r) for r in renders),
}))
"""

_CHILD_INMEM = r"""
import glob, json, resource, sys, time
t0 = time.perf_counter()
from repro.hpcprof import database
from repro.hpcprof.merge import merge_experiments
from repro.viewer.table import render_view
ranks = [database.load(p) for p in sorted(glob.glob(sys.argv[1] + "/*.rpdb"))]
exp = merge_experiments(ranks, name="merged", summarize="all")
renders = [render_view(v, depth=4) for v in exp.views()]
t_total = time.perf_counter() - t0
print(json.dumps({
    "open_and_render_s": t_total,
    "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "render_bytes": sum(len(r) for r in renders),
}))
"""


def _run_child(code: str, arg: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code, arg],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def _dir_bytes(path: str) -> int:
    return sum(
        os.path.getsize(os.path.join(root, f))
        for root, _dirs, files in os.walk(path)
        for f in files
    )


def measure(nranks: int, workdir: str) -> dict:
    rank_dir = os.path.join(workdir, f"ranks-{nranks}")
    t0 = time.perf_counter()
    paths = generate_rank_files(rank_dir, nranks)
    gen_s = time.perf_counter() - t0

    store = os.path.join(workdir, f"merged-{nranks}.rpstore")
    t0 = time.perf_counter()
    report = merge_rank_files(paths, store, summarize="all")
    merge_s = time.perf_counter() - t0

    ooc = _run_child(_CHILD_OOC, store)
    entry = {
        "nranks": nranks,
        "scopes": report.nnodes,
        "metrics": report.num_metrics,
        "rank_files_bytes": sum(os.path.getsize(p) for p in paths),
        "store_bytes": _dir_bytes(store),
        "generate_s": round(gen_s, 3),
        "merge_s": round(merge_s, 3),
        "merge_peak_estimate_bytes": report.peak_estimate_bytes,
        "working_set_budget_bytes": DEFAULT_WORKING_SET,
        "out_of_core": ooc,
    }
    if nranks <= _INMEM_CAP:
        inmem = _run_child(_CHILD_INMEM, rank_dir)
        entry["in_memory"] = inmem
        entry["rss_ratio"] = round(
            inmem["peak_rss_kib"] / ooc["peak_rss_kib"], 2
        )
        if entry["out_of_core"]["render_bytes"] != inmem["render_bytes"]:
            raise RuntimeError(
                f"nranks={nranks}: out-of-core render differs from "
                f"in-memory render"
            )
    return entry


#: replay budget from the roadmap: a 100-profile catalog must reopen
#: (full journal scan + CRC of every frame) in under a quarter second
_REPLAY_BUDGET_S = 0.250


def measure_corpus(workdir: str, nprofiles: int = 100) -> dict:
    from repro.corpus import CorpusCatalog, open_corpus
    from repro.hpcprof import binio
    from repro.hpcprof.experiment import Experiment
    from repro.sim.workloads import fig1
    from repro.testing.faults import CrashPointHit, crashing_at

    blob = binio.dumps_binary(Experiment.from_program(fig1.build()))
    root = os.path.join(workdir, "corpus")

    catalog = CorpusCatalog(root, create=True)
    t0 = time.perf_counter()
    for i in range(nprofiles):
        catalog.ingest_bytes("bench", blob, name=f"run-{i:03d}",
                             group=f"g{i % 4}")
    ingest_s = time.perf_counter() - t0
    catalog.close()

    # cold reopen: scan + CRC-check every journal frame, rebuild state
    t0 = time.perf_counter()
    with open_corpus(root) as corpus:
        replay_s = time.perf_counter() - t0
        count = len(corpus.list("bench"))
        journal_bytes = os.path.getsize(os.path.join(root, "journal.rjl"))
        assert count == nprofiles, count

        # leave an ingest interrupted mid-commit, then time the reopen
        # that has to notice and resume it
        try:
            with crashing_at("corpus.ingest.renamed"):
                corpus.ingest_bytes("bench", blob, name="interrupted")
        except CrashPointHit:
            pass
    t0 = time.perf_counter()
    with open_corpus(root) as corpus:
        recovery_s = time.perf_counter() - t0
        assert len(corpus.list("bench")) == nprofiles + 1

    if replay_s > _REPLAY_BUDGET_S:
        raise RuntimeError(
            f"journal replay of {nprofiles} profiles took {replay_s:.3f}s "
            f"(> {_REPLAY_BUDGET_S}s budget)"
        )
    return {
        "profiles": nprofiles,
        "profile_bytes": len(blob),
        "journal_bytes": journal_bytes,
        "ingest_s": round(ingest_s, 3),
        "ingest_per_profile_ms": round(ingest_s / nprofiles * 1e3, 3),
        "replay_s": round(replay_s, 4),
        "recovery_with_pending_intent_s": round(recovery_s, 4),
        "replay_budget_s": _REPLAY_BUDGET_S,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=str(REPO / "BENCH_storage.json"))
    parser.add_argument("--ranks", type=int, nargs="+",
                        default=[64, 256, 1000])
    parser.add_argument("--corpus-only", action="store_true",
                        help="refresh only the corpus block, merging "
                             "into the existing output file")
    args = parser.parse_args(argv)

    results = []
    with tempfile.TemporaryDirectory() as workdir:
        if not args.corpus_only:
            for nranks in args.ranks:
                print(f"measuring nranks={nranks} ...", flush=True)
                entry = measure(nranks, workdir)
                ooc = entry["out_of_core"]
                line = (f"  merge {entry['merge_s']}s, open {ooc['open_s']*1e3:.1f}ms, "
                        f"open+render {ooc['open_and_render_s']*1e3:.1f}ms, "
                        f"peak RSS {ooc['peak_rss_kib']/1024:.1f} MiB")
                if "rss_ratio" in entry:
                    line += (f" (in-memory "
                             f"{entry['in_memory']['peak_rss_kib']/1024:.1f} MiB, "
                             f"{entry['rss_ratio']}x)")
                print(line, flush=True)
                results.append(entry)

        print("measuring corpus ingest + recovery ...", flush=True)
        corpus = measure_corpus(workdir)
        print(f"  ingest {corpus['profiles']} profiles "
              f"{corpus['ingest_s']}s "
              f"({corpus['ingest_per_profile_ms']}ms each), "
              f"replay {corpus['replay_s']*1e3:.1f}ms, "
              f"recovery {corpus['recovery_with_pending_intent_s']*1e3:.1f}ms",
              flush=True)

    out = Path(args.output)
    if args.corpus_only and out.exists():
        payload = json.loads(out.read_text())
    else:
        payload = {
            "benchmark": "out-of-core column store",
            "python": sys.version.split()[0],
            "results": results,
        }
    payload["corpus"] = corpus
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

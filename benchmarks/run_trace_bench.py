#!/usr/bin/env python
"""Record the trace layer's numbers in ``BENCH_trace.json``.

One measurement with its budgets enforced *in the run* so they cannot
silently regress: **windowed query latency vs window width** on a
~100k-event time-partitioned store.

Eight ranks of a rank-imbalanced uniform call tree run in trace mode
with fine slicing (~100k timestamped events), land in a chunked
``.rpstore`` with 64 time partitions, and a fresh subprocess opens the
store and times the same composed query (match-all + sort + limit)
over windows of increasing width — 1%, 5%, 25% and 100% of the trace
span — reporting per-width median latency over repeated runs.

Budgets:

* every width's median must stay under ``WINDOW_BUDGET_S`` (250 ms) —
  partition pruning plus pre-aggregated chunk slabs make narrow
  windows cheap and the full window no worse than the untimed query;
* narrow windows (< 25% of the span) must touch **fewer chunks than
  the store holds** — the pruning guarantee, asserted from the store's
  own ``chunks_touched`` counter;
* peak RSS after the whole battery may exceed the RSS right after
  open by at most ``RSS_RATIO_BUDGET`` — chunks are mmap-opened and
  never accumulated on the heap, so memory stays flat no matter how
  many windows are answered.

Usage::

    python benchmarks/run_trace_bench.py [-o BENCH_trace.json]
        [--repeats 15]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.sim.scale import scale_program  # noqa: E402
from repro.sim.spmd import trace_spmd  # noqa: E402
from repro.trace import create_trace_store  # noqa: E402

WINDOW_BUDGET_S = 0.25     # per-width median latency
RSS_RATIO_BUDGET = 1.5     # peak RSS after battery vs right after open
N_CHUNKS = 64              # time partitions in the benchmark store

#: window widths as fractions of the trace span
WIDTHS = (0.01, 0.05, 0.25, 1.0)

_CHILD = r"""
import json, resource, statistics, sys, time
from repro.query import query, run_query
from repro.trace import open_trace

store_path, widths_json, repeats = sys.argv[1], sys.argv[2], int(sys.argv[3])
widths = json.loads(widths_json)

store = open_trace(store_path)
metric = store.metrics.by_id(0).name
t0, t1 = store.t_begin, store.t_end
span = t1 - t0
# fault in the skeleton + one full answer before timing anything
run_query(query("**/*").window(None, None).sort(metric).limit(50), store)
rss_open = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

out = {"n_events": store.n_events, "chunks_total": store.chunks_total,
       "nranks": store.nranks, "widths": {}}
for width in widths:
    lo = t0 if width >= 1.0 else t0 + 0.4 * span
    hi = min(t1, lo + width * span)
    if width >= 1.0:
        hi = t1
    q = query("**/*").window(lo, hi).sort(metric).limit(50)
    run_query(q, store)  # warm
    store.reset_counters()
    run_query(q, store)
    touched = store.chunks_touched
    samples = []
    for _ in range(repeats):
        s = time.perf_counter()
        result = run_query(q, store)
        samples.append(time.perf_counter() - s)
    out["widths"][str(width)] = {
        "window_s": hi - lo,
        "rows": result.row_count,
        "chunks_touched": touched,
        "median_s": statistics.median(samples),
        "max_s": max(samples),
    }
out["rss_open_kib"] = rss_open
out["peak_rss_kib"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
store.close()
print(json.dumps(out))
"""


def _run_child(code: str, *argv: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code, *argv],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def build_store(workdir: str) -> tuple[str, float]:
    """~100k events: 8 imbalanced ranks, 48 slices per attribution."""
    t0 = time.perf_counter()
    traces = trace_spmd(scale_program(fanout=6, depth=3), nranks=8,
                        seed=7, trace_slices=48, name="bench-trace")
    span = traces.t_end - traces.t_begin
    path = os.path.join(workdir, "bench-trace.rpstore")
    store = create_trace_store(traces, path, chunk_duration=span / N_CHUNKS)
    store.close()
    return path, time.perf_counter() - t0


def bench_windows(workdir: str, repeats: int) -> dict:
    path, build_s = build_store(workdir)
    out = _run_child(_CHILD, path, json.dumps(list(WIDTHS)), str(repeats))
    out["build_s"] = round(build_s, 3)
    out["repeats"] = repeats
    out["budget_s"] = WINDOW_BUDGET_S

    failures = [
        f"width {width}: median {stats['median_s'] * 1e3:.1f} ms "
        f"> budget {WINDOW_BUDGET_S * 1e3:.0f} ms"
        for width, stats in out["widths"].items()
        if stats["median_s"] > WINDOW_BUDGET_S
    ]
    if failures:
        raise SystemExit("window latency budget blown:\n  "
                         + "\n  ".join(failures))

    for width, stats in out["widths"].items():
        if float(width) < 0.25 and \
                stats["chunks_touched"] >= out["chunks_total"]:
            raise SystemExit(
                f"no pruning at width {width}: touched "
                f"{stats['chunks_touched']}/{out['chunks_total']} chunks")

    rss_ratio = out["peak_rss_kib"] / out["rss_open_kib"]
    out["rss_ratio"] = round(rss_ratio, 3)
    out["rss_ratio_budget"] = RSS_RATIO_BUDGET
    if rss_ratio > RSS_RATIO_BUDGET:
        raise SystemExit(
            f"RSS not flat: the window battery peaked at "
            f"{rss_ratio:.2f}x the post-open RSS "
            f"(budget {RSS_RATIO_BUDGET}x)")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_trace.json",
                        help="output path, relative to the repository root")
    parser.add_argument("--repeats", type=int, default=15,
                        help="latency samples per width (default 15)")
    args = parser.parse_args(argv)

    report = {"benchmark": "time-dimension trace store",
              "python": platform.python_version()}
    with tempfile.TemporaryDirectory(prefix="trace-bench-") as tmp:
        report["windows"] = bench_windows(tmp, args.repeats)

    out = (REPO / args.output).resolve()
    out.write_text(json.dumps(report, indent=2) + "\n")

    w = report["windows"]
    print(f"\nwindowed query latency on the {w['n_events']}-event "
          f"{w['chunks_total']}-chunk store "
          f"(budget {WINDOW_BUDGET_S * 1e3:.0f} ms each):")
    for width, stats in w["widths"].items():
        print(f"  {float(width) * 100:5.0f}% span "
              f"{stats['median_s'] * 1e3:7.2f} ms median  "
              f"{stats['chunks_touched']:3d}/{w['chunks_total']} chunks  "
              f"{stats['rows']:5d} rows")
    print(f"RSS {w['rss_ratio']}x post-open "
          f"(budget {RSS_RATIO_BUDGET}x); store built in {w['build_s']} s")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

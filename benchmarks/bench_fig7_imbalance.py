"""Benchmark Fig. 7: PFLOTRAN SPMD run, merge, and summarization."""

from __future__ import annotations

import pytest

from repro.experiments import fig7_imbalance
from repro.hpcrun.counters import CYCLES
from repro.sim.spmd import spmd_experiment
from repro.sim.workloads import pflotran

NRANKS = 64


@pytest.fixture(scope="module")
def experiment():
    return fig7_imbalance.build_experiment(NRANKS)


def test_bench_fig7_spmd_pipeline(benchmark, print_report):
    exp = benchmark(lambda: spmd_experiment(pflotran.build(), nranks=NRANKS))
    assert exp.nranks == NRANKS
    print_report(fig7_imbalance.run(NRANKS))


def test_bench_fig7_summarize(benchmark, experiment):
    def summarize():
        experiment._summaries.clear()
        metrics = experiment.metrics
        # re-registering would collide; summarize a fresh copy each round
        from repro.hpcprof.summarize import summarize_ranks

        table = metrics.copy()
        return summarize_ranks(
            experiment.cct, experiment.rank_ccts, table,
            metrics.by_name(CYCLES).mid,
        )

    ids = benchmark(summarize)
    assert len(ids.all()) == 4


def test_bench_fig7_charts(benchmark, experiment):
    from repro.viewer.charts import render_rank_panel

    vec = experiment.rank_vector(experiment.cct.root, CYCLES)
    panel = benchmark(lambda: render_rank_panel(vec, title="root cycles"))
    assert "imbalance" in panel

"""Benchmark Fig. 4: MOAB Callers View construction and expansion."""

from __future__ import annotations

import pytest

from repro.experiments import fig4_moab_callers


@pytest.fixture(scope="module")
def experiment():
    return fig4_moab_callers.build_experiment()


def test_bench_fig4_callers_view(benchmark, experiment, print_report):
    def build_and_expand():
        view = experiment.callers_view()
        memset = next(
            r for r in view.roots if r.name == "_intel_fast_memset.A"
        )
        return len(memset.children)

    ncallers = benchmark(build_and_expand)
    assert ncallers == 2
    print_report(fig4_moab_callers.run())


def test_bench_fig4_full_callers_materialization(benchmark, experiment):
    def build_all():
        view = experiment.callers_view(eager=True)
        return sum(1 for r in view.roots for _ in r.walk())

    assert benchmark(build_all) > 10

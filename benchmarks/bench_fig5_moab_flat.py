"""Benchmark Fig. 5: MOAB Flat View with hierarchical inlined attribution."""

from __future__ import annotations

import pytest

from repro.core.views import NodeCategory
from repro.experiments import fig5_moab_flat


@pytest.fixture(scope="module")
def experiment():
    return fig5_moab_flat.build_experiment()


def test_bench_fig5_flat_view(benchmark, experiment, print_report):
    def build_flat():
        view = experiment.flat_view()
        return sum(1 for r in view.roots for _ in r.walk())

    assert benchmark(build_flat) > 20
    print_report(fig5_moab_flat.run())


def test_bench_fig5_flattening(benchmark, experiment):
    view = experiment.flat_view()
    for root in view.roots:
        for _ in root.walk():
            pass

    def flatten_twice():
        view.flatten_depth = 0
        view.flatten()
        view.flatten()
        return len(view.current_roots())

    loops_level = benchmark(flatten_twice)
    assert loops_level > 5

"""Benchmark §IX (ongoing work): XML vs compact binary experiment databases.

The paper names "replacing our XML format for profiles with a more
compact binary format" as ongoing work; this bench quantifies the win on
a mid-sized experiment: serialized size, dump time, and load time.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import ExperimentReport
from repro.experiments.scalability import synthetic_tree_program
from repro.hpcprof import binio, xmlio
from repro.hpcprof.experiment import Experiment


@pytest.fixture(scope="module")
def experiment():
    return Experiment.from_program(synthetic_tree_program(fanout=8, depth=3))


@pytest.fixture(scope="module")
def blobs(experiment):
    return {
        "xml": xmlio.dumps_xml(experiment),
        "binary": binio.dumps_binary(experiment),
    }


def test_bench_xml_dump(benchmark, experiment):
    data = benchmark(lambda: xmlio.dumps_xml(experiment))
    assert data.startswith(b"<?xml")


def test_bench_binary_dump(benchmark, experiment):
    data = benchmark(lambda: binio.dumps_binary(experiment))
    assert data[:4] == b"RPDB"


def test_bench_xml_load(benchmark, blobs):
    exp = benchmark(lambda: xmlio.loads_xml(blobs["xml"]))
    assert len(exp.cct) > 100


def test_bench_binary_load(benchmark, blobs, print_report):
    exp = benchmark(lambda: binio.loads_binary(blobs["binary"]))
    assert len(exp.cct) > 100

    report = ExperimentReport(
        "§IX-db", "Compact binary database vs XML (ongoing-work claim)"
    )
    xml_size, bin_size = len(blobs["xml"]), len(blobs["binary"])
    report.add("XML size", None, xml_size / 1024.0, unit="KiB")
    report.add("binary size", None, bin_size / 1024.0, unit="KiB")
    report.add("binary smaller than XML", "yes",
               "yes" if bin_size < xml_size else "no", tolerance=0.0)
    report.add("compression ratio", None, xml_size / bin_size, unit="x")
    print_report(report)

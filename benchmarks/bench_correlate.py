"""Benchmark the core pipeline stages: execution, correlation, attribution.

Not tied to one figure; establishes the throughput of the substrate the
presentation layer sits on (useful when judging the §VII claims).
"""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.experiments.scalability import synthetic_tree_program
from repro.hpcprof.correlate import correlate
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute


@pytest.fixture(scope="module")
def inputs():
    program = synthetic_tree_program(fanout=8, depth=3)
    structure = build_structure(program)
    profile = execute(program)
    return program, structure, profile


def test_bench_execute(benchmark, inputs):
    program, _structure, _profile = inputs
    profile = benchmark(lambda: execute(program))
    assert profile.sample_count > 100


def test_bench_structure_recovery(benchmark, inputs):
    program, _s, _p = inputs
    model = benchmark(lambda: build_structure(program))
    assert model.stats()["procedure"] > 10


def test_bench_correlate(benchmark, inputs):
    _program, structure, profile = inputs
    cct = benchmark(lambda: correlate(profile, structure))
    assert len(cct) > 100


def test_bench_attribute(benchmark, inputs):
    _program, structure, profile = inputs
    cct = correlate(profile, structure)
    benchmark(lambda: attribute(cct))
    assert cct.root.inclusive

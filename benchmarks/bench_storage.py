"""Ablation: sparse dict storage vs dense numpy matrices.

DESIGN.md lists this trade-off explicitly.  Dense matrices win on bulk
numeric passes (vectorized Eq. 2, whole-tree top-k); sparse dicts win on
memory whenever the data is as sparse as the paper claims.  Both sides
are measured here, and the report prints the memory ratio at realistic
sparsity.
"""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute
from repro.experiments.report import ExperimentReport
from repro.hpcprof.dense import DenseMetrics, attribute_dense
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads.synthetic import uniform_tree

NUM_METRICS = 1


@pytest.fixture(scope="module")
def experiment():
    return Experiment.from_program(uniform_tree(fanout=8, depth=3))


@pytest.fixture(scope="module")
def dense(experiment):
    return DenseMetrics.from_cct(experiment.cct, NUM_METRICS)


def test_bench_sparse_attribution(benchmark, experiment):
    benchmark(lambda: attribute(experiment.cct))


def test_bench_dense_attribution(benchmark, experiment):
    dense = DenseMetrics.from_cct(experiment.cct, NUM_METRICS)
    benchmark(dense.recompute_inclusive)


def test_bench_dense_projection_build(benchmark, experiment):
    benchmark(lambda: DenseMetrics.from_cct(experiment.cct, NUM_METRICS))


def test_bench_dense_top_k(benchmark, dense):
    top = benchmark(lambda: dense.top_k(0, k=20))
    assert len(top) == 20


def test_bench_sparse_top_k(benchmark, experiment):
    def naive():
        return sorted(
            ((n, n.exclusive.get(0, 0.0)) for n in experiment.cct.walk()),
            key=lambda t: -t[1],
        )[:20]

    assert len(benchmark(naive)) == 20


def test_bench_report(benchmark, experiment, dense, print_report):
    sparse_mem = benchmark(
        lambda: DenseMetrics.sparse_memory_bytes(experiment.cct)
    )
    report = ExperimentReport(
        "ablation-storage", "Sparse dicts vs dense numpy matrices"
    )
    dense_mem = dense.memory_bytes()
    report.add("CCT scopes", None, float(len(experiment.cct)))
    report.add("nonzero cell fraction", None, dense.nonzero_fraction())
    report.add("sparse memory", None, sparse_mem / 1024.0, unit="KiB")
    report.add("dense memory", None, dense_mem / 1024.0, unit="KiB")
    report.add("dense inclusive matches sparse", "yes",
               "yes" if _cross_check(experiment) else "no", tolerance=0.0)
    print_report(report)


def _cross_check(experiment) -> bool:
    dense = attribute_dense(experiment.cct, NUM_METRICS)
    root_row = dense.index[experiment.cct.root.uid]
    return dense.inclusive[root_row, 0] == experiment.cct.root.inclusive.get(0, 0.0)

"""Ablation: sparse dict storage vs dense numpy matrices.

DESIGN.md lists this trade-off explicitly.  Dense matrices win on bulk
numeric passes (vectorized Eq. 2, whole-tree top-k); sparse dicts win on
memory whenever the data is as sparse as the paper claims.  Both sides
are measured here, and the report prints the memory ratio at realistic
sparsity.
"""

from __future__ import annotations

import pytest

from repro.core.attribution import attribute, attribute_dicts
from repro.core.engine import MetricEngine
from repro.experiments.report import ExperimentReport
from repro.hpcprof.dense import DenseMetrics, attribute_dense
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads.synthetic import uniform_tree, wide_flat

NUM_METRICS = 1

_SHAPES = {
    "tree-6x3": lambda: uniform_tree(6, 3),
    "wide-400": lambda: wide_flat(400),
}


@pytest.fixture(scope="module")
def experiment():
    return Experiment.from_program(uniform_tree(fanout=8, depth=3))


@pytest.fixture(scope="module")
def dense(experiment):
    return DenseMetrics.from_cct(experiment.cct, NUM_METRICS)


@pytest.fixture(scope="module", params=sorted(_SHAPES))
def shaped(request):
    return Experiment.from_program(_SHAPES[request.param]())


@pytest.fixture(scope="module")
def shaped_engine(shaped):
    return MetricEngine(shaped.cct, NUM_METRICS)


@pytest.mark.bench_smoke
def test_bench_sparse_attribution(benchmark, experiment):
    benchmark(lambda: attribute(experiment.cct))


@pytest.mark.bench_smoke
def test_bench_dense_attribution(benchmark, experiment):
    dense = DenseMetrics.from_cct(experiment.cct, NUM_METRICS)
    benchmark(dense.recompute_inclusive)


def test_bench_dense_projection_build(benchmark, experiment):
    benchmark(lambda: DenseMetrics.from_cct(experiment.cct, NUM_METRICS))


@pytest.mark.bench_smoke
def test_bench_dense_top_k(benchmark, dense):
    top = benchmark(lambda: dense.top_k(0, k=20))
    assert len(top) == 20


# ------------------------------------------------------------------ #
# bulk-kernel pairs: the dict baseline vs the production MetricEngine,
# on the two acceptance shapes (tree-6x3 dense/balanced, wide-400 flat).
# The run_views_bench.py harness records the dict/engine ratios in
# BENCH_views.json; the bar is >= 5x on every pair.
# ------------------------------------------------------------------ #
def test_bench_bulk_attribution_dict(benchmark, shaped):
    benchmark(lambda: attribute_dicts(shaped.cct))


def test_bench_bulk_attribution_engine(benchmark, shaped_engine):
    benchmark(shaped_engine.refresh)


def test_bench_bulk_top_k_dict(benchmark, shaped):
    def naive():
        return sorted(
            ((n, n.exclusive.get(0, 0.0)) for n in shaped.cct.walk()),
            key=lambda t: -t[1],
        )[:20]

    assert len(benchmark(naive)) == 20


def test_bench_bulk_top_k_engine(benchmark, shaped_engine):
    assert len(benchmark(lambda: shaped_engine.top_k(0, k=20))) == 20


def test_bench_bulk_shares_dict(benchmark, shaped):
    total = shaped.cct.root.inclusive.get(0, 0.0)

    def naive():
        return [n.exclusive.get(0, 0.0) / total for n in shaped.cct.walk()]

    assert benchmark(naive)


def test_bench_bulk_shares_engine(benchmark, shaped_engine):
    assert len(benchmark(lambda: shaped_engine.shares(0))) == len(shaped_engine)


# ------------------------------------------------------------------ #
# out-of-core column store: open latency is the interactive-use bound
# (a viewer pointed at a thousand-rank merge must come up instantly;
# the matrices stay memory-mapped, so opening reads only the skeleton).
# run_storage_bench.py measures the full peak-RSS story in BENCH_storage.json.
# ------------------------------------------------------------------ #
@pytest.fixture(scope="module")
def store_path(tmp_path_factory, experiment):
    from repro.core.store import create_store

    path = str(tmp_path_factory.mktemp("store") / "bench.rpstore")
    create_store(experiment, path).close()
    return path


@pytest.mark.bench_smoke
def test_bench_store_open_latency(benchmark, store_path):
    from repro.core.store import open_store

    def open_touch_close():
        exp = open_store(store_path)
        rows = exp.engine.inclusive.shape[0]
        exp.close()
        return rows

    probe = open_store(store_path)
    expected = len(probe.cct)
    probe.close()
    assert benchmark(open_touch_close) == expected


def test_bench_sparse_top_k(benchmark, experiment):
    def naive():
        return sorted(
            ((n, n.exclusive.get(0, 0.0)) for n in experiment.cct.walk()),
            key=lambda t: -t[1],
        )[:20]

    assert len(benchmark(naive)) == 20


def test_bench_report(benchmark, experiment, dense, print_report):
    sparse_mem = benchmark(
        lambda: DenseMetrics.sparse_memory_bytes(experiment.cct)
    )
    report = ExperimentReport(
        "ablation-storage", "Sparse dicts vs dense numpy matrices"
    )
    dense_mem = dense.memory_bytes()
    report.add("CCT scopes", None, float(len(experiment.cct)))
    report.add("nonzero cell fraction", None, dense.nonzero_fraction())
    report.add("sparse memory", None, sparse_mem / 1024.0, unit="KiB")
    report.add("dense memory", None, dense_mem / 1024.0, unit="KiB")
    report.add("dense inclusive matches sparse", "yes",
               "yes" if _cross_check(experiment) else "no", tolerance=0.0)
    print_report(report)


def _cross_check(experiment) -> bool:
    dense = attribute_dense(experiment.cct, NUM_METRICS)
    root_row = dense.index[experiment.cct.root.uid]
    return dense.inclusive[root_row, 0] == experiment.cct.root.inclusive.get(0, 0.0)

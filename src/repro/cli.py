"""Command-line entry points (the tool suite's CLI surface).

The commands mirror the HPCToolkit workflow:

* ``repro-profile <script.py> [args…]`` — run a Python script under the
  tracing call path profiler (``hpcrun``), write a database;
* ``repro-sim <workload>`` — run a synthetic workload (``fig1``, ``s3d``,
  ``moab``, ``pflotran``) and write a database;
* ``repro-sim-scale <outdir>`` — write one synthetic database per rank,
  the thousand-rank input for the out-of-core merge;
* ``repro-prof-merge <rank.rpdb>… -o merged.rpstore`` — fold per-rank
  databases into one mmap-backed column store under a bounded working
  set (``hpcprof-mpi``);
* ``repro-view <database>`` — render the three views, optionally expand
  the hot path (``hpcviewer``); ``--out-of-core`` streams the database
  via mmap instead of reading it fully into memory;
* ``repro-serve <database> …`` — serve loaded databases as a concurrent
  JSON analysis API (the ``hpcviewer`` operations over HTTP);
* ``repro-experiments`` — run the paper-reproduction experiments and
  print (or write, with ``--markdown``) the paper-vs-measured report;
* ``repro-query <database> [pattern]`` — run a composable call-path
  query (``docs/query.md``) against a database, a corpus tenant, or the
  corpus-wide diagnosis rules;
* ``repro-trace`` — the time dimension (``docs/traces.md``): simulate
  traced workloads into time-partitioned stores, run windowed queries,
  and render flame-chart slabs and idleness series.
"""

from __future__ import annotations

import argparse
import json
import os
import runpy
import sys

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import ViewKind
from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.tracer import TracingProfiler
from repro.hpcstruct.pystruct import build_python_structure
from repro.viewer.session import ViewerSession
from repro.viewer.table import TableOptions

__all__ = ["main_profile", "main_sim", "main_sim_scale", "main_view",
           "main_serve", "main_prof_merge", "main_diff", "main_corpus",
           "main_experiments", "main_query", "main_trace"]

_WORKLOADS = ("fig1", "s3d", "moab", "pflotran")


# --------------------------------------------------------------------- #
def main_profile(argv: list[str] | None = None) -> int:
    """Profile a Python script and write an experiment database."""
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Run a Python script under the call path profiler.",
    )
    parser.add_argument("script", help="Python script to profile")
    parser.add_argument("script_args", nargs="*", help="arguments for it")
    parser.add_argument("-o", "--output", default="experiment.rpdb",
                        help="database path (.xml or .rpdb)")
    parser.add_argument("--roots", nargs="*", default=None,
                        help="source roots to attribute (default: script dir)")
    args = parser.parse_args(argv)

    script = os.path.abspath(args.script)
    roots = args.roots if args.roots else [os.path.dirname(script)]
    tracer = TracingProfiler(roots=roots)
    old_argv = sys.argv
    sys.argv = [script] + list(args.script_args)
    try:
        with tracer:
            runpy.run_path(script, run_name="__main__")
    finally:
        sys.argv = old_argv

    structure = build_python_structure([script],
                                       load_module=os.path.basename(script))
    exp = Experiment.from_profile(tracer.profile, structure,
                                  name=os.path.basename(script))
    size = database.save(exp, args.output)
    print(f"wrote {args.output} ({size / 1024:.1f} KiB, "
          f"{len(exp.cct)} scopes)")
    return 0


# --------------------------------------------------------------------- #
def main_sim(argv: list[str] | None = None) -> int:
    """Simulate a synthetic workload and write an experiment database."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run a synthetic workload model.",
    )
    parser.add_argument("workload", choices=_WORKLOADS)
    parser.add_argument("-n", "--nranks", type=int, default=1)
    parser.add_argument("-o", "--output", default=None,
                        help="database path (default: <workload>.rpdb)")
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument("--parallel", action="store_true",
                        help="execute ranks in worker processes")
    args = parser.parse_args(argv)

    if args.parallel:
        from repro.sim.parallel import spmd_experiment_parallel

        exp = spmd_experiment_parallel(
            f"repro.sim.workloads.{args.workload}:build",
            nranks=args.nranks,
            seed=args.seed,
        )
    else:
        import importlib

        module = importlib.import_module(
            f"repro.sim.workloads.{args.workload}"
        )
        exp = Experiment.from_program(
            module.build(), nranks=args.nranks, seed=args.seed
        )
    out = args.output or f"{args.workload}.rpdb"
    size = database.save(exp, out)
    print(f"wrote {out} ({size / 1024:.1f} KiB, {len(exp.cct)} scopes, "
          f"{exp.nranks} rank(s))")
    return 0


# --------------------------------------------------------------------- #
def main_sim_scale(argv: list[str] | None = None) -> int:
    """Generate per-rank databases for out-of-core scale studies."""
    parser = argparse.ArgumentParser(
        prog="repro-sim-scale",
        description="Write one synthetic .rpdb per rank (thousand-rank "
                    "input for repro-prof-merge).",
    )
    parser.add_argument("outdir", help="directory for rank####.rpdb files")
    parser.add_argument("-n", "--nranks", type=int, default=1000)
    parser.add_argument("--fanout", type=int, default=4)
    parser.add_argument("--depth", type=int, default=3)
    parser.add_argument("--imbalance", default="linear_skew",
                        help="load-imbalance model (uniform, linear_skew, "
                             "hotspot, lognormal_field)")
    parser.add_argument("--seed", type=int, default=2026)
    args = parser.parse_args(argv)

    from repro.sim.scale import generate_rank_files

    def heartbeat(rank: int, nranks: int) -> None:
        if (rank + 1) % 100 == 0 or rank + 1 == nranks:
            print(f"  {rank + 1}/{nranks} ranks", file=sys.stderr)

    paths = generate_rank_files(
        args.outdir, args.nranks, fanout=args.fanout, depth=args.depth,
        imbalance=args.imbalance, seed=args.seed, progress=heartbeat,
    )
    total = sum(os.path.getsize(p) for p in paths)
    print(f"wrote {len(paths)} rank databases to {args.outdir} "
          f"({total / 1024:.1f} KiB)")
    return 0


# --------------------------------------------------------------------- #
def main_prof_merge(argv: list[str] | None = None) -> int:
    """Merge per-rank databases into an out-of-core column store."""
    parser = argparse.ArgumentParser(
        prog="repro-prof-merge",
        description="Fold N per-rank databases into one mmap-backed "
                    ".rpstore under a bounded working set (hpcprof-mpi "
                    "substrate).",
    )
    parser.add_argument("inputs", nargs="+",
                        help="per-rank database files (.rpdb)")
    parser.add_argument("-o", "--output", default="merged.rpstore",
                        help="output store directory (default: %(default)s)")
    parser.add_argument("--name", default=None,
                        help="merged experiment name (default: first input's)")
    parser.add_argument("--working-set-mib", type=float, default=None,
                        help="working-set budget in MiB (default: 256)")
    parser.add_argument("--summarize", default="all", metavar="METRICS",
                        help="comma-separated metric names to summarize, "
                             "'all', or 'none'")
    parser.add_argument("--salvage", action="store_true",
                        help="salvage corrupted/truncated rank files "
                             "instead of failing")
    parser.add_argument("--overwrite", action="store_true",
                        help="replace an existing store at the output path")
    args = parser.parse_args(argv)

    from repro.hpcprof.merge import DEFAULT_WORKING_SET, merge_rank_files

    if args.summarize == "all":
        summarize = "all"
    elif args.summarize == "none":
        summarize = ()
    else:
        summarize = tuple(s for s in args.summarize.split(",") if s)
    budget = (DEFAULT_WORKING_SET if args.working_set_mib is None
              else int(args.working_set_mib * 1024 * 1024))
    report = merge_rank_files(
        args.inputs, args.output, name=args.name,
        working_set_bytes=budget, summarize=summarize,
        strict=not args.salvage, overwrite=args.overwrite,
    )
    print(report.summary())
    return 0


# --------------------------------------------------------------------- #
def main_view(argv: list[str] | None = None) -> int:
    """Render views of an experiment database."""
    parser = argparse.ArgumentParser(
        prog="repro-view",
        description="Present an experiment database (hpcviewer substrate).",
    )
    parser.add_argument("db", help="experiment database (.xml / .rpdb)")
    parser.add_argument("--view", choices=["cct", "callers", "flat", "all"],
                        default="cct")
    parser.add_argument("--metric", default=None,
                        help="metric name to sort by (default: first)")
    parser.add_argument("--exclusive", action="store_true",
                        help="sort by the exclusive flavour")
    parser.add_argument("--depth", type=int, default=3)
    parser.add_argument("--hot-path", action="store_true",
                        help="expand the hot path instead of fixed depth")
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--max-rows", type=int, default=60)
    parser.add_argument("--advise", action="store_true",
                        help="print tuning suggestions after the views")
    parser.add_argument("--salvage", action="store_true",
                        help="recover what a corrupted/truncated binary "
                             "database still holds instead of failing")
    parser.add_argument("--out-of-core", action="store_true",
                        help="stream the database via mmap instead of "
                             "reading it fully into memory (.rpstore "
                             "directories always load this way)")
    args = parser.parse_args(argv)

    exp = database.load(args.db, strict=not args.salvage,
                        out_of_core=args.out_of_core)
    report = getattr(exp, "load_report", None)
    if report is not None:
        print(f"salvage: {report.summary()}", file=sys.stderr)
    session = ViewerSession(exp)
    session.hot_path_threshold = args.threshold

    kinds = {
        "cct": [ViewKind.CALLING_CONTEXT],
        "callers": [ViewKind.CALLERS],
        "flat": [ViewKind.FLAT],
        "all": list(ViewKind),
    }[args.view]

    metric = args.metric or exp.metrics.by_id(0).name
    flavor = MetricFlavor.EXCLUSIVE if args.exclusive else MetricFlavor.INCLUSIVE
    for kind in kinds:
        session.show(kind)
        session.sort_by(metric, flavor)
        if args.hot_path and kind is ViewKind.CALLING_CONTEXT:
            result = session.expand_hot_path()
            print("hot path:", " -> ".join(n.name for n in result.path))
            depth = None
        else:
            depth = args.depth
        print(session.render(
            kind,
            expand_depth=depth,
            options=TableOptions(max_rows=args.max_rows),
        ))
        print()
    if args.advise:
        from repro.core.advisor import advise

        print("tuning suggestions:")
        for suggestion in advise(exp)[:8]:
            print(suggestion.describe())
    return 0


# --------------------------------------------------------------------- #
def _member_selector(text: str):
    """A CLI member selector: an integer index, a name, or ``mean``."""
    try:
        return int(text)
    except ValueError:
        return text


def main_diff(argv: list[str] | None = None) -> int:
    """Diff N experiment databases and flag regressions."""
    parser = argparse.ArgumentParser(
        prog="repro-diff",
        description="Align N experiment databases into a union CCT, render "
                    "the diff of a target member against a baseline (another "
                    "member or the corpus mean), and flag scopes whose "
                    "inclusive share regressed.",
    )
    parser.add_argument("inputs", nargs="+",
                        help="member databases (.xml / .rpdb / .rpstore); "
                             "at least two")
    parser.add_argument("--baseline", default="mean", metavar="WHO",
                        help="member index, member name, or 'mean' "
                             "(default: %(default)s)")
    parser.add_argument("--target", default="-1", metavar="WHO",
                        help="member index or name (default: last member)")
    parser.add_argument("--factor", type=float, default=1.0,
                        help="scale the baseline before subtracting "
                             "(Section VI-A's scale-and-subtract)")
    parser.add_argument("--metric", default=None,
                        help="raw metric to diff and sort by (default: first)")
    parser.add_argument("--view", choices=["cct", "callers", "flat"],
                        default="flat")
    parser.add_argument("--exclusive", action="store_true",
                        help="sort by the exclusive flavour")
    parser.add_argument("--depth", type=int, default=3)
    parser.add_argument("--max-rows", type=int, default=60)
    parser.add_argument("--salvage", action="store_true",
                        help="salvage corrupted binary members instead of "
                             "failing")
    parser.add_argument("--no-detect", action="store_true",
                        help="skip regression detection")
    parser.add_argument("--threshold", type=float, default=0.02,
                        help="absolute inclusive-share shift that flags a "
                             "scope (default: %(default)s)")
    parser.add_argument("--sigma", type=float, default=3.0,
                        help="sigma multiplier against the baseline corpus "
                             "spread (default: %(default)s)")
    parser.add_argument("--min-share", type=float, default=0.005,
                        help="ignore scopes below this share on both sides")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print a machine-readable JSON report instead "
                             "of rendered text")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 3 when any regression is flagged")
    args = parser.parse_args(argv)

    import json

    from repro.core.ensemble import align_experiments, detect_regressions

    ensemble = align_experiments(args.inputs, strict=not args.salvage)
    baseline = _member_selector(args.baseline)
    target = _member_selector(args.target)
    diff = ensemble.diff(baseline, target, factor=args.factor)
    findings = []
    if not args.no_detect and target != "mean":
        corpus = None if baseline == "mean" else [baseline]
        findings = detect_regressions(
            ensemble, metric=args.metric, target=target, baseline=corpus,
            threshold=args.threshold, sigma=args.sigma,
            min_share=args.min_share,
        )

    if args.as_json:
        print(json.dumps({
            "ensemble": ensemble.to_payload(),
            "diff": diff.name,
            "factor": args.factor,
            "findings": [f.to_payload() for f in findings],
        }, indent=2))
    else:
        print(ensemble.alignment.report.summary(), file=sys.stderr)
        session = ViewerSession(diff)
        kind = {"cct": ViewKind.CALLING_CONTEXT,
                "callers": ViewKind.CALLERS,
                "flat": ViewKind.FLAT}[args.view]
        metric = args.metric or diff.metrics.by_id(0).name
        flavor = (MetricFlavor.EXCLUSIVE if args.exclusive
                  else MetricFlavor.INCLUSIVE)
        session.show(kind)
        session.sort_by(metric, flavor)
        print(session.render(
            kind, expand_depth=args.depth,
            options=TableOptions(max_rows=args.max_rows),
        ))
        if findings:
            print(f"\n{len(findings)} share shift(s) against the baseline:")
            for finding in findings:
                print(finding.describe())
        elif not args.no_detect:
            print("\nno share shifts beyond the thresholds")

    regressions = [f for f in findings if f.kind == "regression"]
    if args.fail_on_regression and regressions:
        return 3
    return 0


# --------------------------------------------------------------------- #
def main_serve(argv: list[str] | None = None) -> int:
    """Serve experiment databases as a concurrent JSON analysis API."""
    from repro.server.http import main

    return main(argv)


# --------------------------------------------------------------------- #
def main_corpus(argv: list[str] | None = None) -> int:
    """``repro-corpus`` — operate a crash-safe profile corpus offline.

    The same catalog the server mounts at ``/v1/corpus``, driven from
    the shell: initialise, ingest, list, compact, set retention,
    delete, verify checksums, or force a recovery pass.  Safe to run
    against a live server's corpus root — every mutation takes the
    journal lock.
    """
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="Crash-safe multi-tenant profile corpus: journaled "
                    "catalog of .rpdb/.rpstore profiles with retention "
                    "and background compaction (docs/corpus.md).",
    )
    parser.add_argument("root", metavar="DIR", help="corpus root directory")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("init", help="create an empty corpus")

    p = sub.add_parser("ingest", help="ingest database files / store dirs")
    p.add_argument("tenant")
    p.add_argument("paths", nargs="+", metavar="PATH")
    p.add_argument("--group", default=None,
                   help="compaction group tag for these uploads")
    p.add_argument("--meta", action="append", default=[],
                   metavar="KEY=VALUE", help="searchable metadata")
    p.add_argument("--salvage", action="store_true",
                   help="store what the salvage loader recovers from a "
                        "corrupt payload instead of refusing it")

    p = sub.add_parser("list", help="list a tenant's committed profiles "
                                    "(or all tenants without one)")
    p.add_argument("tenant", nargs="?", default=None)
    p.add_argument("--group", default=None)
    p.add_argument("--name", default=None, help="substring match")

    p = sub.add_parser("compact", help="merge grouped uploads into stores")
    p.add_argument("tenant")
    p.add_argument("--group", default=None,
                   help="only this group (default: every eligible one)")
    p.add_argument("--min-sources", type=int, default=2)

    p = sub.add_parser("policy", help="show or set a tenant's retention")
    p.add_argument("tenant")
    p.add_argument("--max-bytes", type=int, default=None)
    p.add_argument("--max-profiles", type=int, default=None)
    p.add_argument("--ttl", type=float, default=None, metavar="SECONDS")

    p = sub.add_parser("delete", help="durably delete one profile")
    p.add_argument("tenant")
    p.add_argument("id", metavar="PROFILE")

    p = sub.add_parser("verify", help="checksum every committed profile")
    p.add_argument("tenant", nargs="?", default=None)

    sub.add_parser("recover", help="force a full recovery pass and report")

    args = parser.parse_args(argv)

    from repro.corpus import CorpusCatalog, open_corpus
    from repro.errors import ReproError

    try:
        if args.command == "init":
            CorpusCatalog(args.root, create=True).close()
            print(f"initialised corpus at {args.root}")
            return 0
        with open_corpus(args.root) as corpus:
            return _corpus_command(corpus, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _corpus_command(corpus, args) -> int:
    from repro.corpus import RetentionPolicy

    if args.command == "ingest":
        meta = {}
        for item in args.meta:
            key, sep, value = item.partition("=")
            if not sep:
                print(f"error: --meta wants KEY=VALUE, got {item!r}",
                      file=sys.stderr)
                return 2
            meta[key] = value
        for path in args.paths:
            entry = corpus.ingest_file(
                args.tenant, path, group=args.group, meta=meta,
                salvage=args.salvage,
            )
            print(f"{entry.pid}  {entry.kind:7s} {entry.bytes:>10d}  "
                  f"{entry.name}")
        return 0
    if args.command == "list":
        tenants = [args.tenant] if args.tenant else corpus.tenants()
        for tenant in tenants:
            entries = corpus.search(
                tenant, name=args.name, group=args.group,
            )
            for e in entries:
                group = f" group={e.group}" if e.group else ""
                print(f"{tenant}/{e.pid}  {e.kind:7s} {e.bytes:>10d}  "
                      f"{e.name}{group}")
        return 0
    if args.command == "compact":
        groups = ([args.group] if args.group
                  else sorted(corpus.compactable_groups(
                      args.tenant, min_sources=args.min_sources)))
        made = 0
        for group in groups:
            entry = corpus.compact_group(
                args.tenant, group, min_sources=args.min_sources
            )
            if entry is not None:
                made += 1
                print(f"compacted group {group!r} -> {entry.pid} "
                      f"({entry.bytes} bytes)")
        if not made:
            print("nothing to compact")
        return 0
    if args.command == "policy":
        if (args.max_bytes is None and args.max_profiles is None
                and args.ttl is None):
            print(json.dumps(corpus.policy(args.tenant).to_payload(),
                             indent=2))
            return 0
        policy = RetentionPolicy(
            max_bytes=args.max_bytes, max_profiles=args.max_profiles,
            ttl_s=args.ttl,
        )
        evicted = corpus.set_policy(args.tenant, policy)
        print(f"policy set; evicted {len(evicted)} profile(s)")
        for item in evicted:
            print(f"  {item['tenant']}/{item['id']} ({item['reason']})")
        return 0
    if args.command == "delete":
        corpus.delete(args.tenant, args.id)
        print(f"deleted {args.tenant}/{args.id}")
        return 0
    if args.command == "verify":
        tenants = [args.tenant] if args.tenant else corpus.tenants()
        bad = 0
        from repro.errors import CorpusCorrupt

        for tenant in tenants:
            for entry in corpus.list(tenant):
                try:
                    corpus.verify(tenant, entry.pid)
                    print(f"ok      {tenant}/{entry.pid}  {entry.name}")
                except CorpusCorrupt as exc:
                    bad += 1
                    print(f"CORRUPT {tenant}/{entry.pid}  {exc}")
        return 1 if bad else 0
    if args.command == "recover":
        report = corpus.recover()
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    raise AssertionError(f"unhandled command {args.command}")


# --------------------------------------------------------------------- #
def main_experiments(argv: list[str] | None = None) -> int:
    """Run the paper-reproduction experiments."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's figures; print paper-vs-measured.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default all)")
    parser.add_argument("--markdown", default=None, metavar="PATH",
                        help="also write an EXPERIMENTS.md-style report")
    parser.add_argument("--list", action="store_true", dest="list_only")
    args = parser.parse_args(argv)

    from repro.experiments.registry import ALL, run_all, to_markdown

    if args.list_only:
        for exp_id in ALL:
            print(exp_id)
        return 0

    reports = run_all(args.ids or None)
    for report in reports:
        print(report.render())
        print()
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(to_markdown(reports))
        print(f"wrote {args.markdown}")
    failures = sum(1 for r in reports if not r.all_ok)
    return 1 if failures else 0


def main_query(argv: list[str] | None = None) -> int:
    """``repro-query`` — run a call-path query from the shell.

    The CLI face of :mod:`repro.query`: one query against a database
    file (``.xml`` / ``.rpdb`` / ``.rpstore``), or against a corpus
    tenant (``--corpus --tenant``, streaming every stored profile), or
    the corpus-wide diagnosis rules (``--diagnose``).
    """
    parser = argparse.ArgumentParser(
        prog="repro-query",
        description="Composable call-path queries (docs/query.md): match "
                    "path patterns, filter on metric predicates, group, "
                    "sort, and print columnar results.",
    )
    parser.add_argument("source", metavar="SOURCE",
                        help="experiment database (.xml / .rpdb / "
                             ".rpstore), or a corpus root with --tenant")
    parser.add_argument("pattern", nargs="?", default=None,
                        help="path pattern, e.g. 'main / ** / flux*' or "
                             "'{\"category\": \"loop\"}'")
    parser.add_argument("--where", action="append", default=[],
                        metavar="PRED",
                        help="metric predicate, e.g. 'cycles.exclusive "
                             ">= 2%%' (repeatable)")
    parser.add_argument("--prune", action="append", default=[],
                        metavar="PATTERN",
                        help="drop subtrees matching this pattern "
                             "(repeatable)")
    parser.add_argument("--squash", action="store_true",
                        help="splice unselected scopes out of the tree")
    parser.add_argument("--groupby", default=None,
                        choices=("name", "category", "depth"),
                        help="aggregate selected scopes by this key")
    parser.add_argument("--metrics", default=None, metavar="M1,M2",
                        help="metric columns (default: all)")
    parser.add_argument("--flavors", default=None, metavar="F1,F2",
                        help="value flavors: raw, inclusive, exclusive "
                             "(default: inclusive,exclusive)")
    parser.add_argument("--sort", default=None, metavar="METRIC",
                        help="sort by this metric column")
    parser.add_argument("--exclusive", action="store_true",
                        help="sort on the exclusive flavor")
    parser.add_argument("--limit", type=int, default=None,
                        help="keep the top N rows")
    parser.add_argument("--spec", default=None, metavar="JSON",
                        help="full query spec as JSON (overrides the "
                             "pattern/filter flags)")
    parser.add_argument("--tenant", default=None,
                        help="treat SOURCE as a corpus root and query "
                             "this tenant's profiles")
    parser.add_argument("--profile", default=None, metavar="PID",
                        help="query one stored profile (with --tenant)")
    parser.add_argument("--diagnose", action="store_true",
                        help="run the corpus diagnosis rules (load "
                             "imbalance, scaling loss, hot-path drift) "
                             "over the tenant instead of a query")
    parser.add_argument("--metric", default=None,
                        help="diagnosis metric (default: the cycle "
                             "counter, else the first metric)")
    parser.add_argument("--baseline", default=None, metavar="PID",
                        help="diagnosis hot-path baseline profile")
    parser.add_argument("--salvage", action="store_true",
                        help="salvage payloads that no longer load "
                             "strictly")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print machine-readable JSON")
    args = parser.parse_args(argv)

    from repro.errors import ReproError
    from repro.query import Query, run_query

    def build_query() -> Query:
        if args.spec is not None:
            return Query.from_spec(json.loads(args.spec))
        q = Query()
        if args.pattern:
            q = q.match(args.pattern)
        for pred in args.where:
            q = q.filter(pred)
        for pattern in args.prune:
            q = q.prune(pattern)
        if args.squash:
            q = q.squash()
        if args.groupby:
            q = q.groupby(args.groupby)
        if args.metrics or args.flavors:
            q = q.select(
                metrics=(args.metrics.split(",") if args.metrics else None),
                flavors=(tuple(args.flavors.split(","))
                         if args.flavors else None),
            )
        if args.sort:
            q = q.sort(args.sort,
                       "exclusive" if args.exclusive else "inclusive")
        if args.limit is not None:
            q = q.limit(args.limit)
        return q

    def print_result(result, heading: str | None = None) -> None:
        if heading:
            print(f"== {heading} ==")
        widths = [max(8, len(label) + 2) for label in result.labels]
        header = f"{'scope':<44}" + "".join(
            f"{label:>{w}}" for label, w in zip(result.labels, widths)
        )
        print(header)
        print("-" * len(header))
        for i, (name, depth) in enumerate(zip(result.names, result.depths)):
            cell = ("  " * int(depth) + name)[:43]
            row = "".join(
                f"{result.values[i, j]:>{w}.6g}"
                for j, w in enumerate(widths)
            )
            print(f"{cell:<44}{row}")
        if result.truncated:
            print(f"... {result.truncated} more row(s) truncated")

    try:
        if args.tenant is not None:
            from repro.corpus import open_corpus

            with open_corpus(args.source) as corpus:
                if args.diagnose:
                    from repro.query import diagnose_corpus

                    diag = diagnose_corpus(
                        corpus, args.tenant, metric=args.metric,
                        baseline=args.baseline, salvage=args.salvage,
                    )
                    if args.as_json:
                        print(json.dumps(diag.to_payload(), indent=2))
                    else:
                        print(f"{diag.profiles_examined} profile(s) "
                              f"examined on {diag.metric!r}; "
                              f"{len(diag.findings)} finding(s)")
                        for finding in diag.findings:
                            print(finding.describe())
                    return 1 if diag.findings else 0
                q = build_query()
                if args.profile is not None:
                    exp = corpus.load(args.tenant, args.profile,
                                      salvage=args.salvage)
                    try:
                        result = run_query(q, exp)
                    finally:
                        release = getattr(exp, "release", None)
                        if release is not None:
                            release()
                    if args.as_json:
                        print(json.dumps(result.to_columns(), indent=2))
                    else:
                        print_result(result)
                    return 0
                tables = []
                for entry in corpus.list(args.tenant):
                    exp = corpus.load(args.tenant, entry.pid,
                                      salvage=args.salvage)
                    try:
                        result = run_query(q, exp)
                    finally:
                        release = getattr(exp, "release", None)
                        if release is not None:
                            release()
                    tables.append((entry.pid, result))
                if args.as_json:
                    print(json.dumps(
                        {pid: r.to_columns() for pid, r in tables},
                        indent=2,
                    ))
                else:
                    for pid, result in tables:
                        print_result(result, heading=pid)
                        print()
                return 0

        experiment = database.load(args.source, strict=not args.salvage)
        result = run_query(build_query(), experiment)
        if args.as_json:
            print(json.dumps(result.to_columns(), indent=2))
        else:
            print_result(result)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main_trace(argv: list[str] | None = None) -> int:
    """``repro-trace`` — time-dimension traces from the shell.

    Drives :mod:`repro.trace` (docs/traces.md): simulate a workload in
    trace mode into a time-partitioned store, inspect a store's chunk
    layout, run windowed call-path queries, and render the two
    presentation products (flame-chart slab, idleness series).
    """
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Timestamped call-path traces: time-partitioned "
                    "chunked stores, windowed CCT queries, flame-chart "
                    "slabs and idleness series (docs/traces.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="trace a simulated workload into "
                                        "a chunked store")
    p.add_argument("workload", choices=_WORKLOADS)
    p.add_argument("out", metavar="STORE", help="output store directory")
    p.add_argument("--ranks", type=int, default=2)
    p.add_argument("--seed", type=int, default=12345)
    p.add_argument("--slices", type=int, default=1,
                   help="events per collapsed statement (denser timelines)")
    p.add_argument("--chunk-duration", type=float, default=1.0,
                   metavar="SECONDS", help="time-partition width")
    p.add_argument("--overwrite", action="store_true")

    p = sub.add_parser("info", help="store layout: chunks, bounds, metrics")
    p.add_argument("store", metavar="STORE")
    p.add_argument("--json", action="store_true", dest="as_json")

    p = sub.add_parser("query", help="windowed call-path query")
    p.add_argument("store", metavar="STORE")
    p.add_argument("pattern", nargs="?", default=None)
    p.add_argument("--t0", type=float, default=None)
    p.add_argument("--t1", type=float, default=None)
    p.add_argument("--sort", default=None, metavar="METRIC")
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--json", action="store_true", dest="as_json")

    p = sub.add_parser("flame", help="per-depth span slab of one rank")
    p.add_argument("store", metavar="STORE")
    p.add_argument("--rank", type=int, default=0)
    p.add_argument("--t0", type=float, default=None)
    p.add_argument("--t1", type=float, default=None)
    p.add_argument("--metric", default=None)
    p.add_argument("--max-spans", type=int, default=2000)
    p.add_argument("--json", action="store_true", dest="as_json")

    p = sub.add_parser("series", help="time-binned idleness/imbalance")
    p.add_argument("store", metavar="STORE")
    p.add_argument("--t0", type=float, default=None)
    p.add_argument("--t1", type=float, default=None)
    p.add_argument("--bins", type=int, default=32)
    p.add_argument("--json", action="store_true", dest="as_json")

    args = parser.parse_args(argv)

    from repro.errors import ReproError

    try:
        if args.command == "simulate":
            import importlib

            from repro.sim.spmd import trace_spmd
            from repro.trace import create_trace_store

            module = importlib.import_module(
                f"repro.sim.workloads.{args.workload}"
            )
            traces = trace_spmd(
                module.build(), nranks=args.ranks, seed=args.seed,
                trace_slices=args.slices,
            )
            store = create_trace_store(
                traces, args.out, chunk_duration=args.chunk_duration,
                overwrite=args.overwrite,
            )
            try:
                print(f"wrote {store.n_events} event(s) in "
                      f"{store.chunks_total} chunk(s) to {args.out}")
            finally:
                store.close()
            return 0

        from repro.trace import open_trace

        with open_trace(args.store) as store:
            if args.command == "info":
                info = store.info()
                if args.as_json:
                    print(json.dumps(info, indent=2, sort_keys=True))
                else:
                    print(f"{info['name']}: {info['n_events']} event(s), "
                          f"{info['nranks']} rank(s), "
                          f"{info['n_contexts']} context(s)")
                    print(f"time [{info['t_begin']}, {info['t_end']}] in "
                          f"{info['chunks']} chunk(s) of "
                          f"{info['chunk_duration']}s")
                    print("metrics: " + ", ".join(
                        m["name"] for m in info["metrics"]))
                return 0

            if args.command == "query":
                from repro.query import Query, run_query

                q = Query()
                if args.pattern:
                    q = q.match(args.pattern)
                q = q.window(args.t0, args.t1)
                if args.sort:
                    q = q.sort(args.sort)
                if args.limit is not None:
                    q = q.limit(args.limit)
                result = run_query(q, store)
                if args.as_json:
                    print(json.dumps(result.to_columns(), indent=2))
                    return 0
                widths = [max(8, len(label) + 2)
                          for label in result.labels]
                header = f"{'scope':<44}" + "".join(
                    f"{label:>{w}}"
                    for label, w in zip(result.labels, widths))
                print(header)
                print("-" * len(header))
                for i, (name, depth) in enumerate(
                        zip(result.names, result.depths)):
                    cell = ("  " * int(depth) + name)[:43]
                    row = "".join(
                        f"{result.values[i, j]:>{w}.6g}"
                        for j, w in enumerate(widths))
                    print(f"{cell:<44}{row}")
                if result.truncated:
                    print(f"... {result.truncated} more row(s) truncated")
                return 0

            if args.command == "flame":
                from repro.trace import flame_slab

                slab = flame_slab(
                    store, rank=args.rank, t0=args.t0, t1=args.t1,
                    metric=args.metric, max_spans=args.max_spans,
                )
                if args.as_json:
                    print(json.dumps(slab, indent=2))
                    return 0
                print(f"rank {slab['rank']}: {slab['span_count']} span(s) "
                      f"over {slab['event_count']} event(s) "
                      f"[metric {slab['metric']}]")
                for d, spans in enumerate(slab["depths"]):
                    for span in spans:
                        bar = "  " * d
                        print(f"{bar}{span['name']:<30} "
                              f"[{span['begin']:.6g}, {span['end']:.6g}) "
                              f"{span['value']:.6g}")
                if slab["truncated"]:
                    print(f"... {slab['truncated']} span(s) truncated")
                return 0

            # series
            from repro.trace import idleness_series

            series = idleness_series(
                store, t0=args.t0, t1=args.t1, bins=args.bins)
            if args.as_json:
                print(json.dumps(series, indent=2))
                return 0
            print(f"{series['bins']} bin(s) over "
                  f"[{series['t0']:.6g}, {series['t1']:.6g}), "
                  f"{series['nranks']} rank(s)")
            for b in range(series["bins"]):
                frac = series["idleness"][b]
                bar = "#" * int(round(40 * frac))
                print(f"{series['edges'][b]:>10.4g}  idle {frac:6.1%} "
                      f"{bar}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_experiments())

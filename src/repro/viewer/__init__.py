"""Presentation layer: tree-tabular rendering, navigation, charts."""

"""An interactive text-mode hpcviewer.

A :mod:`cmd`-based REPL over a :class:`ViewerSession`, mirroring the
interactions the paper describes: switching among the three view tabs,
expanding scopes link by link, sorting by any metric column, pressing
the flame (hot path), flattening the Flat View, defining derived
metrics, and inspecting source through the navigation pane (the *only*
route to source — Section V-A).

Usage::

    from repro.viewer.tui import InteractiveViewer
    InteractiveViewer(experiment).cmdloop()

or non-interactively (how the test-suite drives it)::

    viewer = InteractiveViewer(experiment, stdout=buffer)
    viewer.onecmd("view callers")
    viewer.onecmd("sort PAPI_TOT_CYC excl")
    viewer.onecmd("ls")
"""

from __future__ import annotations

import cmd
from typing import IO

from repro.errors import ReproError
from repro.core.filters import FilterSet
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import ViewKind, ViewNode
from repro.hpcprof.experiment import Experiment
from repro.viewer.format import format_cell
from repro.viewer.session import ViewerSession
from repro.viewer.table import TableOptions, _row_label

__all__ = ["InteractiveViewer"]

_VIEW_ALIASES = {
    "cct": ViewKind.CALLING_CONTEXT,
    "calling-context": ViewKind.CALLING_CONTEXT,
    "callers": ViewKind.CALLERS,
    "flat": ViewKind.FLAT,
}


class InteractiveViewer(cmd.Cmd):
    """Interactive tree-tabular presentation of one experiment."""

    intro = ("repro interactive viewer — 'help' lists commands, "
             "'ls' shows the current view, 'quit' exits.")
    prompt = "(hpcviewer) "

    def __init__(self, experiment: Experiment,
                 stdout: IO[str] | None = None) -> None:
        super().__init__(stdout=stdout)
        self.session = ViewerSession(experiment)
        self.max_rows = 30
        self.filters = FilterSet()
        #: row number -> node, rebuilt on every listing
        self._rows: dict[int, ViewNode] = {}

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _say(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _node(self, arg: str) -> ViewNode | None:
        arg = arg.strip()
        if not arg:
            node = self.session.state().selected
            if node is None:
                self._say("no row selected; pass a row number or 'select N'")
            return node
        try:
            number = int(arg)
        except ValueError:
            self._say(f"expected a row number, got {arg!r}")
            return None
        node = self._rows.get(number)
        if node is None:
            self._say(f"no row #{number} in the last listing; run 'ls'")
        return node

    def _spec_of(self, name: str, flavor_word: str = "") -> MetricSpec | None:
        flavor = (MetricFlavor.EXCLUSIVE if flavor_word.startswith("exc")
                  else MetricFlavor.INCLUSIVE)
        try:
            return self.session.experiment.spec(name, flavor)
        except ReproError as exc:
            self._say(str(exc))
            return None

    # ------------------------------------------------------------------ #
    # view management
    # ------------------------------------------------------------------ #
    def do_views(self, _arg: str) -> None:
        """views — list the three view tabs and which is active."""
        for alias, kind in (("cct", ViewKind.CALLING_CONTEXT),
                            ("callers", ViewKind.CALLERS),
                            ("flat", ViewKind.FLAT)):
            marker = "*" if kind is self.session.active else " "
            self._say(f" {marker} {alias:<8} {kind.value}")

    def do_view(self, arg: str) -> None:
        """view cct|callers|flat — switch the active view tab."""
        kind = _VIEW_ALIASES.get(arg.strip().lower())
        if kind is None:
            self._say(f"unknown view {arg!r}; one of: cct, callers, flat")
            return
        self.session.show(kind)
        self._say(f"now showing {self.session.view().title}")

    def do_ls(self, _arg: str) -> None:
        """ls — list visible rows of the active view, numbered."""
        session = self.session
        view = session.view()
        state = session.state()
        column = state.column
        total = view.total(column)
        desc = view.metrics.by_id(column.mid)
        opts = TableOptions()
        self._say(f"== {view.title}: sorted by {desc.name} "
                  f"({column.flavor.value}) ==")
        self._rows.clear()
        roots = None
        if session.active is ViewKind.FLAT:
            roots = view.current_roots()
        if len(self.filters):
            from repro.query.compat import filter_forest
            roots = filter_forest(self.filters, view, roots)
        shown = 0
        for number, (row, depth) in enumerate(
            self._visible(state, roots), start=1
        ):
            if shown >= self.max_rows:
                self._say(f"... (limit {self.max_rows}; 'top N' to raise)")
                break
            self._rows[number] = row
            label = _row_label(row, state, depth, opts)
            cell = format_cell(view.value(row, column), total,
                               show_percent=desc.show_percent)
            self._say(f"{number:>4} {label:<56} {cell:>17}")
            shown += 1

    def _visible(self, state, roots):
        if not len(self.filters):
            yield from state.visible_rows(roots=roots)
            return

        from repro.query.compat import filter_children

        view = state.view

        def emit(rows, depth):
            ordered = sorted(
                rows, key=lambda r: view.value(r, state.column),
                reverse=state.descending,
            )
            for row in ordered:
                yield row, depth
                if state.is_expanded(row):
                    yield from emit(
                        filter_children(self.filters, view, row),
                        depth + 1)

        yield from emit(view.roots if roots is None else roots, 0)

    def do_top(self, arg: str) -> None:
        """top N — show at most N rows in listings."""
        try:
            self.max_rows = max(1, int(arg))
        except ValueError:
            self._say("usage: top N")

    # ------------------------------------------------------------------ #
    # navigation
    # ------------------------------------------------------------------ #
    def do_expand(self, arg: str) -> None:
        """expand N — open row N one level."""
        node = self._node(arg)
        if node is not None:
            self.session.state().expand(node)
            self.do_ls("")

    def do_collapse(self, arg: str) -> None:
        """collapse N — close row N."""
        node = self._node(arg)
        if node is not None:
            self.session.state().collapse(node)
            self.do_ls("")

    def do_select(self, arg: str) -> None:
        """select N — make row N the current scope."""
        node = self._node(arg)
        if node is not None:
            self.session.state().select(node)
            self._say(f"selected {node.name}")

    def do_sort(self, arg: str) -> None:
        """sort <metric> [incl|excl] — sort every level by a column."""
        parts = arg.split()
        if not parts:
            self._say("usage: sort <metric name> [incl|excl]")
            return
        flavor_word = parts[-1] if parts[-1] in ("incl", "excl") else ""
        name = " ".join(parts[:-1]) if flavor_word else arg.strip()
        spec = self._spec_of(name, flavor_word)
        if spec is not None:
            self.session.state().sort_by(spec)
            self.do_ls("")

    def do_hot(self, arg: str) -> None:
        """hot [N] — expand the hot path from row N (or the top)."""
        start = self._node(arg) if arg.strip() else None
        if arg.strip() and start is None:
            return
        result = self.session.expand_hot_path(start=start)
        self._say("hot path: " + " -> ".join(n.name for n in result.path))
        self.do_ls("")

    def do_flatten(self, _arg: str) -> None:
        """flatten — elide the Flat View's current top level."""
        self.session.flatten()
        if self.session.active is ViewKind.FLAT:
            self.do_ls("")

    def do_unflatten(self, _arg: str) -> None:
        """unflatten — undo one flatten."""
        self.session.unflatten()
        if self.session.active is ViewKind.FLAT:
            self.do_ls("")

    # ------------------------------------------------------------------ #
    # metrics & filters
    # ------------------------------------------------------------------ #
    def do_metrics(self, _arg: str) -> None:
        """metrics — list metric columns."""
        for desc in self.session.experiment.metrics:
            extra = f" = {desc.formula}" if desc.formula else ""
            self._say(f"  [{desc.mid}] {desc.name} ({desc.kind.value})"
                      f"{extra}")

    def do_derive(self, arg: str) -> None:
        """derive <name> := <formula> — define a derived metric ($n refs)."""
        name, sep, formula = arg.partition(":=")
        if not sep or not name.strip() or not formula.strip():
            self._say("usage: derive <name> := <formula>   e.g. "
                      "derive waste := 4 * $0 - $1")
            return
        try:
            self.session.add_derived_metric(name.strip(), formula.strip())
        except ReproError as exc:
            self._say(str(exc))
            return
        self._say(f"defined derived metric {name.strip()!r}")

    def do_threshold(self, arg: str) -> None:
        """threshold P — hide rows below P percent of the total."""
        try:
            share = float(arg) / 100.0
        except ValueError:
            self._say("usage: threshold <percent>")
            return
        try:
            self.filters.set_threshold(self.session.state().column, share)
        except ReproError as exc:
            self._say(str(exc))
            return
        self.do_ls("")

    def do_filter(self, arg: str) -> None:
        """filter <glob> — elide scopes whose name matches the pattern."""
        if not arg.strip():
            self._say("usage: filter <glob pattern>")
            return
        self.filters.add(arg.strip())
        self.do_ls("")

    def do_nofilter(self, _arg: str) -> None:
        """nofilter — clear all filters."""
        self.filters = FilterSet()
        self.do_ls("")

    def do_source(self, arg: str) -> None:
        """source [N] — show source around the selected row."""
        node = self._node(arg)
        if node is not None:
            self._say(self.session.source_pane(node))

    def do_advise(self, _arg: str) -> None:
        """advise — rule-based tuning suggestions with evidence."""
        from repro.core.advisor import advise

        suggestions = advise(self.session.experiment)
        if not suggestions:
            self._say("no tuning opportunities above the evidence thresholds")
            return
        for suggestion in suggestions[:8]:
            self._say(suggestion.describe())

    def do_find(self, arg: str) -> None:
        """find <glob> — search the active view, heaviest matches first."""
        if not arg.strip():
            self._say("usage: find <glob pattern>")
            return
        from repro.core.search import SearchHit
        from repro.query.compat import search_view

        try:
            hits = [SearchHit(node=n, value=v, share=s, path=p)
                    for n, v, s, p in search_view(
                        self.session.view(), arg.strip(),
                        spec=self.session.state().column, limit=10)]
        except ReproError as exc:
            self._say(str(exc))
            return
        if not hits:
            self._say("no matches")
            return
        for hit in hits:
            self._say("  " + hit.describe())
        self.session.state().select(hits[0].node)
        self._say(f"selected heaviest match: {hits[0].node.name}")

    def do_annotate(self, arg: str) -> None:
        """annotate <file> [metric] — per-line exclusive costs of a file."""
        parts = arg.split()
        if not parts:
            self._say("usage: annotate <file> [metric]")
            return
        metric = (parts[1] if len(parts) > 1
                  else self.session.experiment.metrics.by_id(0).name)
        from repro.viewer.source import render_annotated_source

        try:
            self._say(render_annotated_source(
                self.session.experiment, parts[0], metric
            ))
        except ReproError as exc:
            self._say(str(exc))

    # ------------------------------------------------------------------ #
    def do_quit(self, _arg: str) -> bool:
        """quit — leave the viewer."""
        return True

    do_EOF = do_quit

    def emptyline(self) -> None:  # re-list rather than repeat last command
        self.do_ls("")

    def default(self, line: str) -> None:
        self._say(f"unknown command {line.split()[0]!r}; try 'help'")

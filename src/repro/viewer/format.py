"""Metric cell formatting (Section V-A's presentation rules).

Two of the paper's explicit principles live here:

* "Any metric table cell where data is zero is left blank.  Blank cells
  can be understood at a glance; explicitly representing zeros invites
  the user to gaze upon cells only to find they contain no useful
  information."
* "Instead of displaying naively long and painful numbers, hpcviewer
  only displays the metrics with scientific notation with simple and
  intuitively readable format."

A formatted cell is ``"4.19e+07 41.4%"`` — value in scientific notation
plus percent of the experiment-aggregate total — or the empty string for
zero.
"""

from __future__ import annotations

import math

__all__ = [
    "format_value",
    "format_percent",
    "format_cell",
    "CELL_WIDTH",
    "VALUE_WIDTH",
    "PERCENT_WIDTH",
]

VALUE_WIDTH = 8    # "4.19e+07"
PERCENT_WIDTH = 6  # "100.0%" / " 41.4%"
CELL_WIDTH = VALUE_WIDTH + 1 + PERCENT_WIDTH


def format_value(value: float) -> str:
    """Scientific-notation rendering; blank for zero; fixed width."""
    if value == 0.0:
        return ""
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return f"{value:.2e}"


def format_percent(value: float, total: float) -> str:
    """Percent-of-total rendering; blank when undefined or zero."""
    if total == 0.0 or value == 0.0:
        return ""
    pct = 100.0 * value / total
    if math.isnan(pct):
        return ""
    if abs(pct) >= 99.95:
        return f"{pct:.0f}%"
    if abs(pct) < 0.05:
        # nonzero but below display precision: show 0.0%, never blank —
        # blank is reserved for exactly-zero cells
        return "0.0%" if pct > 0 else "-0.0%"
    return f"{pct:.1f}%"


def format_cell(value: float, total: float = 0.0, show_percent: bool = True) -> str:
    """One metric-pane cell: value plus optional percent, blank if zero."""
    text = format_value(value)
    if not text:
        return ""
    if show_percent:
        pct = format_percent(value, total)
        if pct:
            return f"{text} {pct}"
    return text

"""Differential presentation of two experiments.

The paper's Section VI-A pinpoints scalability losses by scaling and
differencing two executions; the related-work section notes Intel PTU's
cross-experiment derived metrics.  This module provides the view-level
counterpart: align two experiments' Flat Views by static scope and
present before/after columns with absolute and relative change — the
workflow of validating a tuning change (e.g. S3D before/after the flux
loop transformation of Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ViewError
from repro.core.metrics import MetricFlavor
from repro.core.views import NodeCategory
from repro.hpcprof.experiment import Experiment
from repro.viewer.format import format_value

__all__ = ["DiffRow", "ExperimentDiff"]


@dataclass(frozen=True)
class DiffRow:
    """One aligned scope: values from both runs plus the change."""

    name: str
    category: NodeCategory
    file: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def speedup(self) -> float:
        """before/after — >1 means the scope got cheaper."""
        if self.after == 0.0:
            return float("inf") if self.before > 0 else 1.0
        return self.before / self.after

    @property
    def only_before(self) -> bool:
        return self.after == 0.0 and self.before != 0.0

    @property
    def only_after(self) -> bool:
        return self.before == 0.0 and self.after != 0.0


class ExperimentDiff:
    """Scope-aligned comparison of one metric across two experiments."""

    def __init__(
        self,
        before: Experiment,
        after: Experiment,
        metric: str,
        flavor: MetricFlavor = MetricFlavor.INCLUSIVE,
        granularity: NodeCategory = NodeCategory.PROCEDURE,
    ) -> None:
        if metric not in before.metrics or metric not in after.metrics:
            raise ViewError(f"metric {metric!r} must exist in both experiments")
        if granularity not in (NodeCategory.PROCEDURE, NodeCategory.LOOP):
            raise ViewError("diff granularity must be PROCEDURE or LOOP")
        self.before = before
        self.after = after
        self.metric = metric
        self.flavor = flavor
        self.granularity = granularity
        self.rows = self._align()

    # ------------------------------------------------------------------ #
    def _collect(self, exp: Experiment) -> dict[tuple, tuple]:
        """(file, name, line) -> (value, category) at the granularity."""
        mid = exp.metric_id(self.metric)
        out: dict[tuple, tuple] = {}
        flat = exp.flat_view()
        for file_row in flat.roots:
            for node in file_row.walk():
                if node.category is not self.granularity:
                    continue
                store = (
                    node.inclusive
                    if self.flavor is MetricFlavor.INCLUSIVE
                    else node.exclusive
                )
                key = (node.file, node.name, node.line)
                prev = out.get(key, (0.0, node.category))
                out[key] = (prev[0] + store.get(mid, 0.0), node.category)
        return out

    def _align(self) -> list[DiffRow]:
        before_vals = self._collect(self.before)
        after_vals = self._collect(self.after)
        rows = []
        for key in sorted(set(before_vals) | set(after_vals)):
            file, name, _line = key
            b, cat_b = before_vals.get(key, (0.0, self.granularity))
            a, _cat_a = after_vals.get(key, (0.0, cat_b))
            if b == 0.0 and a == 0.0:
                continue
            rows.append(DiffRow(name=name, category=cat_b, file=file,
                                before=b, after=a))
        rows.sort(key=lambda r: -abs(r.delta))
        return rows

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[DiffRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def total_speedup(self) -> float:
        b = self.before.total(self.metric)
        a = self.after.total(self.metric)
        return b / a if a else float("inf")

    def improved(self, min_speedup: float = 1.05) -> list[DiffRow]:
        return [r for r in self.rows if r.speedup >= min_speedup]

    def regressed(self, max_speedup: float = 0.95) -> list[DiffRow]:
        return [r for r in self.rows if r.speedup <= max_speedup]

    def render(self, top: int = 20) -> str:
        """Tabular before/after listing, biggest movers first."""
        flavor = self.flavor.value
        lines = [
            f"diff of {self.metric} ({flavor}) — "
            f"{self.before.name} vs {self.after.name}; "
            f"overall speedup {self.total_speedup:.2f}x",
            f"{'scope':<42} {'before':>10} {'after':>10} "
            f"{'delta':>10} {'speedup':>8}",
        ]
        for row in self.rows[:top]:
            speed = ("inf" if row.speedup == float("inf")
                     else f"{row.speedup:.2f}x")
            lines.append(
                f"{row.name[:42]:<42} {format_value(row.before):>10} "
                f"{format_value(row.after):>10} "
                f"{format_value(row.delta):>10} {speed:>8}"
            )
        if len(self.rows) > top:
            lines.append(f"... ({len(self.rows) - top} more scopes)")
        return "\n".join(lines)

"""An hpcviewer-like analysis session over an experiment.

Bundles the three views, their navigation states, and the operations an
analyst performs: switch views, sort by a column, expand hot paths,
define derived metrics, flatten the Flat View, inspect a scope's source.
Component construction is lazy (the paper's "lazy-startup … components
are loaded when needed"): a view and its navigation state are built the
first time they are shown.
"""

from __future__ import annotations

import os
import threading
from typing import Sequence

from repro.core.hotpath import DEFAULT_THRESHOLD, HotPathResult
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.obs.spans import span
from repro.core.views import View, ViewKind, ViewNode
from repro.hpcprof.experiment import Experiment
from repro.viewer.navigation import NavigationState
from repro.viewer.table import TableOptions, render_table

__all__ = ["ViewerSession"]


class ViewerSession:
    """Stateful presentation session for one experiment."""

    def __init__(self, experiment: Experiment) -> None:
        self.experiment = experiment
        self._views: dict[ViewKind, View] = {}
        self._states: dict[ViewKind, NavigationState] = {}
        self.active: ViewKind = ViewKind.CALLING_CONTEXT
        #: hot-path threshold, adjustable as in the preferences dialog
        self.hot_path_threshold: float = DEFAULT_THRESHOLD
        #: guards lazy component construction: without it, two threads
        #: showing the same tab for the first time would each build a
        #: View and race on the ``_views`` dict (RLock because building
        #: a state builds its view through the same guard)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # views (lazily constructed)
    # ------------------------------------------------------------------ #
    def view(self, kind: ViewKind | None = None) -> View:
        kind = kind or self.active
        view = self._views.get(kind)
        if view is None:
            with self._lock:
                view = self._views.get(kind)
                if view is None:
                    # cooperative deadline hook: view construction is the
                    # most expensive lazy stage, so an expired request
                    # aborts here before building (and before caching)
                    from repro.server.deadline import checkpoint

                    checkpoint("view construction")
                    with span(f"viewer.build {kind.value}"):
                        if kind is ViewKind.CALLING_CONTEXT:
                            view = self.experiment.calling_context_view()
                        elif kind is ViewKind.CALLERS:
                            view = self.experiment.callers_view()
                        else:
                            view = self.experiment.flat_view()
                    self._views[kind] = view
        return view

    def state(self, kind: ViewKind | None = None) -> NavigationState:
        kind = kind or self.active
        state = self._states.get(kind)
        if state is None:
            with self._lock:
                state = self._states.get(kind)
                if state is None:
                    state = NavigationState(self.view(kind))
                    self._states[kind] = state
        return state

    def show(self, kind: ViewKind) -> View:
        """Switch the active tab."""
        self.active = kind
        return self.view(kind)

    @property
    def loaded_views(self) -> int:
        """How many view tabs have actually been constructed."""
        return len(self._views)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def sort_by(self, metric: str, flavor: MetricFlavor = MetricFlavor.INCLUSIVE,
                descending: bool = True) -> None:
        spec = self.experiment.spec(metric, flavor)
        self.state().sort_by(spec, descending=descending)

    def select(self, name: str) -> ViewNode:
        node = self.view().find(name)
        self.state().select(node)
        return node

    def expand_hot_path(
        self, start: ViewNode | None = None, threshold: float | None = None
    ) -> HotPathResult:
        """The flame button on the active view."""
        return self.state().expand_hot_path(
            start=start,
            threshold=threshold if threshold is not None else self.hot_path_threshold,
        )

    def add_derived_metric(self, name: str, formula: str, unit: str = "") -> None:
        self.experiment.add_derived_metric(name, formula, unit=unit)

    def flatten(self) -> None:
        """Flatten the Flat View one level (no-op on other views)."""
        view = self.view(ViewKind.FLAT)
        view.flatten()

    def unflatten(self) -> None:
        self.view(ViewKind.FLAT).unflatten()

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def render(
        self,
        kind: ViewKind | None = None,
        columns: Sequence[MetricSpec] | None = None,
        expand_depth: int | None = None,
        options: TableOptions | None = None,
    ) -> str:
        kind = kind or self.active
        view = self.view(kind)
        state = self.state(kind)
        if expand_depth is not None:
            state.expand_to_depth(expand_depth)
        opts = options or TableOptions()
        if columns is not None:
            opts.columns = list(columns)
        roots = None
        if kind is ViewKind.FLAT:
            roots = view.current_roots()  # honor flattening
        text = render_table(view, state, options=opts, roots=roots)
        return f"== {view.title}: {self.experiment.name} ==\n{text}"

    def source_pane(self, node: ViewNode, context: int = 3) -> str:
        """The source pane: lines around a scope (when source exists).

        Selecting a scope in the navigation pane is the *only* way to
        reach source; scopes from binary-only code report so.
        """
        if not node.has_source:
            return f"<no source available for {node.name}>"
        path, line = node.file, node.line or (
            node.struct.location.line if node.struct is not None else 0
        )
        if not path or not os.path.exists(path):
            return f"<source file {path or '?'} not on disk>"
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.readlines()
        lo = max(0, line - 1 - context)
        hi = min(len(lines), line + context)
        out = []
        for i in range(lo, hi):
            marker = ">" if i == line - 1 else " "
            out.append(f"{marker}{i + 1:>6}  {lines[i].rstrip()}")
        return "\n".join(out)

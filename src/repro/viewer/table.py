"""Tree-tabular rendering — the scalable presentation of Section VII.

hpcviewer presents each view as a *tree table*: a navigation pane
(indented scope tree) beside metric columns.  The paper argues this is
"generally more scalable than a graph-oriented presentation, both in
rendering speed and visibility"; the benchmark suite measures rendering
cost against CCT size.

Rendering rules implemented here, straight from Section V:

* scopes at every level sort by the selected metric column;
* zero cells render blank; values use scientific notation;
* call sites fuse with callees on one line, marked ``>>`` (the paper's
  box-with-arrow icon); loops are marked with ``@``; inlined code ``~``;
* scopes without source code render in plain style (marker ``#``),
  mirroring hpcviewer's plain-black entries;
* rows on an expanded hot path carry a flame marker ``*``.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import NodeCategory, View, ViewNode
from repro.viewer.format import format_cell
from repro.viewer.navigation import NavigationState

__all__ = ["TableOptions", "render_table", "render_view"]

_ICONS = {
    NodeCategory.CALL_SITE: ">>",
    NodeCategory.CALLER: "<<",
    NodeCategory.LOOP: "@",
    NodeCategory.INLINED: "~",
    NodeCategory.STATEMENT: "::",
    NodeCategory.PROCEDURE: "",
    NodeCategory.PROCEDURE_FRAME: "",
    NodeCategory.FILE: "",
    NodeCategory.LOAD_MODULE: "[]",
    NodeCategory.ROOT: "",
}


_PATH_RE = re.compile(r"(/[^\s:]+/)([^\s/:]+)")


def _shorten_paths(text: str) -> str:
    """Replace absolute directory prefixes with just the basename."""
    return _PATH_RE.sub(r"\2", text)


@dataclass
class TableOptions:
    """Knobs for batch rendering."""

    #: columns to show; default: every metric, inclusive then exclusive
    columns: Sequence[MetricSpec] | None = None
    max_rows: int = 60
    name_width: int = 52
    show_location: bool = True
    indent: str = "  "
    flame: str = "*"


def _column_header(view: View, spec: MetricSpec) -> str:
    desc = view.metrics.by_id(spec.mid)
    flavor = "(I)" if spec.flavor is MetricFlavor.INCLUSIVE else "(E)"
    return f"{desc.name} {flavor}"


def _default_columns(view: View) -> list[MetricSpec]:
    cols: list[MetricSpec] = []
    for desc in view.metrics:
        cols.append(MetricSpec(desc.mid, MetricFlavor.INCLUSIVE))
        cols.append(MetricSpec(desc.mid, MetricFlavor.EXCLUSIVE))
    return cols


def render_table(
    view: View,
    state: NavigationState,
    options: TableOptions | None = None,
    roots: Sequence[ViewNode] | None = None,
) -> str:
    """Render the visible rows of a view under a navigation state."""
    opts = options or TableOptions()
    columns = list(opts.columns) if opts.columns else _default_columns(view)
    widths = [max(len(_column_header(view, c)), 15) for c in columns]
    totals = [view.total(c) for c in columns]
    show_pct = [view.metrics.by_id(c.mid).show_percent for c in columns]

    lines: list[str] = []
    header = " | ".join(
        [f"{'scope':<{opts.name_width}}"]
        + [f"{_column_header(view, c):>{w}}" for c, w in zip(columns, widths)]
    )
    lines.append(header)
    lines.append("-" * len(header))

    emitted = 0
    truncated = 0
    for row, depth in state.visible_rows(roots=roots):
        if emitted >= opts.max_rows:
            truncated += 1
            continue
        label = _row_label(row, state, depth, opts)
        cells = []
        for c, w, total, pct in zip(columns, widths, totals, show_pct):
            cell = format_cell(view.value(row, c), total, show_percent=pct)
            cells.append(f"{cell:>{w}}")
        lines.append(" | ".join([f"{label:<{opts.name_width}}"] + cells))
        emitted += 1
    if truncated:
        lines.append(f"... ({truncated} more rows)")
    return "\n".join(lines)


def _row_label(row: ViewNode, state: NavigationState, depth: int, opts: TableOptions) -> str:
    marker = " "
    if row.children and not state.is_expanded(row):
        marker = "+"
    elif state.is_expanded(row):
        marker = "-"
    flame = opts.flame if state.is_hot(row) else " "
    icon = _ICONS.get(row.category, "")
    name = row.name if row.has_source else f"#{row.name}"
    if name.startswith("loop at ") or row.category is NodeCategory.STATEMENT:
        # long absolute paths drown the navigation pane; keep basenames
        name = _shorten_paths(name)
    bits = [opts.indent * depth, flame, marker, " "]
    if icon:
        bits.append(icon + " ")
    bits.append(name)
    # statements already carry file:line as their name
    if opts.show_location and row.line and row.category in (
        NodeCategory.CALL_SITE,
        NodeCategory.CALLER,
    ):
        file = os.path.basename(row.file) if row.file else ""
        bits.append(f" [{file}:{row.line}]" if file else f" [:{row.line}]")
    label = "".join(bits)
    if len(label) > opts.name_width:
        label = label[: opts.name_width - 3] + "..."
    return label


def render_view(
    view: View,
    metric: MetricSpec | None = None,
    depth: int = 3,
    options: TableOptions | None = None,
) -> str:
    """Convenience: expand a view to *depth* levels and render it."""
    state = NavigationState(view, column=metric)
    state.expand_to_depth(depth)
    return render_table(view, state, options=options)

"""ASCII charts for per-rank metric vectors (the paper's Figure 7).

Figure 7 presents a scope's inclusive metric across all MPI processes in
three ways: a raw scatter (value vs. rank), the same values sorted, and a
histogram — together they make uneven work partitions obvious at a
glance.  These renderers reproduce that presentation in plain text.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_scatter", "render_sorted", "render_histogram", "render_rank_panel"]


def _plot_series(values: np.ndarray, width: int, height: int, title: str) -> str:
    """Column plot of a series; row 0 is the top of the chart."""
    n = len(values)
    if n == 0:
        return f"{title}\n(no data)"
    width = min(width, max(n, 1))
    # bucket ranks into columns (mean within bucket)
    edges = np.linspace(0, n, width + 1).astype(int)
    cols = np.array(
        [values[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])]
    )
    lo, hi = float(cols.min()), float(cols.max())
    span = hi - lo
    grid = [[" "] * width for _ in range(height)]
    for x, v in enumerate(cols):
        level = 0 if span == 0 else int(round((v - lo) / span * (height - 1)))
        y = height - 1 - level
        grid[y][x] = "*"
    lines = [title]
    for y, row in enumerate(grid):
        label = hi if y == 0 else (lo if y == height - 1 else None)
        prefix = f"{label:>10.3e} |" if label is not None else f"{'':>10} |"
        lines.append(prefix + "".join(row))
    lines.append(f"{'':>10} +" + "-" * width)
    lines.append(f"{'':>12}rank 0 .. {n - 1}")
    return "\n".join(lines)


def render_scatter(values: np.ndarray, width: int = 64, height: int = 10,
                   title: str = "per-rank values") -> str:
    """Value-vs-rank scatter: reveals spatial patterns of imbalance."""
    return _plot_series(np.asarray(values, dtype=float), width, height, title)


def render_sorted(values: np.ndarray, width: int = 64, height: int = 10,
                  title: str = "sorted values") -> str:
    """Sorted plot: the shape of the distribution's tail."""
    return _plot_series(np.sort(np.asarray(values, dtype=float)), width, height, title)


def render_histogram(values: np.ndarray, bins: int = 10, width: int = 48,
                     title: str = "histogram") -> str:
    """Histogram of values: multi-modal work distributions stand out."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return f"{title}\n(no data)"
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title]
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{lo:>10.3e}, {hi:>10.3e}) {count:>6d} {bar}")
    return "\n".join(lines)


def render_rank_panel(values: np.ndarray, title: str = "") -> str:
    """The full Figure 7 panel: scatter + sorted + histogram + statistics."""
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean()) if arr.size else 0.0
    stats = (
        f"ranks={arr.size}  mean={mean:.3e}  min={arr.min():.3e}  "
        f"max={arr.max():.3e}  stddev={arr.std():.3e}  "
        f"imbalance(max/mean)={arr.max() / mean if mean else 1.0:.2f}"
        if arr.size
        else "(no data)"
    )
    parts = []
    if title:
        parts.append(f"=== {title} ===")
    parts.append(stats)
    parts.append(render_scatter(arr))
    parts.append(render_sorted(arr))
    parts.append(render_histogram(arr))
    return "\n\n".join(parts)

"""Navigation state for the tree-tabular presentation (Section V).

The navigation pane is where all analysis happens in hpcviewer: scopes
are expanded link by link (or whole hot paths at once), every level is
sorted by the selected metric column, and there is deliberately *no*
direct metric access from the source pane — the user is forced into
top-down analysis so attention stays on what is costly.

:class:`NavigationState` tracks which rows are expanded, which column is
selected for sorting, and the hot-path highlight; it is deliberately
independent of rendering so the same state drives interactive sessions
and batch renderings.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.hotpath import DEFAULT_THRESHOLD, HotPathResult, hot_path
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import View, ViewNode

__all__ = ["NavigationState"]


class NavigationState:
    """Expansion/sort/selection state for one view."""

    def __init__(self, view: View, column: MetricSpec | None = None) -> None:
        self.view = view
        if column is None:
            first = next(iter(view.metrics), None)
            column = MetricSpec(first.mid if first else 0, MetricFlavor.INCLUSIVE)
        self.column = column
        self.descending = True
        self.sort_by_name_mode = False
        self._expanded: set[int] = set()
        self._hot: set[int] = set()
        self.selected: ViewNode | None = None

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #
    def is_expanded(self, node: ViewNode) -> bool:
        return id(node) in self._expanded

    def expand(self, node: ViewNode) -> None:
        self._expanded.add(id(node))

    def collapse(self, node: ViewNode) -> None:
        self._expanded.discard(id(node))

    def toggle(self, node: ViewNode) -> None:
        if self.is_expanded(node):
            self.collapse(node)
        else:
            self.expand(node)

    def expand_to_depth(self, depth: int) -> None:
        """Expand every row down to *depth* levels."""
        for root in self.view.roots:
            self._expand_rec(root, depth)

    def _expand_rec(self, node: ViewNode, depth: int) -> None:
        if depth <= 0:
            return
        self.expand(node)
        for child in node.children:
            self._expand_rec(child, depth - 1)

    def expanded_count(self) -> int:
        return len(self._expanded)

    # ------------------------------------------------------------------ #
    # sorting / selection
    # ------------------------------------------------------------------ #
    def sort_by(self, column: MetricSpec, descending: bool = True) -> None:
        self.column = column
        self.descending = descending
        self.sort_by_name_mode = False

    def sort_by_name(self, descending: bool = False) -> None:
        """Sort siblings alphabetically by scope name.

        The paper's footnote 2: "the user can sort according to the
        source scopes in the navigation pane itself" — an orthogonality
        feature rather than a need, but part of the surface.
        """
        self.sort_by_name_mode = True
        self.descending = descending

    def select(self, node: ViewNode) -> None:
        self.selected = node

    # ------------------------------------------------------------------ #
    # hot path (the flame button)
    # ------------------------------------------------------------------ #
    def expand_hot_path(
        self,
        start: ViewNode | None = None,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> HotPathResult:
        """Press the flame: expand scopes along the hot path of the
        selected metric in the subtree rooted at *start* (or the selected
        row, or the heaviest root), and highlight them."""
        start = start or self.selected
        result = hot_path(self.view, self.column, start=start, threshold=threshold)
        for node in result.path:
            self.expand(node)
            self._hot.add(id(node))
        self.selected = result.hotspot
        return result

    def is_hot(self, node: ViewNode) -> bool:
        return id(node) in self._hot

    def clear_hot(self) -> None:
        self._hot.clear()

    # ------------------------------------------------------------------ #
    # visible rows, in display order
    # ------------------------------------------------------------------ #
    def visible_rows(self, roots=None) -> Iterator[tuple[ViewNode, int]]:
        """Yield ``(row, depth)`` in display order: sorted siblings,
        descending into expanded rows only (lazy rows stay unexpanded)."""

        def emit(rows, depth):
            if self.sort_by_name_mode:
                ordered = sorted(rows, key=lambda r: r.name,
                                 reverse=self.descending)
            else:
                ordered = sorted(
                    rows,
                    key=lambda r: self.view.value(r, self.column),
                    reverse=self.descending,
                )
            for row in ordered:
                yield row, depth
                if self.is_expanded(row):
                    yield from emit(row.children, depth + 1)

        yield from emit(self.view.roots if roots is None else roots, 0)

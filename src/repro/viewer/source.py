"""Source-line metric annotation.

The paper's ongoing work includes "effectively presenting metrics
correlated with object code"; the source-level sibling of that idea is
implemented here: for one source file, aggregate every statement scope's
exclusive cost by line (over *all* calling contexts — flat semantics)
and render the file with a metric gutter.  For synthetic programs whose
"source" does not exist on disk, the annotation table alone is returned.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.cct import CCTKind
from repro.errors import ViewError
from repro.core.metrics import MetricValues, add_into
from repro.hpcprof.experiment import Experiment
from repro.viewer.format import format_cell

__all__ = ["LineCosts", "annotate_file", "render_annotated_source"]


@dataclass(frozen=True)
class LineCosts:
    """Exclusive cost of one source line, summed over all contexts."""

    file: str
    line: int
    values: MetricValues


def annotate_file(experiment: Experiment, file: str) -> list[LineCosts]:
    """Per-line exclusive costs for one file, heaviest lines first.

    Costs are taken from statement and call-site scopes in the canonical
    CCT whose enclosing file matches; matching accepts full paths,
    basenames, or any path suffix (profilers record absolute paths while
    analysts type basenames).
    """
    if not file:
        raise ViewError("empty file name")
    by_line: dict[int, MetricValues] = {}
    matched = False
    for node in experiment.cct.walk():
        if node.kind not in (CCTKind.STATEMENT, CCTKind.CALL_SITE):
            continue
        node_file = node.file
        if not _file_matches(node_file, file):
            continue
        matched = True
        if not node.raw:
            continue
        slot = by_line.setdefault(node.line, {})
        add_into(slot, node.raw)
    if not matched:
        known = sorted({n.file for n in experiment.cct.walk() if n.file})
        raise ViewError(
            f"no scopes from {file!r}; profiled files: {known[:10]}"
        )
    rows = [
        LineCosts(file=file, line=line, values=values)
        for line, values in by_line.items()
    ]
    rows.sort(key=lambda r: -sum(r.values.values()))
    return rows


def _file_matches(node_file: str, query: str) -> bool:
    if not node_file:
        return False
    if node_file == query:
        return True
    norm_node = node_file.replace(os.sep, "/")
    norm_query = query.replace(os.sep, "/")
    return (
        norm_node.endswith("/" + norm_query)
        or os.path.basename(norm_node) == norm_query
    )


def render_annotated_source(
    experiment: Experiment,
    file: str,
    metric: str,
    context_only: bool = False,
) -> str:
    """The file's text with a metric gutter (flat, all contexts).

    When the file is not on disk (synthetic programs, binary-only code),
    only the costed lines are listed.  ``context_only`` restricts output
    to lines with nonzero cost plus two lines of context.
    """
    mid = experiment.metric_id(metric)
    total = experiment.total(metric)
    rows = annotate_file(experiment, file)
    costs = {r.line: r.values.get(mid, 0.0) for r in rows}

    on_disk = os.path.exists(file)
    header = f"== {file} annotated with exclusive {metric} =="
    if not on_disk:
        lines = [header, f"{'line':>6} {'cost':>17}", "-" * 26]
        for line in sorted(costs):
            if costs[line] == 0.0:
                continue
            lines.append(f"{line:>6} {format_cell(costs[line], total):>17}")
        lines.append("(source text not on disk; costed lines only)")
        return "\n".join(lines)

    with open(file, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.readlines()
    keep = set(range(1, len(text) + 1))
    if context_only:
        keep = set()
        for line in costs:
            keep.update(range(max(1, line - 2), min(len(text), line + 2) + 1))
    out = [header]
    previous_kept = 0
    for number, content in enumerate(text, start=1):
        if number not in keep:
            continue
        if previous_kept and number != previous_kept + 1:
            out.append("   ...")
        previous_kept = number
        gutter = format_cell(costs.get(number, 0.0), total)
        out.append(f"{gutter:>17} |{number:>5}  {content.rstrip()}")
    return "\n".join(out)

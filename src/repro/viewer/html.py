"""Self-contained HTML export of a view.

hpcviewer is an Eclipse GUI; the closest shareable artifact from a batch
toolchain is a single HTML file with the same tree-tabular presentation:
a collapsible navigation tree beside metric columns, percent-of-total
annotations, blank zero cells, call-site/loop/inlined markers, and the
hot path pre-expanded and highlighted.

The export embeds a small amount of vanilla JavaScript (expand/collapse
only) and no external resources, so the file works offline and in code
review tools.
"""

from __future__ import annotations

import html as html_mod
from typing import Sequence

from repro.core.hotpath import HotPathResult
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import NodeCategory, View, ViewNode
from repro.viewer.format import format_percent, format_value
from repro.viewer.table import _default_columns

__all__ = ["render_html"]

_CSS = """
body { font-family: ui-monospace, Consolas, monospace; font-size: 13px;
       margin: 1.2em; color: #111; }
h1 { font-size: 16px; }
table { border-collapse: collapse; width: 100%; }
th, td { padding: 2px 10px; text-align: right; white-space: nowrap; }
th { border-bottom: 2px solid #444; position: sticky; top: 0;
     background: #fff; }
td.scope { text-align: left; }
tr:hover { background: #f2f6ff; }
tr.hot > td.scope { background: #fff0e6; font-weight: bold; }
.toggle { cursor: pointer; display: inline-block; width: 1.1em;
          color: #666; user-select: none; }
.icon { color: #888; padding-right: 2px; }
.pct { color: #777; font-size: 11px; padding-left: 4px; }
.nosrc { color: #555; font-style: italic; }
.hidden { display: none; }
"""

_JS = """
function toggleRow(id) {
  var rows = document.querySelectorAll('tr[data-parent=\"' + id + '\"]');
  var btn = document.getElementById('btn-' + id);
  var collapse = btn.textContent === '\\u25BE';
  btn.textContent = collapse ? '\\u25B8' : '\\u25BE';
  rows.forEach(function (row) {
    if (collapse) {
      hideSubtree(row);
    } else {
      row.classList.remove('hidden');
    }
  });
}
function hideSubtree(row) {
  row.classList.add('hidden');
  var btn = row.querySelector('.toggle[id]');
  if (btn) { btn.textContent = '\\u25B8'; }
  document.querySelectorAll(
    'tr[data-parent=\"' + row.id + '\"]'
  ).forEach(hideSubtree);
}
"""

_ICONS = {
    NodeCategory.CALL_SITE: "&#8618;",   # arrow: call site / callee
    NodeCategory.CALLER: "&#8617;",
    NodeCategory.LOOP: "&#8635;",        # loop arrow
    NodeCategory.INLINED: "&#8964;",
    NodeCategory.STATEMENT: "&#183;",
}


def render_html(
    view: View,
    title: str = "",
    columns: Sequence[MetricSpec] | None = None,
    max_depth: int = 4,
    hot: HotPathResult | None = None,
    max_rows: int = 2000,
) -> str:
    """Render a view to a standalone HTML document.

    Rows are materialized to *max_depth* (deeper levels of the hot path
    are always included); rows beyond the first two levels start
    collapsed, mirroring the top-down analysis discipline.
    """
    columns = list(columns) if columns else _default_columns(view)
    totals = [view.total(c) for c in columns]
    hot_ids = {id(n) for n in (hot.path if hot else ())}

    head = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html_mod.escape(title or view.title)}</title>",
        f"<style>{_CSS}</style>",
        f"<script>{_JS}</script>",
        "</head><body>",
        f"<h1>{html_mod.escape(title or view.title)}</h1>",
        "<table>",
    ]
    header_cells = ["<th style='text-align:left'>scope</th>"]
    for spec in columns:
        desc = view.metrics.by_id(spec.mid)
        flavor = "I" if spec.flavor is MetricFlavor.INCLUSIVE else "E"
        header_cells.append(
            f"<th>{html_mod.escape(desc.name)} ({flavor})</th>"
        )
    head.append("<tr>" + "".join(header_cells) + "</tr>")

    body: list[str] = []
    counter = [0]

    def emit(node: ViewNode, depth: int, parent_id: str, visible: bool) -> None:
        if counter[0] >= max_rows:
            return
        counter[0] += 1
        row_id = f"r{counter[0]}"
        is_hot = id(node) in hot_ids
        descend = depth < max_depth or (is_hot and hot is not None)
        children = node.children if descend else []
        classes = []
        if is_hot:
            classes.append("hot")
        if not visible:
            classes.append("hidden")
        cls = f" class='{' '.join(classes)}'" if classes else ""
        toggle = (
            f"<span class='toggle' id='btn-{row_id}' "
            f"onclick=\"toggleRow('{row_id}')\">"
            f"{'&#9662;' if (children and (depth < 2 or is_hot)) else ('&#9656;' if children else '&nbsp;')}"
            "</span>"
        )
        icon = _ICONS.get(node.category, "")
        icon_html = f"<span class='icon'>{icon}</span>" if icon else ""
        name = html_mod.escape(node.name)
        if not node.has_source:
            name = f"<span class='nosrc'>{name}</span>"
        indent = "&nbsp;" * (3 * depth)
        cells = [
            f"<td class='scope'>{indent}{toggle}{icon_html}{name}</td>"
        ]
        for spec, total in zip(columns, totals):
            value = view.value(node, spec)
            text = html_mod.escape(format_value(value))
            pct = format_percent(value, total)
            pct_html = f"<span class='pct'>{pct}</span>" if pct else ""
            cells.append(f"<td>{text}{pct_html}</td>")
        body.append(
            f"<tr id='{row_id}' data-parent='{parent_id}'{cls}>"
            + "".join(cells)
            + "</tr>"
        )
        child_visible = visible and (depth < 2 or is_hot)
        for child in sorted(
            children,
            key=lambda c: view.value(c, columns[0]),
            reverse=True,
        ):
            emit(child, depth + 1, row_id, child_visible)

    for root in sorted(view.roots,
                       key=lambda r: view.value(r, columns[0]), reverse=True):
        emit(root, 0, "top", True)

    tail = ["</table>"]
    if counter[0] >= max_rows:
        tail.append(f"<p>(truncated at {max_rows} rows)</p>")
    tail.append("</body></html>")
    return "\n".join(head + body + tail)

"""Experiment Fig. 1+2: the worked example's three views, exactly.

Reproduces every (inclusive, exclusive) pair printed in Figure 2 of the
paper — CCT (2a), Callers View (2b) and Flat View (2c) of the two-file
recursive program of Figure 1 — with zero tolerance.
"""

from __future__ import annotations

from repro.core.views import NodeCategory
from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads import fig1

__all__ = ["run", "build_experiment"]


def build_experiment() -> Experiment:
    return Experiment.from_program(fig1.build())


def run() -> ExperimentReport:
    exp = build_experiment()
    mid = exp.metric_id(fig1.METRIC)
    report = ExperimentReport(
        "Fig.2", "Three views of the Figure 1 program (exact golden values)"
    )

    def add_pair(label: str, node, paper_incl: float, paper_excl: float) -> None:
        report.add(f"{label} inclusive", paper_incl,
                   node.inclusive.get(mid, 0.0), tolerance=0.0)
        report.add(f"{label} exclusive", paper_excl,
                   node.exclusive.get(mid, 0.0), tolerance=0.0)

    # -- 2a: calling context tree -------------------------------------- #
    cct_expect = {
        ("m",): (10, 0), ("m", "f"): (7, 1), ("m", "f", "g"): (6, 1),
        ("m", "f", "g", "g"): (5, 1), ("m", "f", "g", "g", "h"): (4, 4),
        ("m", "g"): (3, 3),
    }
    for path, (incl, excl) in cct_expect.items():
        node = _frame_by_path(exp, path)
        add_pair("CCT " + "->".join(path), node, incl, excl)

    # -- 2b: callers view ------------------------------------------------ #
    callers = exp.callers_view()

    def croot(name):
        return next(r for r in callers.roots if r.name == name)

    def cchild(node, name):
        return next(r for r in node.children if r.name == name)

    g = croot("g")
    add_pair("Callers g (g_a)", g, 9, 4)
    add_pair("Callers g<-g (g_b)", cchild(g, "g"), 5, 1)
    add_pair("Callers g<-f (f_b)", cchild(g, "f"), 6, 1)
    add_pair("Callers g<-m (m_a)", cchild(g, "m"), 3, 3)
    add_pair("Callers g<-g<-f (f_c)", cchild(cchild(g, "g"), "f"), 5, 1)
    add_pair("Callers h (h)", croot("h"), 4, 4)
    add_pair("Callers f (f_a)", croot("f"), 7, 1)
    add_pair("Callers m (m)", croot("m"), 10, 0)

    # -- 2c: flat view ------------------------------------------------------ #
    flat = exp.flat_view()

    def froot(name):
        return next(r for r in flat.roots if r.name == name)

    def fchild(node, name):
        return next(r for r in node.children if r.name == name)

    file2, file1 = froot("file2.c"), froot("file1.c")
    add_pair("Flat file2", file2, 9, 8)
    add_pair("Flat file1", file1, 10, 1)
    add_pair("Flat g (g_x)", fchild(file2, "g"), 9, 4)
    add_pair("Flat h (h_x)", fchild(file2, "h"), 4, 4)
    add_pair("Flat f (f_x)", fchild(file1, "f"), 7, 1)
    add_pair("Flat m", fchild(file1, "m"), 10, 0)
    hx = fchild(file2, "h")
    l1 = next(c for c in hx.children if c.category is NodeCategory.LOOP)
    add_pair("Flat l1", l1, 4, 0)
    l2 = next(c for c in l1.children if c.category is NodeCategory.LOOP)
    add_pair("Flat l2", l2, 4, 4)

    report.note(
        "The figure's node h_y (call-site scope for h with rule-1 exclusive "
        "cost 0) is reproduced by FlatView(fused=False); fused call-site "
        "rows follow Section V-B and match g_y, g_z, g_v, f_y."
    )
    return report


def _frame_by_path(exp: Experiment, names: tuple[str, ...]):
    node = exp.cct.root
    for name in names:
        frames = []
        stack = list(node.children)
        while stack:
            cur = stack.pop()
            if cur.kind.value == "procedure-frame":
                frames.append(cur)
            else:
                stack.extend(cur.children)
        node = next(f for f in frames if f.name == name)
    return node

"""Ablation §V-C: the hot-path threshold t.

The paper fixes t = 50% as the most useful default and makes it
adjustable in preferences.  This ablation sweeps t over the S3D model
and reports where the hot path ends: too-high thresholds stop at outer
drivers (under-expansion), too-low thresholds tunnel past the bottleneck
into its largest sub-part (over-expansion); t = 50% lands exactly on the
chemkin reaction-rate routine the paper highlights.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.sim.workloads import s3d

__all__ = ["run", "sweep"]

THRESHOLDS = (0.9, 0.7, 0.5, 0.3, 0.1)


def sweep(exp: Experiment | None = None) -> list[tuple[float, str, int]]:
    """(threshold, terminus scope, path length) for each t."""
    exp = exp or Experiment.from_program(s3d.build())
    out = []
    for t in THRESHOLDS:
        result = exp.hot_path(CYCLES, threshold=t)
        out.append((t, result.hotspot.name, len(result)))
    return out


def run() -> ExperimentReport:
    report = ExperimentReport(
        "§V-C", "Hot-path threshold sweep on S3D (default t = 50%)"
    )
    rows = sweep()
    by_t = {t: (name, length) for t, name, length in rows}
    report.add("terminus at t=50%", "chemkin_m_reaction_rate",
               by_t[0.5][0], tolerance=0.0)
    for t, (name, length) in sorted(by_t.items(), reverse=True):
        report.add(f"t={int(t * 100)}% path length", None, length)
    # monotonicity: lowering t never shortens the path
    lengths = [by_t[t][1] for t in sorted(by_t, reverse=True)]
    monotone = all(a <= b for a, b in zip(lengths, lengths[1:]))
    report.add("path length monotone in threshold", "yes",
               "yes" if monotone else "no", tolerance=0.0)
    return report

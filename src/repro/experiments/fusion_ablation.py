"""Ablation §V-B: fused call-site/callee lines halve the chain length.

"Our current design presents both call site and callee information on a
single line in the navigation pane, which shortens the length of the
call chains in hpcviewer by half and halves the effort to open them."

We measure the number of rows an analyst must open to expose the S3D hot
path under the fused design versus the earlier two-line design.
"""

from __future__ import annotations

from repro.core.hotpath import hot_path
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.sim.workloads import s3d

__all__ = ["run", "chain_lengths"]


def chain_lengths(exp: Experiment | None = None):
    """Hot-path results under the fused and the two-line designs."""
    exp = exp or Experiment.from_program(s3d.build())
    spec = MetricSpec(exp.metric_id(CYCLES), MetricFlavor.INCLUSIVE)
    fused = hot_path(exp.calling_context_view(fused=True), spec)
    unfused = hot_path(exp.calling_context_view(fused=False), spec)
    assert fused.hotspot.name == unfused.hotspot.name
    return fused, unfused


def run() -> ExperimentReport:
    from repro.core.views import NodeCategory

    report = ExperimentReport(
        "§V-B", "Call-site/callee fusion: navigation effort to the bottleneck"
    )
    fused, unfused = chain_lengths()
    report.add("rows to expose the hot path (fused)", None, len(fused))
    report.add("rows to expose the hot path (two-line design)", None,
               len(unfused))
    saved = len(unfused) - len(fused)
    # in the two-line design every dynamic link costs two rows (call site
    # + callee frame); fusion collapses each pair into one, so the rows
    # saved must equal the number of fused call rows on the path
    fused_calls = sum(
        1 for n in fused.path if n.category is NodeCategory.CALL_SITE
    )
    report.add("rows saved by fusion", None, saved)
    report.add("dynamic links on the path", fused_calls, saved, tolerance=0.0)
    report.note(
        "Loop scopes appear in both designs, so the end-to-end ratio sits "
        "between 1x and 2x; the *dynamic* portion of the chain is exactly "
        "halved, matching the paper's claim."
    )
    return report

"""Experiment Fig. 6: derived waste/efficiency metrics on S3D.

Paper values: the flux-diffusion loop carries the most floating-point
waste (13.5%) at ~6% relative efficiency; the second-ranked scope is a
loop in the math library's exponential routine at ~39% efficiency;
transforming the flux loop improved its running time 2.9x.
"""

from __future__ import annotations

from repro.core.metrics import MetricFlavor
from repro.core.views import NodeCategory
from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES, FLOPS
from repro.sim.workloads import s3d

__all__ = ["run", "build_experiment"]


def build_experiment() -> Experiment:
    exp = Experiment.from_program(s3d.build())
    cyc, fl = exp.metric_id(CYCLES), exp.metric_id(FLOPS)
    exp.add_derived_metric(
        "fp waste",
        f"{s3d.PEAK_FLOPS_PER_CYCLE} * ${cyc} - ${fl}",
        description="cycles x peak flops/cycle - actual flops (Section V-D)",
    )
    exp.add_derived_metric(
        "relative efficiency",
        f"${fl} / ({s3d.PEAK_FLOPS_PER_CYCLE} * ${cyc})",
        description="measured FLOPS / potential peak FLOPS",
    )
    return exp


def run() -> ExperimentReport:
    exp = build_experiment()
    report = ExperimentReport(
        "Fig.6", "Derived FP-waste and efficiency metrics on S3D loops"
    )

    # Figure 6's workflow: flatten the Flat View to loop granularity and
    # sort by the loops' own waste
    flat = exp.flat_view()
    flat.flatten()
    flat.flatten()
    waste_spec = exp.spec("fp waste", MetricFlavor.EXCLUSIVE)
    eff_spec = exp.spec("relative efficiency", MetricFlavor.EXCLUSIVE)
    loops = sorted(
        (r for r in flat.current_roots() if r.category is NodeCategory.LOOP),
        key=lambda r: flat.value(r, waste_spec),
        reverse=True,
    )
    total_waste = flat.total(exp.spec("fp waste"))
    top, second = loops[0], loops[1]

    report.add("top-waste loop file", "diffflux.f90",
               top.struct.location.file, tolerance=0.0)
    report.add("top loop waste share", 13.5,
               100 * flat.value(top, waste_spec) / total_waste,
               unit="%", tolerance=1.0)
    report.add("top loop relative efficiency", 6.0,
               100 * flat.value(top, eff_spec), unit="%", tolerance=1.0)
    report.add("second loop file", "e_exp.c",
               second.struct.location.file, tolerance=0.0)
    report.add("second loop relative efficiency", 39.0,
               100 * flat.value(second, eff_spec), unit="%", tolerance=2.0)

    # the tuning claim: flux loop 2.9x faster after transformation
    tuned = Experiment.from_program(s3d.build(tuned=True))
    cyc = exp.metric_id(CYCLES)

    def flux_cycles(e: Experiment) -> float:
        f = e.flat_view()
        proc = f.find("compute_diffusive_flux", category=NodeCategory.PROCEDURE)
        loop = next(c for c in proc.children if c.category is NodeCategory.LOOP)
        return loop.inclusive[cyc]

    speedup = flux_cycles(exp) / flux_cycles(tuned)
    report.add("flux loop tuning speedup", 2.9, speedup, unit="x", tolerance=0.05)
    return report

"""Reproduction experiments: one module per paper figure/claim.

Each experiment module exposes ``run(...) -> ExperimentReport`` producing
paper-vs-measured rows; the benchmark harness and the EXPERIMENTS.md
generator both consume these.
"""

"""Experiment Fig. 7: PFLOTRAN load-imbalance identification.

The paper sorts by total inclusive idleness over all MPI processes, uses
hot path analysis to drill into the imbalance context — the main
iteration loop at timestepper.F90:384 — and confirms uneven work with a
per-rank scatter, a sorted plot and a histogram.  There is no numeric
headline in the paper beyond the context itself, so the quantitative
rows assert the *shape*: a genuinely uneven distribution whose idleness
mirrors the work gap, pinpointed at the right loop.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentReport
from repro.hpcprof.summarize import imbalance_factor
from repro.hpcrun.counters import CYCLES
from repro.sim.spmd import spmd_experiment
from repro.sim.workloads import pflotran
from repro.viewer.charts import render_rank_panel

__all__ = ["run", "build_experiment", "DEFAULT_NRANKS"]

DEFAULT_NRANKS = 64


def build_experiment(nranks: int = DEFAULT_NRANKS):
    return spmd_experiment(pflotran.build(), nranks=nranks)


def run(nranks: int = DEFAULT_NRANKS) -> ExperimentReport:
    exp = build_experiment(nranks)
    report = ExperimentReport(
        "Fig.7", f"PFLOTRAN load imbalance across {nranks} simulated ranks"
    )

    result = exp.hot_path(pflotran.IDLENESS)
    loop_rows = [n for n in result.path if n.name.startswith("loop at timestepper")]
    report.add("imbalance context found by hot path",
               "loop at timestepper.F90:384",
               loop_rows[0].name.split("-")[0] if loop_rows else "(not found)",
               tolerance=0.0)

    work = exp.rank_vector(exp.cct.root, CYCLES)
    idle = exp.rank_vector(exp.cct.root, pflotran.IDLENESS)
    report.add("work imbalance factor (max/mean)", None,
               float(imbalance_factor(work)))
    report.add("work distribution is uneven (stddev/mean)", None,
               float(work.std() / work.mean()))
    corr = float(np.corrcoef(idle, work.max() - work)[0, 1])
    report.add("idleness mirrors the work gap (corr)", 1.0, corr, tolerance=0.02)

    ids = exp.summarize(CYCLES)
    root = exp.cct.root
    report.add("summary stats per scope replace per-rank storage", 4,
               len([m for m in ids.all() if m in root.inclusive]), tolerance=0.0)
    report.note(
        "Charts (scatter / sorted / histogram) equivalent to Figure 7 are "
        "rendered by repro.viewer.charts.render_rank_panel."
    )
    return report


def render_panel(nranks: int = DEFAULT_NRANKS) -> str:
    """The full Figure 7 panel for the hot-path context."""
    exp = build_experiment(nranks)
    result = exp.hot_path(pflotran.IDLENESS)
    loop_row = next(
        n for n in result.path if n.name.startswith("loop at timestepper")
    )
    vec = exp.rank_vector(loop_row, CYCLES)
    return render_rank_panel(
        vec, title=f"inclusive cycles at {loop_row.name} across {nranks} ranks"
    )

"""Experiment Fig. 5: Flat View attribution through loops and inlining.

Paper values: all 18.9% of the cycles in ``MBCore::get_coords`` sit in
one loop; the inlined ``SequenceCompare`` operator (inside the inlined
red-black-tree search loop of the STL, inside the inlined
``SequenceManager::find``) accounts for 19.8% of the L1 misses.
"""

from __future__ import annotations

from repro.core.views import NodeCategory
from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES, L1_DCM
from repro.sim.workloads import moab

__all__ = ["run", "build_experiment"]


def build_experiment() -> Experiment:
    return Experiment.from_program(moab.build())


def run() -> ExperimentReport:
    exp = build_experiment()
    cyc, l1 = exp.metric_id(CYCLES), exp.metric_id(L1_DCM)
    totc, totl = exp.total(CYCLES), exp.total(L1_DCM)
    report = ExperimentReport(
        "Fig.5", "MOAB Flat View: hierarchical attribution through inlining"
    )

    flat = exp.flat_view()
    gc = flat.find("MBCore::get_coords", category=NodeCategory.PROCEDURE)
    report.add("MBCore::get_coords cycles", 18.9,
               100 * gc.inclusive[cyc] / totc, unit="%", tolerance=0.3)
    loop = next(c for c in gc.children if c.category is NodeCategory.LOOP)
    report.add("fraction of those inside its loop", 100.0,
               100 * loop.inclusive[cyc] / gc.inclusive[cyc], unit="%",
               tolerance=0.5)

    compare = flat.find("SequenceCompare::operator()")
    report.add("inlined SequenceCompare L1 misses", 19.8,
               100 * compare.inclusive[l1] / totl, unit="%", tolerance=0.3)

    # depth of the inlined hierarchy beneath the loop (Fig. 5 shows 3+)
    depth = 0
    node = loop
    while True:
        nxt = [c for c in node.children
               if c.category in (NodeCategory.INLINED, NodeCategory.LOOP)]
        if not nxt:
            break
        node = max(nxt, key=lambda c: c.inclusive.get(l1, 0.0))
        depth += 1
    report.add("levels of nested inlined structure", 3, depth, tolerance=1.0)
    return report

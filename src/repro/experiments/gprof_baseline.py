"""Experiment (related work): gprof-style attribution vs context-exact views.

The paper's related-work section positions hpcviewer against gprof-class
tools.  This experiment quantifies the difference on two planted cases:

* a context-dependent callee (cheap from one caller, expensive from
  another, equal call counts) — gprof must split its cost evenly;
* the recursive Figure 1 program — gprof collapses the recursion cycle
  and apportions by counts.

The context-sensitive views attribute both exactly.
"""

from __future__ import annotations

from repro.baselines.compare import compare_attribution, max_relative_error
from repro.baselines.gprof import GprofProfile
from repro.core.attribution import attribute
from repro.experiments.report import ExperimentReport
from repro.hpcprof.correlate import correlate
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.workloads import fig1, s3d

__all__ = ["run"]


def _cct(program):
    cct = correlate(execute(program), build_structure(program))
    attribute(cct)
    return cct


def run() -> ExperimentReport:
    report = ExperimentReport(
        "Baseline", "gprof call-graph model vs exact context-sensitive views"
    )

    # recursive worked example
    cct = _cct(fig1.build())
    rows = compare_attribution(cct, mid=0)
    fg = next(r for r in rows if (r.caller, r.callee) == ("f", "g"))
    report.add("exact cost of g via f (Callers View)", 6.0, fg.exact,
               tolerance=0.0)
    report.add("gprof estimate of g via f", 3.0, fg.gprof_estimate,
               tolerance=0.0)
    report.add("worst per-arc relative error (fig1)", None,
               100 * max_relative_error(rows), unit="%")
    gprof = GprofProfile.from_cct(cct, mid=0)
    report.add("gprof collapses g's recursion into a cycle", "yes",
               "yes" if gprof.in_cycle("g") else "no", tolerance=0.0)

    # a realistic workload: gprof on S3D
    s3d_cct = _cct(s3d.build())
    s3d_rows = compare_attribution(s3d_cct, mid=0)
    report.add("worst per-arc relative error (s3d)", None,
               100 * max_relative_error(s3d_rows), unit="%")
    report.add("arcs compared on s3d", None, float(len(s3d_rows)))
    report.note(
        "Errors are zero only when every callee costs the same from every "
        "caller — the assumption the Callers View exists to remove."
    )
    return report

"""Report structures for paper-vs-measured comparisons.

Every experiment module returns an :class:`ExperimentReport`: a set of
rows each pairing a value printed in the paper with the value this
reproduction measures, plus a tolerance.  The benchmark harness prints
them; ``repro-experiments`` aggregates them into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Row", "ExperimentReport"]


@dataclass(frozen=True)
class Row:
    """One paper-vs-measured comparison."""

    name: str
    paper: float | str | None
    measured: float | str
    unit: str = ""
    tolerance: float | None = None  # absolute; None = informational row

    @property
    def ok(self) -> bool | None:
        """Within tolerance?  None when the row is informational."""
        if self.tolerance is None or self.paper is None:
            return None
        if isinstance(self.paper, str) or isinstance(self.measured, str):
            return self.paper == self.measured
        return abs(float(self.measured) - float(self.paper)) <= self.tolerance

    def render(self) -> str:
        def fmt(v):
            if v is None:
                return "-"
            if isinstance(v, float):
                return f"{v:.6g}"
            return str(v)

        status = {True: "OK", False: "MISMATCH", None: "info"}[self.ok]
        unit = f" {self.unit}" if self.unit else ""
        return (
            f"  {self.name:<46} paper={fmt(self.paper):>10}{unit:<9} "
            f"measured={fmt(self.measured):>10}{unit:<9} [{status}]"
        )


@dataclass
class ExperimentReport:
    """All comparisons for one figure/claim of the paper."""

    exp_id: str
    title: str
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(
        self,
        name: str,
        paper,
        measured,
        unit: str = "",
        tolerance: float | None = None,
    ) -> None:
        self.rows.append(Row(name, paper, measured, unit, tolerance))

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_ok(self) -> bool:
        return all(r.ok is not False for r in self.rows)

    def render(self) -> str:
        lines = [f"=== {self.exp_id}: {self.title} ==="]
        lines += [row.render() for row in self.rows]
        lines += [f"  note: {n}" for n in self.notes]
        lines.append(f"  => {'REPRODUCED' if self.all_ok else 'DEVIATION'}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            f"### {self.exp_id}: {self.title}",
            "",
            "| quantity | paper | measured | unit | status |",
            "|---|---|---|---|---|",
        ]
        for r in self.rows:
            def fmt(v):
                if v is None:
                    return "—"
                return f"{v:.4g}" if isinstance(v, float) else str(v)

            status = {True: "✓", False: "✗", None: "·"}[r.ok]
            lines.append(
                f"| {r.name} | {fmt(r.paper)} | {fmt(r.measured)} "
                f"| {r.unit} | {status} |"
            )
        for n in self.notes:
            lines.append(f"\n*{n}*")
        lines.append("")
        return "\n".join(lines)

"""Experiment Fig. 3: Calling Context View + hot path on S3D.

Paper values: the loop at integrate_erk.f90:82 holds 97.9% of inclusive
cycles at ~0.0% exclusive; rhsf's exclusive share is 8.7%; hot path
analysis pinpoints chemkin_m_reaction_rate at 41.4% of inclusive cycles.
"""

from __future__ import annotations

from repro.core.views import NodeCategory
from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.sim.workloads import s3d

__all__ = ["run", "build_experiment"]


def build_experiment() -> Experiment:
    return Experiment.from_program(s3d.build())


def run() -> ExperimentReport:
    exp = build_experiment()
    total = exp.total(CYCLES)
    cyc = exp.metric_id(CYCLES)
    report = ExperimentReport(
        "Fig.3", "S3D Calling Context View with hot path analysis (cycles)"
    )

    flat = exp.flat_view()
    ierk = flat.find("integrate_erk", category=NodeCategory.PROCEDURE)
    loop82 = next(c for c in ierk.children if c.category is NodeCategory.LOOP)
    report.add("loop at integrate_erk.f90:82 inclusive", 97.9,
               100 * loop82.inclusive[cyc] / total, unit="%", tolerance=0.5)
    report.add("loop at integrate_erk.f90:82 exclusive", 0.0,
               100 * loop82.exclusive.get(cyc, 0.0) / total, unit="%",
               tolerance=0.5)

    rhsf = flat.find("rhsf", category=NodeCategory.PROCEDURE)
    report.add("rhsf exclusive", 8.7,
               100 * rhsf.exclusive[cyc] / total, unit="%", tolerance=0.8)

    result = exp.hot_path(CYCLES)
    report.add("hot path terminus", "chemkin_m_reaction_rate",
               result.hotspot.name, tolerance=0.0)
    report.add("hot path terminus inclusive", 41.4,
               100 * result.hotspot_value / total, unit="%", tolerance=1.0)

    loops_on_path = sum(
        1 for n in result.path if n.category is NodeCategory.LOOP
    )
    report.add("loop scopes interleaved on the hot path", None, loops_on_path)
    report.note(
        "The expanded chain fuses dynamic calls with the static loop nests "
        "surrounding them (Section III-D.2)."
    )
    return report

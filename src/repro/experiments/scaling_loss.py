"""Experiment §VI-A: scaling-loss derived metric (scale and difference).

The paper pinpoints scalability bottlenecks by scaling and differencing
call path profiles from a pair of executions [Coarfa et al.].  We run the
PFLOTRAN model at two scales with a deliberately non-scaling component
(the synchronization idleness grows with rank count), compute the
scaling-loss metric, and check it attributes the loss to the
synchronization contexts rather than the compute kernels.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.hpcprof.merge import scale_and_difference
from repro.hpcrun.counters import CYCLES
from repro.sim.spmd import spmd_experiment
from repro.sim.workloads import pflotran

__all__ = ["run", "build_pair"]


def build_pair(small: int = 8, big: int = 32):
    """Two weak-scaled runs: same per-rank grid, different rank counts."""
    base = {"nx": 40, "ny": 40, "nz": 8}
    exp_small = spmd_experiment(
        pflotran.build(), nranks=small,
        params={**base, "nx": base["nx"] * small},
    )
    exp_big = spmd_experiment(
        pflotran.build(), nranks=big,
        params={**base, "nx": base["nx"] * big},
    )
    return exp_small, exp_big


def run(small: int = 8, big: int = 32) -> ExperimentReport:
    exp_small, exp_big = build_pair(small, big)
    report = ExperimentReport(
        "§VI-A", f"Scaling loss by scale-and-difference ({small} -> {big} ranks)"
    )

    mid = exp_big.metric_id(CYCLES)
    # weak scaling: a perfectly scaling code costs (big/small)x the total
    loss_mid = scale_and_difference(
        exp_small.cct, exp_big.cct, exp_big.metrics, mid,
        factor=big / small, name="scaling loss",
    )
    total_loss = exp_big.cct.root.inclusive.get(loss_mid, 0.0)
    total_big = exp_big.cct.root.inclusive.get(mid, 0.0)
    report.add("scaling loss share of big-run cycles", None,
               100 * total_loss / total_big, unit="%")

    # the loss must sort synchronization above the compute kernels
    callers = exp_big.callers_view()

    def loss_of(name: str) -> float:
        row = next(r for r in callers.roots if r.name == name)
        return row.inclusive.get(loss_mid, 0.0)

    sync_loss = loss_of("MPI_Allreduce")
    matmult_loss = loss_of("MatMult")
    report.add("loss at MPI_Allreduce > loss at MatMult", "yes",
               "yes" if sync_loss > abs(matmult_loss) else "no", tolerance=0.0)
    report.add("MPI_Allreduce share of total loss", None,
               100 * sync_loss / total_loss if total_loss else 0.0, unit="%")
    report.note(
        "Imbalance-induced idleness grows with rank count in the model, so "
        "the derived metric isolates it in context — the paper's workflow "
        "for pinpointing scalability bottlenecks."
    )
    return report

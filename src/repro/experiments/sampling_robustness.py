"""Experiment (premise): conclusions survive asynchronous sampling noise.

The paper's case for call path *profiles* rests on asynchronous sampling
being accurate and precise enough that the presentation reaches the same
conclusions as exact measurement.  This experiment quantifies that on
the S3D model: starting from the exact cost distribution, it simulates
sampling runs at several periods (Poisson draws per leaf) and measures

* how often hot path analysis still lands on ``chemkin_m_reaction_rate``;
* the mean relative error of a headline share (rhsf's exclusive %).

Expected shape: at a few thousand samples the hot path is found every
time and share errors are well under a percentage point; at a few dozen
samples both degrade visibly — sampling density buys fidelity.
"""

from __future__ import annotations

import numpy as np

from repro.core.views import NodeCategory
from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.workloads import s3d

__all__ = ["run", "sweep"]

#: sampling periods in cycles; total cycles ~ 1e9, so expected sample
#: counts are ~ 1e9/period
PERIODS = (2.0e7, 2.0e6, 2.0e5)
SEEDS = 10


def sweep(periods=PERIODS, seeds: int = SEEDS):
    """(period, expected samples, hot-path hit rate, mean share error %)."""
    program = s3d.build()
    structure = build_structure(program)
    exact_profile = execute(program)
    exact_exp = Experiment.from_profile(exact_profile, structure)
    truth_total = exact_exp.total(CYCLES)
    rhsf = exact_exp.flat_view().find("rhsf", category=NodeCategory.PROCEDURE)
    truth_share = rhsf.exclusive[exact_exp.metric_id(CYCLES)] / truth_total

    rows = []
    for period in periods:
        hits = 0
        errors = []
        for seed in range(seeds):
            noisy = exact_profile.resampled(
                period, rng=np.random.default_rng(seed)
            )
            if not noisy.totals():
                errors.append(1.0)
                continue
            exp = Experiment.from_profile(noisy, structure)
            result = exp.hot_path(CYCLES)
            if result.hotspot.name == "chemkin_m_reaction_rate":
                hits += 1
            cyc = exp.metric_id(CYCLES)
            try:
                row = exp.flat_view().find("rhsf",
                                           category=NodeCategory.PROCEDURE)
                share = row.exclusive.get(cyc, 0.0) / exp.total(CYCLES)
                errors.append(abs(share - truth_share) / truth_share)
            except Exception:
                errors.append(1.0)
        expected_samples = truth_total / period
        rows.append(
            (period, expected_samples, hits / seeds, 100 * float(np.mean(errors)))
        )
    return rows


def run() -> ExperimentReport:
    report = ExperimentReport(
        "sampling", "Presentation robustness under asynchronous sampling"
    )
    rows = sweep()
    for period, expected, hit_rate, err in rows:
        label = f"~{expected:,.0f} samples"
        report.add(f"hot-path hit rate at {label}", None, hit_rate)
        report.add(f"rhsf share error at {label}", None, err, unit="%")
    finest = rows[-1]
    report.add("hot path always found at the finest period", 1.0,
               finest[2], tolerance=0.0)
    # rhsf's exclusive share is ~9%, so at N total samples it holds ~0.09N
    # and the binomial relative error is ~1/sqrt(0.09 N) — about 4.8% at
    # ~4,800 samples.  Allow 1.5x the theoretical sigma.
    expected_sigma = 100.0 / np.sqrt(0.09 * finest[1])
    report.add("share error within 1.5x sampling sigma", "yes",
               "yes" if finest[3] < 1.5 * expected_sigma else "no",
               tolerance=0.0)
    report.add("theoretical sampling sigma at finest period", None,
               expected_sigma, unit="%")
    coarser_err, finer_err = rows[0][3], rows[-1][3]
    report.add("error shrinks with sampling density", "yes",
               "yes" if finer_err < coarser_err else "no", tolerance=0.0)
    return report

"""Experiment §VII: scalable presentation.

The paper's scalability claims, each measured here on synthetic CCTs:

1. the Callers View is constructed *dynamically* — time to first render
   must not pay for the whole bottom-up tree (lazy vs eager ablation);
2. per-rank metrics are summarized into mean/min/max/stddev — per-scope
   storage must be O(1) in rank count, not O(#ranks);
3. the tree-tabular renderer shows a bounded window — render time must
   be roughly flat in total CCT size once the window is full;
4. (ongoing-work claim) a compact binary database beats XML in size and
   speed — measured in ``benchmarks/bench_database.py``.
"""

from __future__ import annotations

import time

from repro.core.views import NodeCategory
from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.sim.workloads.synthetic import uniform_tree as synthetic_tree_program
from repro.viewer.navigation import NavigationState
from repro.viewer.table import TableOptions, render_table

__all__ = ["run", "synthetic_tree_program", "lazy_vs_eager", "render_cost"]


def lazy_vs_eager(exp: Experiment, trials: int = 3) -> dict[str, float]:
    """Seconds to first Callers View render, lazy vs eager construction.

    Best-of-N to keep the comparison robust against scheduler noise when
    the experiment runs inside a loaded test session.
    """
    out = {}
    for mode in ("lazy", "eager"):
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            view = exp.callers_view(eager=(mode == "eager"))
            state = NavigationState(view)
            render_table(view, state, options=TableOptions(max_rows=30))
            best = min(best, time.perf_counter() - start)
        out[mode] = best
    return out


def render_cost(exp: Experiment) -> float:
    """Seconds to render a fixed window of the Calling Context View.

    The window is what an analyst actually opens — here the hot path —
    so its size depends on expansion depth, not on total CCT size.
    """
    view = exp.calling_context_view()
    state = NavigationState(view)
    state.expand_hot_path()
    start = time.perf_counter()
    render_table(view, state, options=TableOptions(max_rows=50))
    return time.perf_counter() - start


def run() -> ExperimentReport:
    report = ExperimentReport("§VII", "Scalable presentation ablations")

    exp = Experiment.from_program(synthetic_tree_program(fanout=8, depth=3))
    report.add("CCT scopes in the scaling subject", None, float(len(exp.cct)))

    times = lazy_vs_eager(exp)
    report.add("lazy Callers View: time to first render", None,
               times["lazy"] * 1e3, unit="ms")
    report.add("eager Callers View: time to first render", None,
               times["eager"] * 1e3, unit="ms")
    report.add("lazy faster than eager", "yes",
               "yes" if times["lazy"] < times["eager"] else "no",
               tolerance=0.0)

    # rendering a fixed window (the expanded hot path) must not scale
    # with total tree size: an 8x bigger CCT, same expansion depth
    small = Experiment.from_program(synthetic_tree_program(fanout=8, depth=2))
    t_small = min(render_cost(small) for _ in range(3))
    t_big = min(render_cost(exp) for _ in range(3))
    report.add("hot-path window render, small tree", None,
               t_small * 1e3, unit="ms")
    report.add("hot-path window render, ~8x tree", None, t_big * 1e3, unit="ms")
    report.add("window render roughly flat in tree size (<3x)", "yes",
               "yes" if t_big < 3 * max(t_small, 1e-4) else "no",
               tolerance=0.0)

    # summarization: per-scope storage independent of rank count
    from repro.sim.spmd import spmd_experiment
    from repro.sim.workloads import pflotran

    for nranks in (16, 64):
        par = spmd_experiment(pflotran.build(), nranks=nranks)
        ids = par.summarize("PAPI_TOT_CYC")
        per_scope = [
            sum(1 for k in node.inclusive if k in ids.all())
            for node in par.cct.walk()
        ]
        report.add(f"summary entries per scope at {nranks} ranks", 4,
                   max(per_scope), tolerance=0.0)
    return report

"""Experiment Fig. 4: Callers View on the MOAB mesh benchmark.

Paper values: ``_intel_fast_memset.A`` is called from two different
callers and accounts for 9.7% of total L1 data cache misses; of those,
almost all (9.6%) come from the call to memset by Sequence_data::create.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import L1_DCM
from repro.sim.workloads import moab

__all__ = ["run", "build_experiment"]


def build_experiment() -> Experiment:
    return Experiment.from_program(moab.build())


def run() -> ExperimentReport:
    exp = build_experiment()
    l1 = exp.metric_id(L1_DCM)
    total = exp.total(L1_DCM)
    report = ExperimentReport(
        "Fig.4", "MOAB Callers View: optimized memset's L1 misses by caller"
    )

    callers = exp.callers_view()
    memset = next(r for r in callers.roots if r.name == "_intel_fast_memset.A")
    report.add("memset callers", 2, len(memset.children), tolerance=0.0)
    report.add("memset total L1 misses", 9.7,
               100 * memset.inclusive[l1] / total, unit="%", tolerance=0.3)
    by_name = {c.name: c for c in memset.children}
    create = by_name["Sequence_data::create"]
    report.add("via Sequence_data::create", 9.6,
               100 * create.inclusive[l1] / total, unit="%", tolerance=0.3)
    other = by_name["TypeSequenceManager::allocate"]
    report.add("via the second caller", 0.1,
               100 * other.inclusive[l1] / total, unit="%", tolerance=0.2)
    return report

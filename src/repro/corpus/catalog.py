"""The durable, tenant-namespaced profile catalog.

On disk a corpus root looks like::

    root/
      corpus.json                     # format marker, written once
      journal.rjl                     # append-only catalog journal
      journal.lock                    # advisory flock target
      staging/<ospid>-<pid>/          # in-flight uploads and merges
      pins/<tenant>@@<pid>@@<owner>.pin
      tenants/<tenant>/profiles/<pid>.rpdb
      tenants/<tenant>/profiles/<pid>.rpstore/   # compacted groups

Every state transition follows the same two-phase discipline the
``.rpstore`` writer uses (manifest written last, rename as commit):

1. build the payload in ``staging/`` and ``fsync`` it,
2. journal an *intent* record,
3. ``os.rename`` the payload to its final path (atomic) and ``fsync``
   the parent directory,
4. journal the *commit* record.

A ``kill -9`` between any two steps leaves one of exactly four states,
and :meth:`CorpusCatalog.recover` maps each back to consistency: a
stale staging directory is reaped, an intent whose final payload landed
intact is committed (resumed), an intent whose payload is missing is
aborted, and a final file without a live catalog entry (crash between a
delete/compaction commit and its unlink) is removed.  Committed entries
carry sizes and CRC32s, so "consistent" is checkable bit-for-bit.

All mutations hold the journal's advisory ``flock``, which is what
makes one catalog shareable by every worker of a pre-forked server
pool: each worker owns a :class:`CorpusCatalog` on the same root and
:meth:`refresh` replays records appended by its siblings before acting.

Named :func:`~repro.testing.faults.crash_point` hooks sit between every
step above; the chaos battery (``tests/corpus/test_crash_battery.py``)
and the tier-1 smoke stage kill the process at each one and assert the
reopened catalog converges.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import CorpusCorrupt, CorpusError, DatabaseError, ProfilePinned
from repro.testing.faults import crash_point, register_crash_points

from .journal import Journal
from .retention import RetentionPolicy

__all__ = [
    "CORPUS_MARKER",
    "CRASH_POINTS",
    "CorpusCatalog",
    "ProfileEntry",
    "open_corpus",
]

CORPUS_MARKER = "corpus.json"
_FORMAT = {"format": "rpcorpus", "version": 1}

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_OWNER_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:-]{0,127}$")
_PID_RE = re.compile(r"^p[0-9]{6,}$")

#: every named kill-anywhere point, in protocol order — the chaos
#: battery iterates this list so new points are covered automatically
CRASH_POINTS = (
    "corpus.ingest.staged",
    "corpus.ingest.intent",
    "corpus.ingest.renamed",
    "corpus.ingest.committed",
    "corpus.compact.intent",
    "corpus.compact.merged",
    "corpus.compact.renamed",
    "corpus.compact.committed",
    "corpus.compact.cleaned",
    "corpus.evict.journaled",
    "corpus.evict.unlinked",
)
register_crash_points(*CRASH_POINTS)


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_tree(path: str) -> None:
    """fsync every file and directory under *path* (and *path* itself)."""
    if os.path.isfile(path):
        _fsync_file(path)
        return
    for dirpath, _dirnames, filenames in os.walk(path):
        for name in filenames:
            _fsync_file(os.path.join(dirpath, name))
        _fsync_dir(dirpath)


def _file_crc(path: str) -> tuple[int, int]:
    """(size, crc32) of a file, streamed."""
    crc = 0
    size = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            size += len(chunk)
    return size, crc & 0xFFFFFFFF


def _tree_manifest(root: str) -> dict[str, list[int]]:
    """``{relpath: [size, crc32]}`` for every file under *root*."""
    out: dict[str, list[int]] = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, root)
            size, crc = _file_crc(full)
            out[rel] = [size, crc]
    return out


def _pid_alive(ospid: int) -> bool:
    try:
        os.kill(ospid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except (OverflowError, ValueError):
        return False
    return True


@dataclass(frozen=True)
class ProfileEntry:
    """One committed profile: identity, provenance, and its checksums."""

    tenant: str
    pid: str
    name: str
    kind: str  # "rpdb" (single file) | "rpstore" (column-store directory)
    bytes: int
    checksum: int  # CRC32 of the .rpdb payload; 0 for stores (see files)
    created_at: float
    group: str | None = None
    meta: dict = field(default_factory=dict)
    sources: tuple[str, ...] = ()  # pids merged away by compaction
    files: dict | None = None  # rpstore: {relpath: [size, crc32]}

    @property
    def filename(self) -> str:
        return f"{self.pid}.{self.kind}"

    def to_payload(self) -> dict:
        payload = {
            "id": self.pid,
            "tenant": self.tenant,
            "name": self.name,
            "kind": self.kind,
            "bytes": self.bytes,
            "checksum": self.checksum,
            "created_at": self.created_at,
            "meta": dict(self.meta),
        }
        if self.group is not None:
            payload["group"] = self.group
        if self.sources:
            payload["sources"] = list(self.sources)
        return payload

    @classmethod
    def from_record(cls, record: dict) -> "ProfileEntry":
        return cls(
            tenant=record["tenant"],
            pid=record["pid"],
            name=record["name"],
            kind=record["kind"],
            bytes=int(record["bytes"]),
            checksum=int(record.get("checksum", 0)),
            created_at=float(record.get("created_at", 0.0)),
            group=record.get("group"),
            meta=dict(record.get("meta") or {}),
            sources=tuple(record.get("sources") or ()),
            files=record.get("files"),
        )


class CorpusCatalog:
    """A crash-safe, multi-process catalog of profile databases.

    Thread-safe within a process (one internal lock) and multi-process
    safe across a corpus root (journal ``flock`` + replay); see the
    module docstring for the on-disk protocol.
    """

    def __init__(
        self,
        root: str,
        *,
        create: bool = False,
        recover: bool = True,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self._clock = clock if clock is not None else time.time
        self._mu = threading.RLock()
        self._entries: dict[str, dict[str, ProfileEntry]] = {}
        self._policies: dict[str, RetentionPolicy] = {}
        self._pending: dict[str, dict] = {}
        self._seq = 0
        self._offset = 0
        self._closed = False
        self._init_root(create)
        self._journal = Journal(self.root)
        if recover:
            self.recover()
        else:
            with self._mu:
                self._refresh_locked()

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    def _init_root(self, create: bool) -> None:
        marker = os.path.join(self.root, CORPUS_MARKER)
        if os.path.exists(marker):
            try:
                with open(marker, "r", encoding="utf-8") as fh:
                    info = json.load(fh)
            except (OSError, ValueError) as exc:
                raise CorpusCorrupt(f"unreadable corpus marker {marker}: {exc}") from None
            if not isinstance(info, dict) or info.get("format") != "rpcorpus":
                raise CorpusCorrupt(f"{marker} is not an rpcorpus marker")
            return
        if not create:
            raise CorpusError(f"not a corpus (no {CORPUS_MARKER}): {self.root}")
        os.makedirs(self.root, exist_ok=True)
        if os.listdir(self.root):
            raise CorpusError(f"refusing to initialize non-empty directory: {self.root}")
        for sub in ("staging", "pins", "tenants"):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)
        # marker last, via tmp+rename: a crash mid-init leaves a
        # directory that is visibly *not* a corpus rather than half of one
        tmp = marker + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(_FORMAT, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.rename(tmp, marker)
        _fsync_dir(self.root)

    def _staging_dir(self, token: str) -> str:
        return os.path.join(self.root, "staging", token)

    def _pins_dir(self) -> str:
        return os.path.join(self.root, "pins")

    def _profiles_dir(self, tenant: str) -> str:
        return os.path.join(self.root, "tenants", tenant, "profiles")

    def profile_path(self, tenant: str, pid: str) -> str:
        """Absolute path of a committed profile's payload."""
        entry = self.get(tenant, pid)
        return os.path.join(self._profiles_dir(tenant), entry.filename)

    # ------------------------------------------------------------------ #
    # journal replay / refresh
    # ------------------------------------------------------------------ #
    def _apply(self, record: dict) -> None:
        op = record.get("op")
        seq = record.get("seq")
        if isinstance(seq, int):
            self._seq = max(self._seq, seq)
        tenant = record.get("tenant")
        pid = record.get("pid")
        if op == "set-policy":
            try:
                self._policies[tenant] = RetentionPolicy.from_payload(
                    record.get("policy") or {}
                )
            except CorpusError:
                pass  # a bad historical policy record must not kill replay
        elif op in ("intent-ingest", "intent-compact"):
            if isinstance(pid, str):
                self._pending[pid] = record
        elif op == "abort":
            self._pending.pop(pid, None)
        elif op in ("commit-profile", "commit-compact"):
            self._pending.pop(pid, None)
            try:
                entry = ProfileEntry.from_record(record)
            except (KeyError, TypeError, ValueError):
                return  # malformed commit: safer to skip than to invent
            bucket = self._entries.setdefault(entry.tenant, {})
            bucket[entry.pid] = entry
            for src in entry.sources:
                bucket.pop(src, None)
        elif op == "delete-profile":
            self._entries.get(tenant, {}).pop(pid, None)
        # unknown ops are skipped: a newer writer's records must not
        # turn into phantom entries here

    def _refresh_locked(self) -> None:
        replay = self._journal.replay(self._offset)
        for record in replay.records:
            self._apply(record)
        self._offset = replay.valid_end

    def refresh(self) -> None:
        """Replay records appended by other processes since last look."""
        with self._mu:
            self._refresh_locked()

    def _append_locked(self, op: str, **fields) -> dict:
        record = {"op": op, "seq": self._seq + 1, **fields}
        self._offset += self._journal.append(record)
        self._apply(record)
        return record

    @contextmanager
    def _exclusive(self) -> Iterator[None]:
        if self._closed:
            raise CorpusError("corpus catalog is closed")
        with self._mu:
            with self._journal.locked():
                self._refresh_locked()
                yield

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> dict:
        """Replay the journal and repair every interrupted transition.

        Returns a small report (counts of truncated bytes, resumed
        commits, aborted intents, reaped staging dirs / orphan files).
        Safe to call any time; holds the journal lock throughout.
        """
        report = {
            "truncated_bytes": 0,
            "resumed": 0,
            "aborted": 0,
            "staging_reaped": 0,
            "orphans_reaped": 0,
        }
        with self._mu, self._journal.locked():
            # state may predate a prior partial replay; rebuild from zero
            self._entries.clear()
            self._policies.clear()
            self._pending.clear()
            self._seq = 0
            self._offset = 0
            replay = self._journal.replay(0)
            if replay.torn:
                report["truncated_bytes"] = replay.total - replay.valid_end
                self._journal.truncate(replay.valid_end)
            for record in replay.records:
                self._apply(record)
            self._offset = replay.valid_end
            for pid, intent in sorted(self._pending.items()):
                if self._resume_intent_locked(intent):
                    report["resumed"] += 1
                else:
                    report["aborted"] += 1
            report["staging_reaped"] = self._reap_staging_locked()
            report["orphans_reaped"] = self._reap_orphans_locked()
        return report

    def _resume_intent_locked(self, intent: dict) -> bool:
        """Finish or abort one interrupted ingest/compaction.

        True → the final payload landed intact before the crash, so the
        missing commit record is appended (the profile was *promised*
        by rename; recovery keeps the promise).  False → the payload
        never made it; the intent is aborted and staging reclaimed.
        """
        tenant, pid = intent["tenant"], intent["pid"]
        kind = intent.get("kind", "rpdb")
        final = os.path.join(self._profiles_dir(tenant), f"{pid}.{kind}")
        ok = False
        if intent["op"] == "intent-ingest" and os.path.isfile(final):
            size, crc = _file_crc(final)
            ok = size == intent.get("bytes") and crc == intent.get("checksum")
        elif intent["op"] == "intent-compact" and os.path.isdir(final):
            ok = self._store_intact(final)
        if ok:
            if intent["op"] == "intent-ingest":
                self._append_locked(
                    "commit-profile",
                    tenant=tenant, pid=pid, kind=kind,
                    name=intent.get("name", pid),
                    group=intent.get("group"),
                    meta=intent.get("meta") or {},
                    bytes=intent.get("bytes", 0),
                    checksum=intent.get("checksum", 0),
                    created_at=self._clock(),
                )
            else:
                files = _tree_manifest(final)
                self._append_locked(
                    "commit-compact",
                    tenant=tenant, pid=pid, kind=kind,
                    name=intent.get("name", pid),
                    group=intent.get("group"),
                    meta=intent.get("meta") or {},
                    bytes=sum(s for s, _ in files.values()),
                    checksum=0, files=files,
                    sources=intent.get("sources") or [],
                    created_at=self._clock(),
                )
        else:
            self._append_locked("abort", tenant=tenant, pid=pid)
        staging = intent.get("staging")
        if staging:
            shutil.rmtree(self._staging_dir(staging), ignore_errors=True)
        return ok

    @staticmethod
    def _store_intact(path: str) -> bool:
        from repro.core.store import is_store_path, open_store

        if not is_store_path(path):
            return False
        try:
            exp = open_store(path)
        except (DatabaseError, OSError):
            return False
        exp.close()
        return True

    def _reap_staging_locked(self) -> int:
        """Remove staging dirs whose owning process is gone.

        Directory names are ``<ospid>-<pid>``, so a sibling worker's
        in-flight upload (live ospid) survives; anything else is debris
        from a crash.  Pending intents were already resolved, and
        resolution removed their staging — whatever remains with a dead
        owner is unreferenced.
        """
        reaped = 0
        staging_root = os.path.join(self.root, "staging")
        try:
            names = os.listdir(staging_root)
        except FileNotFoundError:
            return 0
        for name in names:
            ospid_s, _, _token = name.partition("-")
            try:
                ospid = int(ospid_s)
            except ValueError:
                ospid = -1
            if ospid > 0 and ospid != os.getpid() and _pid_alive(ospid):
                continue
            shutil.rmtree(os.path.join(staging_root, name), ignore_errors=True)
            reaped += 1
        return reaped

    def _reap_orphans_locked(self) -> int:
        """Remove final-path payloads with no committed entry.

        These exist in exactly two crash windows: after a
        ``delete-profile`` record but before its unlink, and after a
        ``commit-compact`` record but before the source unlinks.  In
        both, the journal has already spoken — the file is dead.
        """
        reaped = 0
        pending_paths = {
            os.path.join(
                self._profiles_dir(i["tenant"]), f'{i["pid"]}.{i.get("kind", "rpdb")}'
            )
            for i in self._pending.values()
        }
        tenants_root = os.path.join(self.root, "tenants")
        try:
            tenants = os.listdir(tenants_root)
        except FileNotFoundError:
            return 0
        for tenant in tenants:
            profiles = self._profiles_dir(tenant)
            try:
                names = os.listdir(profiles)
            except FileNotFoundError:
                continue
            live = {
                e.filename for e in self._entries.get(tenant, {}).values()
            }
            for name in names:
                full = os.path.join(profiles, name)
                if name in live or full in pending_paths:
                    continue
                if os.path.isdir(full):
                    shutil.rmtree(full, ignore_errors=True)
                else:
                    try:
                        os.unlink(full)
                    except OSError:
                        continue
                reaped += 1
        return reaped

    # ------------------------------------------------------------------ #
    # validation helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_tenant(tenant: str) -> str:
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            raise CorpusError(f"invalid tenant name: {tenant!r}")
        return tenant

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not name or len(name) > 200:
            raise CorpusError(f"invalid profile name: {name!r}")
        if any(ord(c) < 0x20 for c in name):
            raise CorpusError("profile name contains control characters")
        return name

    @staticmethod
    def _check_group(group: str | None) -> str | None:
        if group is None:
            return None
        if not isinstance(group, str) or not _TENANT_RE.match(group):
            raise CorpusError(f"invalid group tag: {group!r}")
        return group

    @staticmethod
    def _check_meta(meta: dict | None) -> dict:
        if meta is None:
            return {}
        if not isinstance(meta, dict) or len(meta) > 32:
            raise CorpusError("meta must be an object with at most 32 keys")
        for key, value in meta.items():
            if not isinstance(key, str) or not key or len(key) > 64:
                raise CorpusError(f"invalid meta key: {key!r}")
            if not isinstance(value, (str, int, float, bool)) or (
                isinstance(value, str) and len(value) > 512
            ):
                raise CorpusError(f"meta[{key!r}] must be a short scalar")
        return dict(meta)

    def _validated_payload(self, data: bytes, salvage: bool) -> bytes:
        """Upload admission: the PR 3 salvage loader is the gatekeeper.

        A clean database passes through byte-identical.  A corrupt one
        is refused (strict default) or — with *salvage* — re-serialized
        from whatever the salvage loader recovered, so the corpus never
        stores torn payload bytes.
        """
        from repro.hpcprof import binio, recovery

        if data[:4] != b"RPDB":
            # XML uploads are normalized to the framed v2 binary form
            from repro.hpcprof import database as db

            exp = db.loads(data, origin="<upload>")
            return binio.dumps_binary(exp)
        report = recovery.probe_bytes(data, origin="<upload>")
        if report.clean:
            return data
        if not salvage:
            raise DatabaseError(
                f"upload failed validation ({report.summary()}); "
                "pass salvage=true to ingest the recovered prefix"
            )
        exp = recovery.salvage_loads(data, origin="<upload>")
        return binio.dumps_binary(exp)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def ingest_bytes(
        self,
        tenant: str,
        data: bytes,
        *,
        name: str,
        group: str | None = None,
        meta: dict | None = None,
        salvage: bool = False,
        validate: bool = True,
    ) -> ProfileEntry:
        """Ingest one uploaded ``.rpdb`` payload; returns its entry.

        Follows the staged/journaled/renamed/committed protocol from the
        module docstring; on return the profile is durable and listed.
        Retention is enforced for the tenant afterwards, so a quota'd
        tenant converges immediately rather than at the next sweep.
        """
        self._check_tenant(tenant)
        self._check_name(name)
        group = self._check_group(group)
        meta = self._check_meta(meta)
        if not isinstance(data, (bytes, bytearray)):
            raise CorpusError("upload payload must be bytes")
        if validate:
            data = self._validated_payload(bytes(data), salvage)
        with self._exclusive():
            entry = self._ingest_locked(tenant, bytes(data), name, group, meta)
            self._enforce_locked(tenant)
        return entry

    def ingest_file(
        self,
        tenant: str,
        path: str,
        *,
        name: str | None = None,
        group: str | None = None,
        meta: dict | None = None,
        salvage: bool = False,
        validate: bool = True,
    ) -> ProfileEntry:
        """Server-side ingest of an existing database file or store dir."""
        if os.path.isdir(path):
            return self._ingest_store(
                tenant, path,
                name=name or os.path.basename(path.rstrip("/")),
                group=group, meta=meta, validate=validate,
            )
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise CorpusError(f"cannot read upload {path}: {exc}") from None
        return self.ingest_bytes(
            tenant, data,
            name=name or os.path.basename(path),
            group=group, meta=meta, salvage=salvage, validate=validate,
        )

    def _ingest_locked(
        self, tenant: str, data: bytes, name: str,
        group: str | None, meta: dict,
    ) -> ProfileEntry:
        pid = f"p{self._seq + 1:06d}"
        token = f"{os.getpid()}-{pid}"
        sdir = self._staging_dir(token)
        os.makedirs(sdir, exist_ok=True)
        spath = os.path.join(sdir, f"{pid}.rpdb")
        with open(spath, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(sdir)
        crash_point("corpus.ingest.staged")
        checksum = zlib.crc32(data) & 0xFFFFFFFF
        self._append_locked(
            "intent-ingest",
            tenant=tenant, pid=pid, kind="rpdb", staging=token,
            name=name, group=group, meta=meta,
            bytes=len(data), checksum=checksum,
        )
        crash_point("corpus.ingest.intent")
        profiles = self._profiles_dir(tenant)
        os.makedirs(profiles, exist_ok=True)
        final = os.path.join(profiles, f"{pid}.rpdb")
        os.rename(spath, final)
        _fsync_dir(profiles)
        crash_point("corpus.ingest.renamed")
        self._append_locked(
            "commit-profile",
            tenant=tenant, pid=pid, kind="rpdb",
            name=name, group=group, meta=meta,
            bytes=len(data), checksum=checksum,
            created_at=self._clock(),
        )
        crash_point("corpus.ingest.committed")
        shutil.rmtree(sdir, ignore_errors=True)
        return self._entries[tenant][pid]

    def _ingest_store(
        self, tenant: str, path: str, *,
        name: str, group: str | None, meta: dict | None,
        validate: bool,
    ) -> ProfileEntry:
        self._check_tenant(tenant)
        self._check_name(name)
        group = self._check_group(group)
        meta = self._check_meta(meta)
        if validate and not self._store_intact(path):
            raise DatabaseError(f"not a loadable .rpstore directory: {path}")
        with self._exclusive():
            pid = f"p{self._seq + 1:06d}"
            token = f"{os.getpid()}-{pid}"
            sdir = self._staging_dir(token)
            staged = os.path.join(sdir, f"{pid}.rpstore")
            shutil.copytree(path, staged)
            _fsync_tree(staged)
            _fsync_dir(sdir)
            crash_point("corpus.ingest.staged")
            files = _tree_manifest(staged)
            nbytes = sum(size for size, _crc in files.values())
            self._append_locked(
                "intent-compact",  # same resume rule: a store payload
                tenant=tenant, pid=pid, kind="rpstore", staging=token,
                name=name, group=group, meta=meta, sources=[],
            )
            crash_point("corpus.ingest.intent")
            profiles = self._profiles_dir(tenant)
            os.makedirs(profiles, exist_ok=True)
            final = os.path.join(profiles, f"{pid}.rpstore")
            os.rename(staged, final)
            _fsync_dir(profiles)
            crash_point("corpus.ingest.renamed")
            self._append_locked(
                "commit-compact",
                tenant=tenant, pid=pid, kind="rpstore",
                name=name, group=group, meta=meta,
                bytes=nbytes, checksum=0, files=files, sources=[],
                created_at=self._clock(),
            )
            crash_point("corpus.ingest.committed")
            shutil.rmtree(sdir, ignore_errors=True)
            entry = self._entries[tenant][pid]
            self._enforce_locked(tenant)
        return entry

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def compactable_groups(
        self, tenant: str, min_sources: int = 2
    ) -> dict[str, list[str]]:
        """Groups with enough single-file members to be worth merging."""
        self.refresh()
        with self._mu:
            groups: dict[str, list[str]] = {}
            for pid, entry in sorted(self._entries.get(tenant, {}).items()):
                if entry.kind == "rpdb" and entry.group:
                    groups.setdefault(entry.group, []).append(pid)
            return {g: pids for g, pids in groups.items() if len(pids) >= min_sources}

    def compact_group(
        self,
        tenant: str,
        group: str,
        *,
        min_sources: int = 2,
        working_set_bytes: int | None = None,
    ) -> ProfileEntry | None:
        """Merge a group's ``.rpdb`` members into one ``.rpstore``.

        The sources stay committed — listed, openable, diffable — until
        the merged store's commit record lands; only then are their
        files unlinked (their catalog entries fall out of the same
        ``commit-compact`` record, atomically).  Interrupted at any
        point, the next call (or :meth:`recover`) converges: the merge
        restarts from the unchanged sources, or the landed store is
        committed as-is.  Returns ``None`` when the group is too small.
        """
        from repro.hpcprof.merge import merge_rank_files

        self._check_tenant(tenant)
        group = self._check_group(group)
        if group is None:
            raise CorpusError("compaction needs a group tag")
        with self._exclusive():
            bucket = self._entries.get(tenant, {})
            sources = sorted(
                pid for pid, e in bucket.items()
                if e.kind == "rpdb" and e.group == group
            )
            if len(sources) < min_sources:
                return None
            if any(self._pinned_locked(tenant, pid) for pid in sources):
                raise ProfilePinned(
                    f"group {group!r} has members pinned by open sessions"
                )
            pid = f"p{self._seq + 1:06d}"
            token = f"{os.getpid()}-{pid}"
            sdir = self._staging_dir(token)
            os.makedirs(sdir, exist_ok=True)
            self._append_locked(
                "intent-compact",
                tenant=tenant, pid=pid, kind="rpstore", staging=token,
                name=f"{group}.rpstore", group=group,
                meta={"compacted-from": len(sources)}, sources=sources,
            )
            crash_point("corpus.compact.intent")
            staged = os.path.join(sdir, f"{pid}.rpstore")
            paths = [
                os.path.join(self._profiles_dir(tenant), f"{src}.rpdb")
                for src in sources
            ]
            kwargs = {}
            if working_set_bytes is not None:
                kwargs["working_set_bytes"] = working_set_bytes
            merge_rank_files(paths, staged, name=group, overwrite=True, **kwargs)
            _fsync_tree(staged)
            _fsync_dir(sdir)
            crash_point("corpus.compact.merged")
            files = _tree_manifest(staged)
            nbytes = sum(size for size, _crc in files.values())
            profiles = self._profiles_dir(tenant)
            final = os.path.join(profiles, f"{pid}.rpstore")
            os.rename(staged, final)
            _fsync_dir(profiles)
            crash_point("corpus.compact.renamed")
            self._append_locked(
                "commit-compact",
                tenant=tenant, pid=pid, kind="rpstore",
                name=f"{group}.rpstore", group=group,
                meta={"compacted-from": len(sources)},
                bytes=nbytes, checksum=0, files=files, sources=sources,
                created_at=self._clock(),
            )
            crash_point("corpus.compact.committed")
            for path in paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            crash_point("corpus.compact.cleaned")
            shutil.rmtree(sdir, ignore_errors=True)
            return self._entries[tenant][pid]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def tenants(self) -> list[str]:
        self.refresh()
        with self._mu:
            return sorted(t for t, bucket in self._entries.items() if bucket)

    def list(self, tenant: str) -> list[ProfileEntry]:
        self._check_tenant(tenant)
        self.refresh()
        with self._mu:
            return [e for _pid, e in sorted(self._entries.get(tenant, {}).items())]

    def get(self, tenant: str, pid: str) -> ProfileEntry:
        self._check_tenant(tenant)
        self.refresh()
        with self._mu:
            entry = self._entries.get(tenant, {}).get(pid)
        if entry is None:
            raise CorpusError(f"unknown profile {tenant}/{pid}")
        return entry

    def search(
        self,
        tenant: str,
        *,
        name: str | None = None,
        group: str | None = None,
        meta: dict | None = None,
    ) -> list[ProfileEntry]:
        """Committed profiles matching every given criterion.

        *name* is a substring match, *group* exact, *meta* a subset
        match (every given key present with an equal value).
        """
        out = []
        for entry in self.list(tenant):
            if name is not None and name not in entry.name:
                continue
            if group is not None and entry.group != group:
                continue
            if meta and any(entry.meta.get(k) != v for k, v in meta.items()):
                continue
            out.append(entry)
        return out

    def verify(self, tenant: str, pid: str) -> ProfileEntry:
        """Checksum a committed profile; :class:`CorpusCorrupt` if torn."""
        entry = self.get(tenant, pid)
        path = os.path.join(self._profiles_dir(tenant), entry.filename)
        if entry.kind == "rpdb":
            try:
                size, crc = _file_crc(path)
            except OSError as exc:
                raise CorpusCorrupt(
                    f"committed profile {tenant}/{pid} unreadable: {exc}"
                ) from None
            if size != entry.bytes or crc != entry.checksum:
                raise CorpusCorrupt(
                    f"committed profile {tenant}/{pid} fails its checksum "
                    f"(size {size} vs {entry.bytes}, crc {crc:#x} vs "
                    f"{entry.checksum:#x})"
                )
            return entry
        recorded = entry.files or {}
        actual = _tree_manifest(path) if os.path.isdir(path) else None
        if actual != recorded:
            raise CorpusCorrupt(
                f"committed store {tenant}/{pid} does not match its manifest"
            )
        return entry

    def read_bytes(self, tenant: str, pid: str) -> bytes:
        """The verified raw payload of a committed ``.rpdb`` profile."""
        entry = self.verify(tenant, pid)
        if entry.kind != "rpdb":
            raise CorpusError(f"{tenant}/{pid} is a store directory, not a file")
        with open(os.path.join(self._profiles_dir(tenant), entry.filename), "rb") as fh:
            return fh.read()

    def load(self, tenant: str, pid: str, *, salvage: bool = False):
        """Open a committed profile as an experiment (checksum-verified)."""
        from repro.hpcprof import database

        entry = self.verify(tenant, pid)
        path = os.path.join(self._profiles_dir(tenant), entry.filename)
        return database.load(path, strict=not salvage)

    def stats(self) -> dict:
        self.refresh()
        with self._mu:
            tenants = {}
            for tenant, bucket in sorted(self._entries.items()):
                if not bucket:
                    continue
                tenants[tenant] = {
                    "profiles": len(bucket),
                    "bytes": sum(e.bytes for e in bucket.values()),
                    "groups": sorted({e.group for e in bucket.values() if e.group}),
                    "policy": self.policy(tenant).to_payload(),
                }
            return {
                "root": self.root,
                "seq": self._seq,
                "journal_bytes": self._offset,
                "pending": len(self._pending),
                "tenants": tenants,
            }

    # ------------------------------------------------------------------ #
    # pins (open sessions protect profiles from eviction)
    # ------------------------------------------------------------------ #
    def _pin_path(self, tenant: str, pid: str, owner: str) -> str:
        return os.path.join(self._pins_dir(), f"{tenant}@@{pid}@@{owner}.pin")

    def pin(self, tenant: str, pid: str, owner: str, *,
            refresh: bool = False) -> None:
        """Record that *owner* (a session id) holds *tenant*/*pid* open.

        The pin is a file naming this process, so it is visible to every
        pool worker and self-expiring: a pin whose process died is stale
        and reaped on the next scan.

        ``refresh=True`` rewrites an existing pin to name *this*
        process.  A pool worker adopting a crashed sibling's session
        must refresh: the pin on disk still carries the dead worker's
        pid, so without the rewrite the next eviction scan would reap
        it and a quota'd tenant could evict the profile out from under
        the live session.
        """
        self._check_tenant(tenant)
        if not _OWNER_RE.match(owner or ""):
            raise CorpusError(f"invalid pin owner: {owner!r}")
        self.get(tenant, pid)  # must exist
        os.makedirs(self._pins_dir(), exist_ok=True)
        path = self._pin_path(tenant, pid, owner)
        blob = json.dumps({"ospid": os.getpid(), "owner": owner}).encode()
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            if not refresh:
                return  # same owner re-pinning is a no-op
            # atomic rewrite: never leave a moment without a pin file
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
            return
        try:
            os.write(fd, blob)
        finally:
            os.close(fd)

    def unpin(self, tenant: str, pid: str, owner: str) -> None:
        try:
            os.unlink(self._pin_path(tenant, pid, owner))
        except OSError:
            pass

    def release_pins(self, owner: str) -> int:
        """Remove every pin held by *owner*, returning how many.

        Session close in the worker pool needs this: the closing worker
        may have *adopted* the session from the worker that opened the
        profile and never saw the in-memory pin record.  The pin
        filename carries its owner, so any process can release it.
        """
        suffix = f"@@{owner}.pin"
        try:
            names = os.listdir(self._pins_dir())
        except FileNotFoundError:
            return 0
        released = 0
        for name in names:
            if not name.endswith(suffix):
                continue
            try:
                os.unlink(os.path.join(self._pins_dir(), name))
                released += 1
            except OSError:
                pass
        return released

    def _pinned_locked(self, tenant: str, pid: str) -> bool:
        prefix = f"{tenant}@@{pid}@@"
        try:
            names = os.listdir(self._pins_dir())
        except FileNotFoundError:
            return False
        for name in names:
            if not name.startswith(prefix) or not name.endswith(".pin"):
                continue
            full = os.path.join(self._pins_dir(), name)
            try:
                with open(full, "r", encoding="utf-8") as fh:
                    ospid = int(json.load(fh).get("ospid", -1))
            except (OSError, ValueError, AttributeError):
                ospid = -1
            if ospid > 0 and _pid_alive(ospid):
                return True
            try:
                os.unlink(full)  # stale: the pinning process is gone
            except OSError:
                pass
        return False

    def pinned(self, tenant: str, pid: str) -> bool:
        """True while any live process holds this profile open."""
        self._check_tenant(tenant)
        with self._mu:
            return self._pinned_locked(tenant, pid)

    # ------------------------------------------------------------------ #
    # delete / retention
    # ------------------------------------------------------------------ #
    def delete(self, tenant: str, pid: str, *, reason: str = "delete") -> None:
        """Durably remove a committed profile (journal first, then unlink).

        Raises :class:`ProfilePinned` while an open session holds it.
        """
        self._check_tenant(tenant)
        with self._exclusive():
            if pid not in self._entries.get(tenant, {}):
                raise CorpusError(f"unknown profile {tenant}/{pid}")
            if self._pinned_locked(tenant, pid):
                raise ProfilePinned(
                    f"profile {tenant}/{pid} is pinned by an open session"
                )
            self._delete_locked(tenant, pid, reason)

    def _delete_locked(self, tenant: str, pid: str, reason: str) -> None:
        entry = self._entries[tenant][pid]
        self._append_locked(
            "delete-profile", tenant=tenant, pid=pid, reason=reason
        )
        crash_point("corpus.evict.journaled")
        path = os.path.join(self._profiles_dir(tenant), entry.filename)
        if os.path.isdir(path):
            shutil.rmtree(path, ignore_errors=True)
        else:
            try:
                os.unlink(path)
            except OSError:
                pass
        crash_point("corpus.evict.unlinked")

    def set_policy(
        self, tenant: str, policy: RetentionPolicy
    ) -> list[dict]:
        """Durably set a tenant's retention policy and enforce it now.

        Returns what the immediate enforcement evicted (see
        :meth:`enforce_retention`), usually ``[]``.
        """
        self._check_tenant(tenant)
        if not isinstance(policy, RetentionPolicy):
            policy = RetentionPolicy.from_payload(policy)
        with self._exclusive():
            self._append_locked(
                "set-policy", tenant=tenant, pid=None,
                policy=policy.to_payload(),
            )
            return self._enforce_locked(tenant)

    def policy(self, tenant: str) -> RetentionPolicy:
        self._check_tenant(tenant)
        with self._mu:
            return self._policies.get(tenant) or RetentionPolicy()

    def enforce_retention(self, tenant: str | None = None) -> list[dict]:
        """Evict oldest-first until every (or one) tenant fits its policy.

        Pinned profiles are skipped, never evicted — the tenant may
        temporarily exceed its quota while sessions are open.  Returns
        ``[{"tenant", "id", "reason"}, ...]`` for what was evicted.
        """
        with self._exclusive():
            if tenant is not None:
                self._check_tenant(tenant)
                return self._enforce_locked(tenant)
            evicted = []
            for t in sorted(self._entries):
                evicted.extend(self._enforce_locked(t))
            return evicted

    def _enforce_locked(self, tenant: str) -> list[dict]:
        policy = self._policies.get(tenant)
        if policy is None or policy.unlimited:
            return []
        evicted: list[dict] = []
        now = self._clock()

        def _evict(pid: str, reason: str) -> bool:
            if self._pinned_locked(tenant, pid):
                return False
            # resolve the payload path before the entry disappears —
            # callers invalidate path-keyed caches from this record
            path = os.path.join(
                self._profiles_dir(tenant),
                self._entries[tenant][pid].filename,
            )
            self._delete_locked(tenant, pid, reason)
            evicted.append(
                {"tenant": tenant, "id": pid, "reason": reason, "path": path}
            )
            return True

        oldest_first = lambda: sorted(  # noqa: E731 - tiny local helper
            self._entries.get(tenant, {}).values(),
            key=lambda e: (e.created_at, e.pid),
        )
        if policy.ttl_s is not None:
            for entry in oldest_first():
                if now - entry.created_at > policy.ttl_s:
                    _evict(entry.pid, "ttl")
        if policy.max_profiles is not None:
            entries = oldest_first()
            excess = len(entries) - policy.max_profiles
            for entry in entries:
                if excess <= 0:
                    break
                if _evict(entry.pid, "count"):
                    excess -= 1
        if policy.max_bytes is not None:
            entries = oldest_first()
            total = sum(e.bytes for e in entries)
            for entry in entries:
                if total <= policy.max_bytes:
                    break
                if _evict(entry.pid, "quota"):
                    total -= entry.bytes
        return evicted

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "CorpusCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_corpus(
    root: str,
    *,
    create: bool = False,
    recover: bool = True,
) -> CorpusCatalog:
    """Open (or with *create* initialize) a corpus root directory.

    The one-call entry point mirroring :func:`repro.api.open_database`:
    returns a ready :class:`CorpusCatalog` after journal replay and
    crash recovery.  Raises :class:`~repro.errors.CorpusError` for a
    directory that is not a corpus, :class:`~repro.errors.CorpusCorrupt`
    for one damaged beyond the recovery rules.
    """
    return CorpusCatalog(root, create=create, recover=recover)

"""Supervised background compaction of grouped single-rank uploads.

Tenants tag related uploads with a ``group`` (one profile per MPI rank,
say); the :class:`CompactionWorker` periodically sweeps every tenant and
merges each group with enough members into one out-of-core ``.rpstore``
via :func:`repro.hpcprof.merge.merge_rank_files`.  The durability story
lives entirely in :meth:`CorpusCatalog.compact_group
<repro.corpus.catalog.CorpusCatalog.compact_group>` — sources stay
committed until the merged store's commit record lands, and a merge
interrupted by a crash restarts idempotently — so the worker itself is
deliberately dumb: sweep, merge, count, repeat.  "Supervised" means a
failing merge (corrupt member, pinned source, disk full) is recorded
and skipped, never allowed to kill the sweep loop.
"""

from __future__ import annotations

import threading

from repro.errors import ReproError

from .catalog import CorpusCatalog

__all__ = ["CompactionWorker"]


class CompactionWorker:
    """Periodic group-compaction sweeps over one catalog.

    ``start()`` runs sweeps on a daemon thread every *interval_s*;
    ``run_once()`` performs a single synchronous sweep (what the CLI and
    the deterministic tests call).  Counters in :attr:`stats` make the
    worker observable from ``/v1/corpus``.
    """

    def __init__(
        self,
        catalog: CorpusCatalog,
        *,
        interval_s: float = 5.0,
        min_sources: int = 2,
        working_set_bytes: int | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.catalog = catalog
        self.interval_s = float(interval_s)
        self.min_sources = int(min_sources)
        self.working_set_bytes = working_set_bytes
        self.stats = {"sweeps": 0, "compacted": 0, "errors": 0}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._mu = threading.Lock()

    def run_once(self) -> list:
        """One sweep: compact every eligible group; the new entries."""
        compacted = []
        with self._mu:
            self.stats["sweeps"] += 1
            for tenant in self.catalog.tenants():
                groups = self.catalog.compactable_groups(
                    tenant, min_sources=self.min_sources
                )
                for group in sorted(groups):
                    try:
                        entry = self.catalog.compact_group(
                            tenant, group,
                            min_sources=self.min_sources,
                            working_set_bytes=self.working_set_bytes,
                        )
                    except ReproError:
                        # pinned members, a corrupt source, disk trouble:
                        # skip this group, keep sweeping — the catalog
                        # protocol guarantees nothing was half-applied
                        self.stats["errors"] += 1
                        continue
                    if entry is not None:
                        self.stats["compacted"] += 1
                        compacted.append(entry)
        return compacted

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run_once()
            except Exception:
                # supervision of last resort: the sweep thread survives
                # even what run_once's own handling did not anticipate
                self.stats["errors"] += 1

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="corpus-compaction", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

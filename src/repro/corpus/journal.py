"""The corpus catalog journal: CRC32-framed, append-only, replayable.

Every catalog state transition (ingest intent, profile commit, delete,
compaction intent/commit, policy change) is one JSON record appended to
``journal.rjl`` before the transition is considered to have happened.
Records are framed the same way the v2 ``.rpdb`` format frames sections:

    +----+----------------+------------------+------------------+
    | RJ | payload length | JSON payload     | CRC32(payload)   |
    | 2B | uint32 LE      | UTF-8, canonical | uint32 LE        |
    +----+----------------+------------------+------------------+

The framing gives the journal the property the whole corpus leans on:
**the longest valid prefix is always a consistent catalog**.  A torn
tail — a record cut mid-write by ``kill -9`` or a full disk — fails the
magic, length, CRC, or JSON check and replay simply stops there; a
writer holding the journal lock then truncates the tail before
appending.  Readers in other pool workers replay the same prefix
without truncating (the tail they see may be an append in progress).

Appends are a single ``O_APPEND`` write followed by ``fsync``, so a
record is either fully durable or invisible; cross-process mutual
exclusion is an advisory ``flock`` on a sibling ``journal.lock`` file
(the journal itself is never the lock target, so truncation can swap
the fd freely).
"""

from __future__ import annotations

import fcntl
import json
import os
import struct
import zlib
from contextlib import contextmanager
from typing import Iterator

from repro.errors import CorpusError

__all__ = [
    "JOURNAL_NAME",
    "LOCK_NAME",
    "MAGIC",
    "MAX_PAYLOAD",
    "Journal",
    "Replay",
    "encode_record",
    "scan_records",
]

JOURNAL_NAME = "journal.rjl"
LOCK_NAME = "journal.lock"
MAGIC = b"RJ"

_HEADER = struct.Struct("<2sI")
_TRAILER = struct.Struct("<I")

#: sanity bound on a single record; a length field corrupted upward
#: past this is rejected without attempting a giant read
MAX_PAYLOAD = 1 << 20


def encode_record(record: dict) -> bytes:
    """*record* as one framed journal entry (canonical JSON payload)."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_PAYLOAD:
        raise CorpusError(
            f"journal record too large ({len(payload)} bytes > {MAX_PAYLOAD})"
        )
    return (
        _HEADER.pack(MAGIC, len(payload))
        + payload
        + _TRAILER.pack(zlib.crc32(payload) & 0xFFFFFFFF)
    )


def scan_records(data: bytes, start: int = 0) -> Iterator[tuple[int, dict]]:
    """Yield ``(end_offset, record)`` for each valid record from *start*.

    Stops silently at the first frame that fails any check (bad magic,
    implausible length, short tail, CRC mismatch, non-dict or unparsable
    JSON) — by construction everything before that point is the
    committed prefix and everything after it is noise.
    """
    offset = max(0, start)
    total = len(data)
    while True:
        if offset + _HEADER.size > total:
            return
        magic, length = _HEADER.unpack_from(data, offset)
        if magic != MAGIC or length > MAX_PAYLOAD:
            return
        body_end = offset + _HEADER.size + length
        end = body_end + _TRAILER.size
        if end > total:
            return
        payload = data[offset + _HEADER.size : body_end]
        (crc,) = _TRAILER.unpack_from(data, body_end)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return
        if not isinstance(record, dict):
            return
        yield end, record
        offset = end


class Replay:
    """The result of replaying a journal: records plus tail accounting."""

    def __init__(self, records: list[dict], valid_end: int, total: int) -> None:
        self.records = records
        #: byte offset just past the last valid record
        self.valid_end = valid_end
        #: size of the journal file when read
        self.total = total

    @property
    def torn(self) -> bool:
        """True when bytes past the committed prefix exist on disk."""
        return self.valid_end < self.total


class Journal:
    """One corpus journal file plus its advisory cross-process lock."""

    def __init__(self, directory: str) -> None:
        self.path = os.path.join(directory, JOURNAL_NAME)
        self.lock_path = os.path.join(directory, LOCK_NAME)

    @contextmanager
    def locked(self) -> Iterator[None]:
        """Exclusive advisory lock over every catalog mutation.

        ``flock`` on a sibling file, not the journal itself, so holders
        may truncate or reopen the journal fd freely.  Reentrant use is
        not needed — the catalog serializes in-process with its own
        ``threading.Lock`` before taking this one.
        """
        fd = os.open(self.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing releases the flock

    def append(self, record: dict) -> int:
        """Durably append one record (single write + fsync); its size.

        Callers must hold :meth:`locked`; the ``O_APPEND`` single-write
        discipline additionally keeps records from interleaving even if
        they do not.
        """
        blob = encode_record(record)
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, blob)
            os.fsync(fd)
        finally:
            os.close(fd)
        return len(blob)

    def read_bytes(self) -> bytes:
        try:
            with open(self.path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def replay(self, start: int = 0) -> Replay:
        """Replay the committed prefix (all valid records from *start*)."""
        data = self.read_bytes()
        records: list[dict] = []
        valid_end = start
        for end, record in scan_records(data, start):
            records.append(record)
            valid_end = end
        return Replay(records, valid_end, len(data))

    def truncate(self, valid_end: int) -> None:
        """Drop a torn tail: cut the journal to *valid_end* bytes.

        Only the recovery path calls this, under :meth:`locked` — a
        reader must never truncate, because the "torn" bytes it sees may
        be another worker's append in progress.
        """
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            os.ftruncate(fd, valid_end)
            os.fsync(fd)
        finally:
            os.close(fd)

"""Per-tenant retention policy: byte quota, profile count, TTL.

A :class:`RetentionPolicy` is a durable catalog fact — set through a
``set-policy`` journal record, replayed on open like every other state
transition — not server configuration.  Enforcement is deliberately
separate from the policy itself: :meth:`CorpusCatalog.enforce_retention
<repro.corpus.catalog.CorpusCatalog.enforce_retention>` walks committed
profiles oldest-first and evicts until the tenant fits, *skipping* any
profile pinned by an open session (a pin defers eviction, it never
fails it — quota pressure must not take down a live analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorpusError

__all__ = ["RetentionPolicy"]


@dataclass(frozen=True)
class RetentionPolicy:
    """Limits applied to one tenant's committed profiles.

    ``None`` disables a limit; the default policy disables all three.

    * ``max_bytes`` — total committed payload bytes per tenant;
    * ``max_profiles`` — number of committed profiles per tenant;
    * ``ttl_s`` — seconds after commit at which a profile expires.
    """

    max_bytes: int | None = None
    max_profiles: int | None = None
    ttl_s: float | None = None

    def __post_init__(self) -> None:
        for field, lo in (("max_bytes", 1), ("max_profiles", 1), ("ttl_s", 0)):
            value = getattr(self, field)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise CorpusError(f"retention {field} must be a number, got {value!r}")
            if value < lo:
                raise CorpusError(f"retention {field} must be >= {lo}, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return self.max_bytes is None and self.max_profiles is None and self.ttl_s is None

    def to_payload(self) -> dict:
        return {
            "max_bytes": self.max_bytes,
            "max_profiles": self.max_profiles,
            "ttl_s": self.ttl_s,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RetentionPolicy":
        if not isinstance(payload, dict):
            raise CorpusError(f"retention policy must be an object, got {payload!r}")
        unknown = set(payload) - {"max_bytes", "max_profiles", "ttl_s"}
        if unknown:
            raise CorpusError(f"unknown retention field(s): {sorted(unknown)}")
        max_bytes = payload.get("max_bytes")
        max_profiles = payload.get("max_profiles")
        if max_bytes is not None:
            max_bytes = int(max_bytes)
        if max_profiles is not None:
            max_profiles = int(max_profiles)
        ttl = payload.get("ttl_s")
        return cls(
            max_bytes=max_bytes,
            max_profiles=max_profiles,
            ttl_s=float(ttl) if ttl is not None else None,
        )

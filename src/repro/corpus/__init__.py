"""Crash-safe multi-tenant profile corpus: catalog, journal, retention.

The durable substrate under the analysis server: tenants upload
``.rpdb`` profiles, the catalog journals every state transition
(CRC32-framed, append-only, replayed on open), grouped uploads compact
into out-of-core ``.rpstore`` directories in the background, and
per-tenant retention policies evict oldest-first — never a profile an
open session has pinned.  See ``docs/corpus.md`` for the on-disk layout
and the crash-recovery guarantees, and ``tests/corpus/`` for the
kill-anywhere battery that enforces them.
"""

from .catalog import (
    CRASH_POINTS,
    CorpusCatalog,
    ProfileEntry,
    open_corpus,
)
from .compact import CompactionWorker
from .journal import Journal, Replay, encode_record, scan_records
from .retention import RetentionPolicy

__all__ = [
    "CRASH_POINTS",
    "CompactionWorker",
    "CorpusCatalog",
    "Journal",
    "ProfileEntry",
    "Replay",
    "RetentionPolicy",
    "encode_record",
    "open_corpus",
    "scan_records",
]

"""Legacy entry points re-routed through the query engine.

``core.search.search`` and ``core.filters.FilterSet`` predate
``repro.query``; both are now thin shims over this module, which keeps
their exact observable behavior — walk order, node budgets, match
semantics, ranking ties, splice order — while doing the heavy lifting
with the query engine's kernels:

* name matching runs once over the deduplicated name vocabulary
  instead of per node;
* metric reads go through :meth:`View.gather_columns` (engine
  fancy-gather) instead of per-node dict lookups.

The shim-identity test (``tests/test_query_shims.py``) pins both
functions bit-for-bit against frozen copies of the original per-node
implementations.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import MetricFlavor, MetricSpec
from repro.errors import ViewError
from repro.query.engine import ViewFrame

__all__ = ["filter_children", "filter_forest", "search_view"]


# --------------------------------------------------------------------- #
# search
# --------------------------------------------------------------------- #
def search_view(view, pattern, spec=None, categories=(), limit=50,
                max_nodes=200_000):
    """The legacy ``core.search.search`` algorithm on query kernels.

    Returns ``(node, value, share, path)`` tuples in the legacy result
    order (stable sort on descending value, first *limit* kept); the
    shim wraps them in ``SearchHit``.
    """
    if not pattern:
        raise ViewError("empty search pattern")
    if limit < 1:
        raise ViewError(f"limit must be >= 1, got {limit}")
    spec = spec or MetricSpec(0, MetricFlavor.INCLUSIVE)
    total = view.total(MetricSpec(spec.mid, MetricFlavor.INCLUSIVE))

    frame = ViewFrame(view, max_nodes=max_nodes)
    mask = frame.name_mask(pattern)
    if categories:
        wanted = tuple(
            c.value if hasattr(c, "value") else str(c) for c in categories
        )
        mask = mask & frame.category_mask(wanted)
    rows = np.flatnonzero(mask)  # preorder == the legacy append order
    if not len(rows):
        return []
    nodes = [frame.nodes[r] for r in rows]
    values = view.gather_columns(nodes, [spec])[:, 0]
    order = np.argsort(-values, kind="stable")[:limit]
    out = []
    for i in order:
        value = float(values[i])
        out.append((
            nodes[i],
            value,
            (value / total) if total else 0.0,
            frame.path(rows[i]),
        ))
    return out


# --------------------------------------------------------------------- #
# filters
# --------------------------------------------------------------------- #
def _wave_actions(scope_filters, nodes, actions):
    """Assign each node its first-matching filter action (batched).

    One vocabulary pass per distinct name per wave replaces the legacy
    per-node ``fnmatchcase`` calls; first filter wins, like
    ``FilterSet._action_for``.
    """
    import fnmatch
    import re

    names = np.array([n.name for n in nodes], dtype=object)
    uniq, inv = np.unique(names, return_inverse=True)
    assigned = np.zeros(len(nodes), dtype=bool)
    for filt in scope_filters:
        compiled = re.compile(fnmatch.translate(filt.pattern))
        hits = np.fromiter(
            (compiled.match(name) is not None for name in uniq),
            dtype=bool, count=len(uniq),
        )
        mask = hits[inv]
        if filt.categories:
            cats = set(filt.categories)
            in_cat = np.fromiter(
                (n.category in cats for n in nodes),
                dtype=bool, count=len(nodes),
            )
            mask = mask & in_cat
        fresh = mask & ~assigned
        for i in np.flatnonzero(fresh):
            actions[id(nodes[i])] = filt.action
        assigned |= fresh


def _resolve_filters(fset, view, roots):
    """(actions, threshold_ok) for the legacy visitation closure.

    Visits exactly the nodes ``FilterSet._visit`` would reach from
    *roots* — the closure under "children of elided nodes" — wave by
    wave, batching the name matching and the threshold metric gather.
    """
    from repro.core.filters import FilterAction

    actions: dict[int, object] = {}
    kept: list = []
    wave = list(roots)
    while wave:
        if fset.scope_filters:
            _wave_actions(fset.scope_filters, wave, actions)
        next_wave: list = []
        for node in wave:
            action = actions.get(id(node))
            if action is FilterAction.ELIDE:
                next_wave.extend(node.children)
            elif action is None:
                kept.append(node)
        wave = next_wave

    threshold_ok: dict[int, bool] = {}
    threshold = fset.threshold
    if threshold is not None and kept:
        total = view.total(threshold.spec)
        if total != 0.0:
            incl = MetricSpec(threshold.spec.mid, MetricFlavor.INCLUSIVE)
            values = view.gather_columns(kept, [incl])[:, 0]
            floor = threshold.min_share * total
            for node, value in zip(kept, values):
                threshold_ok[id(node)] = bool(value >= floor)
    return actions, threshold_ok


def _emit(node, actions, threshold_ok):
    """The legacy ``_visit`` splice, on precomputed decisions."""
    from repro.core.filters import FilterAction

    action = actions.get(id(node))
    if action is FilterAction.PRUNE:
        return []
    if action is FilterAction.ELIDE:
        spliced = []
        for child in node.children:
            spliced.extend(_emit(child, actions, threshold_ok))
        return spliced
    if not threshold_ok.get(id(node), True):
        return []
    return [node]


def filter_forest(fset, view, roots=None):
    """``FilterSet.apply`` through the query engine's batched kernels."""
    rows = list(view.roots if roots is None else roots)
    actions, threshold_ok = _resolve_filters(fset, view, rows)
    out = []
    for row in rows:
        out.extend(_emit(row, actions, threshold_ok))
    return out


def filter_children(fset, view, node):
    """``FilterSet.children_of`` through the same machinery."""
    return filter_forest(fset, view, list(node.children))

"""Vectorized query evaluation over the columnar MetricEngine.

Everything on the hot path here is a numpy kernel over whole-tree
arrays — there is no per-node Python loop between "query parsed" and
"result materialized":

* **name masks** — scope names are deduplicated once per frame
  (``np.unique`` + inverse codes); a glob is matched against the small
  vocabulary and broadcast back through the codes;
* **category masks** — small-int code comparison over the engine's
  ``kinds`` (or the view's category codes);
* **metric predicates** — elementwise comparisons on engine matrix
  columns, with derived formulas evaluated vectorized over columns by
  the same AST :mod:`repro.core.derived` parses (division by zero and
  domain guards mirror the scalar evaluator element by element);
* **path matching** — a reachability sweep over the pattern: a normal
  step ANDs its mask with the parent-gathered reach of the previous
  step; a ``**`` gap turns the previous reach into a subtree cover via
  a difference-array cumsum over the engine's preorder extents
  (``subtree_end``), so ``A / ** / B`` costs two vector ops, not a
  graph search;
* **prune / squash** — the same subtree-cover kernel, negated, and a
  per-depth-level nearest-selected-ancestor sweep (O(depth) vector
  ops, the engine's level-order trick).

Two frame adapters feed those kernels: :class:`EngineFrame` sits
directly on a :class:`~repro.core.engine.MetricEngine` (in-memory,
``.rpdb``-loaded, and mmap ``.rpstore`` experiments all share it — the
matrices are the backend-uniformity guarantee), and :class:`ViewFrame`
adapts a presentation view (callers/flat aggregations, derived-metric
cells) for the legacy ``search``/``filters``/``advisor`` shims.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import replace

import numpy as np

from repro.core.derived import (
    BinaryOp,
    Col,
    Func,
    Num,
    UnaryOp,
    parse_formula,
)
from repro.core.engine import (
    KIND_CALL_SITE,
    KIND_FRAME,
    KIND_LOOP,
    KIND_ROOT,
    KIND_STATEMENT,
)
from repro.core.metrics import MetricFlavor, MetricKind, MetricSpec
from repro.errors import QueryError
from repro.query.lang import ANY_DEPTH, MetricPred, Query, Step
from repro.query.result import QueryResult

__all__ = ["EngineFrame", "ViewFrame", "build_frame", "run_query"]

#: engine kind code -> query category string (CCT-level vocabulary)
_KIND_CATEGORY = {
    KIND_ROOT: "root",
    KIND_FRAME: "frame",
    KIND_CALL_SITE: "call-site",
    KIND_LOOP: "loop",
    KIND_STATEMENT: "statement",
}

_FLAVOR_TAG = {"raw": "(R)", "inclusive": "(I)", "exclusive": "(E)"}

#: default node budget when walking a presentation view into a frame
DEFAULT_VIEW_NODES = 200_000


# --------------------------------------------------------------------- #
# vectorized derived-metric formulas
# --------------------------------------------------------------------- #
def _eval_formula_vector(expr, resolver) -> np.ndarray:
    """Evaluate a derived formula over whole columns.

    Mirrors :func:`repro.core.derived._eval` element by element —
    guarded division, ``^`` overflow to 0, and the same domain guards
    on ``sqrt``/``log`` — so a vectorized cell equals the scalar
    evaluator's cell bit for bit.
    """
    if isinstance(expr, Num):
        return expr.value  # scalars broadcast
    if isinstance(expr, Col):
        return resolver(expr.mid)
    if isinstance(expr, UnaryOp):
        return -_eval_formula_vector(expr.operand, resolver)
    if isinstance(expr, BinaryOp):
        left = _eval_formula_vector(expr.left, resolver)
        right = _eval_formula_vector(expr.right, resolver)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            right = np.asarray(right, dtype=np.float64)
            safe = np.where(right == 0.0, 1.0, right)
            out = np.asarray(left, dtype=np.float64) / safe
            return np.where(right == 0.0, 0.0, out)
        if expr.op == "^":
            with np.errstate(over="ignore", invalid="ignore"):
                out = np.asarray(
                    np.power(np.asarray(left, dtype=np.float64), right),
                    dtype=np.float64,
                )
            return np.where(np.isfinite(out), out, 0.0)
    if isinstance(expr, Func):
        args = [_eval_formula_vector(a, resolver) for a in expr.args]
        name = expr.name
        if name == "abs":
            return np.abs(args[0])
        if name == "sqrt":
            x = np.asarray(args[0], dtype=np.float64)
            return np.where(x >= 0.0, np.sqrt(np.maximum(x, 0.0)), 0.0)
        if name in ("log", "log2", "log10"):
            x = np.asarray(args[0], dtype=np.float64)
            fn = {"log": np.log, "log2": np.log2, "log10": np.log10}[name]
            with np.errstate(divide="ignore", invalid="ignore"):
                out = fn(np.where(x > 0.0, x, 1.0))
            return np.where(x > 0.0, out, 0.0)
        if name == "exp":
            return np.exp(args[0])
        if name == "floor":
            return np.floor(args[0])
        if name == "ceil":
            return np.ceil(args[0])
        if name == "min":
            return np.minimum(args[0], args[1])
        if name == "max":
            return np.maximum(args[0], args[1])
    raise QueryError(f"cannot evaluate formula node {expr!r}")


# --------------------------------------------------------------------- #
# frames: the uniform columnar facade the kernels run on
# --------------------------------------------------------------------- #
class _FrameBase:
    """Shared kernels over the columnar arrays a backend provides.

    Subclasses populate ``n``, ``names`` (list[str]), ``parent`` /
    ``depth`` / ``end`` (int64 arrays; ``end`` is the preorder subtree
    extent), ``cat_codes`` (int16) + ``cat_names``, and ``metrics``,
    and implement :meth:`column` and :meth:`total`.
    """

    n: int
    names: list
    parent: np.ndarray
    depth: np.ndarray
    end: np.ndarray
    cat_codes: np.ndarray
    cat_names: list

    def __init__(self) -> None:
        self._vocab = None
        self._glob_cache: dict[str, np.ndarray] = {}
        self._levels = None

    # -- name vocabulary ------------------------------------------------ #
    def _name_vocab(self):
        if self._vocab is None:
            arr = np.array(self.names, dtype=object)
            uniq, inv = np.unique(arr, return_inverse=True)
            self._vocab = (uniq, inv)
        return self._vocab

    def name_mask(self, glob: str) -> np.ndarray:
        """Boolean row mask of scopes whose name matches *glob*."""
        cached = self._glob_cache.get(glob)
        if cached is not None:
            return cached
        uniq, inv = self._name_vocab()
        if glob == "*":
            mask = np.ones(self.n, dtype=bool)
        elif not any(ch in glob for ch in "*?["):
            hits = uniq == glob
            mask = hits[inv] if hits.any() else np.zeros(self.n, dtype=bool)
        else:
            pattern = re.compile(fnmatch.translate(glob))
            hits = np.fromiter(
                (pattern.match(name) is not None for name in uniq),
                dtype=bool, count=len(uniq),
            )
            mask = hits[inv]
        self._glob_cache[glob] = mask
        return mask

    # -- categories ----------------------------------------------------- #
    def category_mask(self, categories: tuple[str, ...]) -> np.ndarray:
        codes = [i for i, name in enumerate(self.cat_names)
                 if name in categories]
        if not codes:
            return np.zeros(self.n, dtype=bool)
        return np.isin(self.cat_codes, codes)

    # -- metric columns ------------------------------------------------- #
    def column(self, mid: int, flavor: str) -> np.ndarray:
        raise NotImplementedError

    def total(self, mid: int) -> float:
        raise NotImplementedError

    def resolve_metric(self, metric) -> int:
        if isinstance(metric, bool) or not isinstance(metric, (int, str)):
            raise QueryError(f"bad metric selector {metric!r}")
        if isinstance(metric, int):
            return self.metrics.by_id(metric).mid
        return self.metrics.by_name(metric).mid

    def predicate_mask(self, pred: MetricPred) -> np.ndarray:
        mid = self.resolve_metric(pred.metric)
        col = self.column(mid, pred.flavor)
        if pred.share:
            total = self.total(mid)
            col = col / total if total else np.zeros(self.n)
        op = pred.op
        if op == "<":
            return col < pred.value
        if op == "<=":
            return col <= pred.value
        if op == ">":
            return col > pred.value
        if op == ">=":
            return col >= pred.value
        if op == "==":
            return col == pred.value
        return col != pred.value

    # -- composite step mask -------------------------------------------- #
    def step_mask(self, step: Step) -> np.ndarray:
        mask = self.name_mask(step.name)
        if step.category:
            mask = mask & self.category_mask(step.category)
        for pred in step.where:
            mask = mask & self.predicate_mask(pred)
        return mask

    # -- tree kernels ---------------------------------------------------- #
    def cover(self, mask: np.ndarray, strict: bool = False) -> np.ndarray:
        """Rows inside the subtree of any masked row (self excluded when
        *strict*) — a difference-array cumsum over preorder extents."""
        rows = np.flatnonzero(mask)
        if not len(rows):
            return np.zeros(self.n, dtype=bool)
        delta = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(delta, rows + 1 if strict else rows, 1)
        np.add.at(delta, self.end[rows], -1)
        return np.cumsum(delta[: self.n]) > 0

    def _level_rows(self):
        """Rows grouped by depth, shallowest first (cached)."""
        if self._levels is None:
            order = np.argsort(self.depth, kind="stable")
            depths = self.depth[order]
            starts = np.searchsorted(
                depths, np.arange(depths[-1] + 2 if len(depths) else 1)
            )
            self._levels = [
                order[starts[d]: starts[d + 1]]
                for d in range(len(starts) - 1)
                if starts[d] < starts[d + 1]
            ]
        return self._levels

    def nearest_selected_ancestor(self, sel: np.ndarray) -> np.ndarray:
        """Per row, the closest *strict* ancestor in ``sel`` (-1 if none)."""
        near = np.full(self.n, -1, dtype=np.int64)
        for rows in self._level_rows():
            par = self.parent[rows]
            valid = par >= 0
            vrows, vpar = rows[valid], par[valid]
            near[vrows] = np.where(sel[vpar], vpar, near[vpar])
        return near

    def path(self, row: int) -> tuple[str, ...]:
        """Scope names from the root down to *row* (compat helper)."""
        names = []
        r = int(row)
        while r >= 0:
            names.append(self.names[r])
            r = int(self.parent[r])
        return tuple(reversed(names))


class EngineFrame(_FrameBase):
    """A frame straight over an experiment's :class:`MetricEngine`.

    In-memory experiments, eager ``.rpdb`` loads, and mmap-backed
    ``.rpstore`` experiments all surface here through the same three
    matrices, which is what makes query results bit-identical across
    backends.
    """

    cat_names = [_KIND_CATEGORY[k] for k in sorted(_KIND_CATEGORY)]

    def __init__(self, experiment) -> None:
        super().__init__()
        engine = experiment.engine
        if engine is None:
            raise QueryError(
                "cannot query an experiment with no metrics")
        self.experiment = experiment
        self.engine = engine
        self.metrics = experiment.metrics
        self.n = len(engine.nodes)
        self.names = [node.name for node in engine.nodes]
        self.parent = engine.parent_rows
        self.depth = engine.depths
        self.end = engine.subtree_end
        self.cat_codes = engine.kinds
        self._derived_cache: dict[tuple[int, str], np.ndarray] = {}
        self._derived_guard: set[int] = set()

    def column(self, mid: int, flavor: str) -> np.ndarray:
        desc = self.metrics.by_id(mid)
        if desc.kind is MetricKind.DERIVED:
            return self._derived_column(desc, flavor)
        matrix = {"raw": self.engine.raw,
                  "inclusive": self.engine.inclusive,
                  "exclusive": self.engine.exclusive}[flavor]
        return matrix[:, mid]

    def _derived_column(self, desc, flavor: str) -> np.ndarray:
        key = (desc.mid, flavor)
        cached = self._derived_cache.get(key)
        if cached is not None:
            return cached
        if desc.mid in self._derived_guard:
            raise QueryError(
                f"cyclic derived-metric reference involving {desc.name!r}")
        self._derived_guard.add(desc.mid)
        try:
            out = np.asarray(
                _eval_formula_vector(
                    parse_formula(desc.formula),
                    resolver=lambda mid: self.column(mid, flavor),
                ),
                dtype=np.float64,
            )
            if out.ndim == 0:  # constant formula
                out = np.full(self.n, float(out))
        finally:
            self._derived_guard.discard(desc.mid)
        self._derived_cache[key] = out
        return out

    def total(self, mid: int) -> float:
        desc = self.metrics.by_id(mid)
        if desc.kind is MetricKind.DERIVED:
            from repro.core.derived import evaluate

            return evaluate(
                desc.formula,
                resolver=lambda other: self.total(other),
            )
        return self.engine.total(mid)


class ViewFrame(_FrameBase):
    """A frame over a presentation view (compat path for the shims).

    The walk order and node budget replicate the legacy
    ``core.search`` traversal exactly: an explicit stack seeded with
    the roots reversed, popping preorder, capped at *max_nodes* total
    pops.  Values go through :meth:`View.gather_columns`, which reads
    the engine matrices for measured metrics and evaluates derived
    cells per view — the same cells the legacy per-node loops read.
    """

    def __init__(self, view, roots=None,
                 max_nodes: int = DEFAULT_VIEW_NODES) -> None:
        super().__init__()
        self.view = view
        self.metrics = view.metrics
        names: list[str] = []
        cats: list[str] = []
        parents: list[int] = []
        depths: list[int] = []
        nodes: list = []
        stack = [(root, -1, 0) for root in reversed(roots if roots is not None
                                                   else view.roots)]
        visited = 0
        self.truncated = False
        while stack:
            if visited >= max_nodes:
                self.truncated = True
                break
            node, parent_idx, depth = stack.pop()
            visited += 1
            idx = len(nodes)
            nodes.append(node)
            names.append(node.name)
            cats.append(node.category.value)
            parents.append(parent_idx)
            depths.append(depth)
            for child in reversed(node.children):
                stack.append((child, idx, depth + 1))
        self.n = len(nodes)
        self.nodes = nodes
        self.names = names
        self.parent = np.array(parents, dtype=np.int64)
        self.depth = np.array(depths, dtype=np.int64)
        cat_names: list[str] = []
        cat_index: dict[str, int] = {}
        codes = np.empty(self.n, dtype=np.int16)
        for i, cat in enumerate(cats):
            code = cat_index.get(cat)
            if code is None:
                code = cat_index[cat] = len(cat_names)
                cat_names.append(cat)
            codes[i] = code
        self.cat_codes = codes
        self.cat_names = cat_names
        # preorder subtree extents, folded bottom-up
        end = np.arange(1, self.n + 1, dtype=np.int64)
        for i in range(self.n - 1, 0, -1):
            p = parents[i]
            if p >= 0 and end[i] > end[p]:
                end[p] = end[i]
        self.end = end
        self._columns: dict[tuple[int, str], np.ndarray] = {}

    def column(self, mid: int, flavor: str) -> np.ndarray:
        if flavor == "raw":
            raise QueryError(
                "the 'raw' flavor is not defined on aggregated views; "
                "query the experiment directly instead")
        key = (mid, flavor)
        cached = self._columns.get(key)
        if cached is None:
            spec = MetricSpec(mid, MetricFlavor.INCLUSIVE
                              if flavor == "inclusive"
                              else MetricFlavor.EXCLUSIVE)
            cached = self.view.gather_columns(self.nodes, [spec])[:, 0]
            self._columns[key] = cached
        return cached

    def total(self, mid: int) -> float:
        return self.view.total(MetricSpec(mid, MetricFlavor.INCLUSIVE))


def build_frame(target):
    """The evaluation frame for any supported query target."""
    from repro.core.views import View

    if isinstance(target, _FrameBase):
        return target
    if isinstance(target, View):
        return ViewFrame(target)
    cct = getattr(target, "cct", None)
    if cct is not None and getattr(target, "metrics", None) is not None:
        engine = target.engine
        if engine is None:
            raise QueryError("cannot query an experiment with no metrics")
        cached = getattr(cct, "_query_frame", None)
        if cached is not None and cached.engine is engine:
            return cached
        frame = EngineFrame(target)
        try:
            cct._query_frame = frame
        except AttributeError:  # slotted tree: just skip the cache
            pass
        return frame
    if hasattr(target, "member") and hasattr(target, "names"):
        raise QueryError(
            "query one ensemble member at a time: pass "
            "ensemble.member(i) (or ensemble.member('mean'))")
    raise QueryError(f"cannot query {type(target).__name__!r}: expected an "
                     "experiment, a store-backed experiment, an ensemble "
                     "member, or a view")


# --------------------------------------------------------------------- #
# pattern matching
# --------------------------------------------------------------------- #
def match_mask(frame, pattern, universe: np.ndarray | None = None) -> np.ndarray:
    """Rows ending a path that matches *pattern* (a reachability sweep)."""
    reach = None
    gap = False
    for element in pattern:
        if element is ANY_DEPTH:
            gap = True
            continue
        mask = frame.step_mask(element)
        if universe is not None:
            mask = mask & universe
        if reach is None:
            reach = mask
        elif gap:
            reach = mask & frame.cover(reach, strict=True)
        else:
            carrier = np.zeros(frame.n, dtype=bool)
            valid = frame.parent >= 0
            carrier[valid] = reach[frame.parent[valid]]
            reach = mask & carrier
        gap = False
    if reach is None:  # unreachable: parse_pattern demands a concrete step
        reach = np.ones(frame.n, dtype=bool)
    if gap:  # trailing '**': everything under the matched rows
        reach = frame.cover(reach, strict=True)
        if universe is not None:
            reach = reach & universe
    return reach


# --------------------------------------------------------------------- #
# full evaluation
# --------------------------------------------------------------------- #
def _value_columns(frame, q: Query):
    """(labels, list of full columns) the query materializes."""
    if q.metrics is None:
        mids = [desc.mid for desc in frame.metrics]
    else:
        mids = [frame.resolve_metric(m) for m in q.metrics]
    labels: list[str] = []
    columns: list[np.ndarray] = []
    for mid in mids:
        name = frame.metrics.by_id(mid).name
        for flavor in q.flavors:
            labels.append(f"{name} {_FLAVOR_TAG[flavor]}")
            columns.append(frame.column(mid, flavor))
    return labels, columns


def run_query(q: Query, target) -> QueryResult:
    """Evaluate *q* against *target*; the engine behind ``Query.run``."""
    if hasattr(target, "window_experiment"):
        # trace-capable target (TraceSet / TraceStore): materialize the
        # windowed CCT — the whole trace when the query is untimed —
        # then evaluate the rest of the query against it as usual
        t0, t1 = q.time_window if q.time_window is not None else (None, None)
        target = target.window_experiment(t0, t1)
        q = replace(q, time_window=None)
    elif q.time_window is not None:
        raise QueryError(
            "window() requires a trace-capable target (a TraceSet or an "
            "opened trace store); this target carries no time dimension")
    frame = build_frame(target)
    n = frame.n
    universe = np.ones(n, dtype=bool)
    sel: np.ndarray | None = None
    squash = False
    group_key: str | None = None
    for kind, payload in q.ops:
        if kind == "match":
            mask = match_mask(frame, payload, universe)
            sel = mask if sel is None else (sel & mask)
        elif kind == "filter":
            mask = frame.step_mask(payload) & universe
            sel = mask if sel is None else (sel & mask)
        elif kind == "prune":
            hit = match_mask(frame, payload, universe)
            universe &= ~frame.cover(hit, strict=False)
            if sel is not None:
                sel &= universe
        elif kind == "squash":
            squash = True
        else:  # groupby
            group_key = payload
    sel = universe.copy() if sel is None else (sel & universe)
    rows = np.flatnonzero(sel)

    labels, columns = _value_columns(frame, q)
    values = (np.stack([col[rows] for col in columns], axis=1)
              if columns else np.zeros((len(rows), 0)))

    if group_key is not None:
        return _grouped_result(frame, q, rows, labels, values, group_key)

    names = tuple(frame.names[r] for r in rows)
    categories = tuple(frame.cat_names[c] for c in frame.cat_codes[rows])
    depths = frame.depth[rows]
    parents = None
    if squash:
        near = frame.nearest_selected_ancestor(sel)
        sq_depth = np.full(n, -1, dtype=np.int64)
        for level in frame._level_rows():
            lsel = level[sel[level]]
            if not len(lsel):
                continue
            anc = near[lsel]
            sq_depth[lsel] = np.where(anc >= 0, sq_depth[anc] + 1, 0)
        depths = sq_depth[rows]
        result_index = np.full(n, -1, dtype=np.int64)
        result_index[rows] = np.arange(len(rows))
        anc = near[rows]
        parents = np.where(anc >= 0, result_index[anc], -1)

    order, truncated = _order_and_limit(frame, q, rows, labels, values)
    if order is not None:
        names = tuple(names[i] for i in order)
        categories = tuple(categories[i] for i in order)
        depths = depths[order]
        values = values[order]
        rows = rows[order]
        if parents is not None:
            # old result index -> new position (-1 when dropped by limit)
            inverse = np.full(len(parents), -1, dtype=np.int64)
            inverse[order] = np.arange(len(order))
            old_parents = parents[order]
            parents = np.where(
                old_parents >= 0,
                inverse[np.clip(old_parents, 0, None)],
                -1,
            )

    return QueryResult(
        names=names,
        depths=np.ascontiguousarray(depths, dtype=np.int64),
        labels=tuple(labels),
        values=np.ascontiguousarray(values, dtype=np.float64),
        categories=categories,
        rows=np.ascontiguousarray(rows, dtype=np.int64),
        parents=(np.ascontiguousarray(parents, dtype=np.int64)
                 if parents is not None else None),
        truncated=truncated,
    )


def _order_and_limit(frame, q: Query, rows, labels, values):
    """(permutation | None, truncated) applying sort + limit."""
    m = len(rows)
    order = None
    if q.sort_by is not None:
        metric, flavor, descending = q.sort_by
        if metric is None:
            if not labels:
                raise QueryError("sort() needs a metric column")
            col = values[:, 0]
        else:
            mid = frame.resolve_metric(metric)
            label = f"{frame.metrics.by_id(mid).name} {_FLAVOR_TAG[flavor]}"
            if label in labels:
                col = values[:, labels.index(label)]
            else:
                col = frame.column(mid, flavor)[rows]
        order = (np.argsort(-col, kind="stable") if descending
                 else np.argsort(col, kind="stable"))
    truncated = 0
    if q.row_limit is not None and m > q.row_limit:
        truncated = m - q.row_limit
        order = (order[: q.row_limit] if order is not None
                 else np.arange(q.row_limit))
    return order, truncated


def _grouped_result(frame, q: Query, rows, labels, values,
                    key: str) -> QueryResult:
    """Aggregate the selected rows by a group key (vectorized sums)."""
    if key == "name":
        raw_keys = np.array([frame.names[r] for r in rows], dtype=object)
    elif key == "category":
        raw_keys = np.array(
            [frame.cat_names[c] for c in frame.cat_codes[rows]], dtype=object)
    else:  # depth
        raw_keys = frame.depth[rows]
    if len(rows):
        uniq, inverse = np.unique(raw_keys, return_inverse=True)
    else:
        uniq, inverse = np.array([], dtype=object), np.array([], dtype=np.int64)
    sums = np.zeros((len(uniq), values.shape[1]), dtype=np.float64)
    if len(rows):
        np.add.at(sums, inverse, values)
    names = tuple(str(k) for k in uniq)
    categories = names if key == "category" else ()
    depths = (np.asarray(uniq, dtype=np.int64) if key == "depth"
              else np.zeros(len(uniq), dtype=np.int64))

    truncated = 0
    if q.sort_by is not None:
        metric, flavor, descending = q.sort_by
        if metric is None:
            if not labels:
                raise QueryError("sort() needs a metric column")
            col = sums[:, 0]
        else:
            mid = frame.resolve_metric(metric)
            label = f"{frame.metrics.by_id(mid).name} {_FLAVOR_TAG[flavor]}"
            if label not in labels:
                raise QueryError(
                    f"sort column {label!r} is not selected; grouped "
                    "results can only sort by an aggregated column")
            col = sums[:, labels.index(label)]
        order = (np.argsort(-col, kind="stable") if descending
                 else np.argsort(col, kind="stable"))
        names = tuple(names[i] for i in order)
        if categories:
            categories = tuple(categories[i] for i in order)
        depths = depths[order]
        sums = sums[order]
    if q.row_limit is not None and len(names) > q.row_limit:
        truncated = len(names) - q.row_limit
        names = names[: q.row_limit]
        if categories:
            categories = categories[: q.row_limit]
        depths = depths[: q.row_limit]
        sums = sums[: q.row_limit]
    return QueryResult(
        names=names,
        depths=np.ascontiguousarray(depths, dtype=np.int64),
        labels=tuple(labels),
        values=np.ascontiguousarray(sums, dtype=np.float64),
        categories=categories,
        rows=None,
        parents=None,
        truncated=truncated,
    )

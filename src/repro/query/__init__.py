"""``repro.query`` — the composable call-path query language.

One abstraction replaces the historical trio of ad-hoc entry points
(``core.search``, ``core.filters``, ``core.advisor`` — all still
importable, now thin shims over this package):

>>> from repro.query import query
>>> q = (query('main / ** / {"category": "loop"}')
...      .where('CYCLES.exclusive >= 2%')
...      .sort('CYCLES', 'exclusive')
...      .limit(10))
>>> q.run(experiment).to_columns()        # doctest: +SKIP

Queries evaluate vectorized against the columnar
:class:`~repro.core.engine.MetricEngine` and behave identically over
in-memory experiments, loaded ``.rpdb`` files, mmap-backed
``.rpstore`` stores, and ensemble members.  ``diagnose_corpus`` runs
rule sets (load imbalance, scaling loss, hot-path drift) across a
whole corpus tenant, one streamed profile at a time.  See
``docs/query.md`` for the language reference.
"""

from repro.query.engine import build_frame, run_query
from repro.query.lang import (
    ANY_DEPTH,
    GROUPBY_KEYS,
    MetricPred,
    Query,
    Step,
    parse_pattern,
    parse_predicate,
    query,
)
from repro.query.result import QueryResult

__all__ = [
    "ANY_DEPTH",
    "CorpusDiagnosis",
    "Finding",
    "GROUPBY_KEYS",
    "MetricPred",
    "Query",
    "QueryResult",
    "Step",
    "build_frame",
    "diagnose_corpus",
    "parse_pattern",
    "parse_predicate",
    "query",
    "run_query",
]


def diagnose_corpus(corpus, tenant, **kwargs):
    """Run diagnosis rules over a whole corpus tenant (lazy import)."""
    from repro.query.diagnose import diagnose_corpus as _impl

    return _impl(corpus, tenant, **kwargs)


def __getattr__(name):
    # Finding / CorpusDiagnosis live in repro.query.diagnose; resolve
    # them lazily so importing the language core stays dependency-light.
    if name in ("CorpusDiagnosis", "Finding"):
        from repro.query import diagnose

        return getattr(diagnose, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

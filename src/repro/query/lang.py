"""The call-path query language: patterns, predicates, and ``Query``.

This module is the *surface* of ``repro.query`` — it defines what a
query says, not how it runs (that is :mod:`repro.query.engine`).  A
query composes four ingredients:

* **path patterns** — a ``/``-separated chain of *steps*; each step
  matches one CCT scope by name glob, category, and metric predicates,
  and ``**`` matches any number of intermediate scopes::

      main / * / {"name": "flux*", "category": "loop"}
      parse_pattern('main / ** / flux*')

  Patterns are unanchored: the first step may match anywhere in the
  tree (start a pattern with the root's name or ``{"category":
  "root"}`` to anchor it).

* **metric predicates** — comparisons over any flavor of any metric,
  including derived ones, written as dicts or compact strings::

      {"metric": "CYCLES", "flavor": "exclusive", "op": ">=",
       "value": 0.05, "share": True}
      parse_predicate('CYCLES.exclusive >= 5%')

  ``share`` (the ``%`` suffix) compares the scope's share of the
  root's inclusive total instead of the absolute value.

* **subtree operators** — ``match`` (select scopes ending a pattern),
  ``filter`` (restrict the selection by predicate), ``prune`` (drop
  matching subtrees from the universe), ``squash`` (re-parent the
  selection to the nearest selected ancestor), ``groupby`` (aggregate
  the selection by name / category / depth).

* **result shaping** — ``select`` (which metric columns to
  materialize), ``sort`` and ``limit``.

Every query round-trips through a JSON-serializable spec
(:meth:`Query.to_spec` / :meth:`Query.from_spec`) — the form the
``POST /v1/query`` endpoint and the ``repro-query`` CLI speak.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace

from repro.errors import QueryError

__all__ = [
    "ANY_DEPTH",
    "GROUPBY_KEYS",
    "MetricPred",
    "Query",
    "Step",
    "parse_pattern",
    "parse_predicate",
    "query",
]

_OPS = ("<", "<=", ">", ">=", "==", "!=")
_FLAVORS = ("raw", "inclusive", "exclusive")

#: keys :meth:`Query.groupby` accepts
GROUPBY_KEYS = ("name", "category", "depth")


class _AnyDepth:
    """The ``**`` pattern element: any chain of intermediate scopes."""

    _instance: "_AnyDepth | None" = None

    def __new__(cls) -> "_AnyDepth":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "**"


#: singleton marker for the ``**`` pattern segment
ANY_DEPTH = _AnyDepth()


# --------------------------------------------------------------------- #
# predicates
# --------------------------------------------------------------------- #
_PRED_RE = re.compile(
    r"^\s*(?P<metric>[^.<>=!\s]+)"
    r"(?:\.(?P<flavor>raw|inclusive|exclusive))?"
    r"\s*(?P<op><=|>=|==|!=|<|>)\s*"
    r"(?P<value>[-+0-9.eE]+)\s*(?P<share>%?)\s*$"
)


@dataclass(frozen=True, slots=True)
class MetricPred:
    """One metric comparison: ``metric.flavor OP value``.

    ``share=True`` divides the scope's value by the root's *inclusive*
    total of the same metric before comparing (and a ``value`` written
    with a ``%`` suffix in the compact string form is divided by 100).
    """

    metric: str | int
    op: str
    value: float
    flavor: str = "inclusive"
    share: bool = False

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryError(f"unknown predicate op {self.op!r} "
                             f"(expected one of {', '.join(_OPS)})")
        if self.flavor not in _FLAVORS:
            raise QueryError(f"unknown metric flavor {self.flavor!r} "
                             f"(expected one of {', '.join(_FLAVORS)})")

    def to_spec(self) -> dict:
        spec: dict = {"metric": self.metric, "op": self.op,
                      "value": self.value}
        if self.flavor != "inclusive":
            spec["flavor"] = self.flavor
        if self.share:
            spec["share"] = True
        return spec

    @staticmethod
    def from_spec(spec: "MetricPred | dict | str") -> "MetricPred":
        if isinstance(spec, MetricPred):
            return spec
        if isinstance(spec, str):
            return parse_predicate(spec)
        if not isinstance(spec, dict):
            raise QueryError(f"bad predicate spec: {spec!r}")
        unknown = set(spec) - {"metric", "op", "value", "flavor", "share"}
        if unknown:
            raise QueryError(
                f"unknown predicate key(s): {', '.join(sorted(unknown))}")
        try:
            metric = spec["metric"]
            op = spec["op"]
            value = spec["value"]
        except KeyError as exc:
            raise QueryError(
                f"predicate spec is missing {exc.args[0]!r}") from None
        if not isinstance(metric, (str, int)) or isinstance(metric, bool):
            raise QueryError("predicate 'metric' must be a name or id")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise QueryError("predicate 'value' must be a number")
        return MetricPred(
            metric=metric, op=str(op), value=float(value),
            flavor=str(spec.get("flavor", "inclusive")),
            share=bool(spec.get("share", False)),
        )


def parse_predicate(text: str) -> MetricPred:
    """Parse the compact form, e.g. ``'CYCLES.exclusive >= 5%'``."""
    match = _PRED_RE.match(text)
    if match is None:
        raise QueryError(
            f"cannot parse predicate {text!r} "
            f"(expected 'METRIC[.flavor] OP VALUE[%]')")
    share = match.group("share") == "%"
    try:
        value = float(match.group("value"))
    except ValueError:
        raise QueryError(
            f"bad predicate value {match.group('value')!r}") from None
    return MetricPred(
        metric=match.group("metric"),
        flavor=match.group("flavor") or "inclusive",
        op=match.group("op"),
        value=value / 100.0 if share else value,
        share=share,
    )


# --------------------------------------------------------------------- #
# pattern steps
# --------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class Step:
    """One pattern step: a name glob + optional category + predicates."""

    name: str = "*"
    category: tuple[str, ...] = ()
    where: tuple[MetricPred, ...] = ()

    def to_spec(self) -> "dict | str":
        if not self.category and not self.where:
            return self.name
        spec: dict = {}
        if self.name != "*":
            spec["name"] = self.name
        if self.category:
            spec["category"] = (self.category[0] if len(self.category) == 1
                                else list(self.category))
        if self.where:
            spec["where"] = [p.to_spec() for p in self.where]
        return spec

    @staticmethod
    def from_spec(spec: "Step | dict | str") -> "Step | _AnyDepth":
        if isinstance(spec, Step):
            return spec
        if spec is ANY_DEPTH or spec == "**":
            return ANY_DEPTH
        if isinstance(spec, str):
            return Step(name=spec or "*")
        if not isinstance(spec, dict):
            raise QueryError(f"bad pattern step: {spec!r}")
        unknown = set(spec) - {"name", "category", "where"}
        if unknown:
            raise QueryError(
                f"unknown step key(s): {', '.join(sorted(unknown))}")
        category = spec.get("category") or ()
        if isinstance(category, str):
            category = (category,)
        elif isinstance(category, (list, tuple)):
            category = tuple(str(c) for c in category)
        else:
            raise QueryError("step 'category' must be a string or list")
        where = spec.get("where") or ()
        if isinstance(where, (dict, str, MetricPred)):
            where = (where,)
        return Step(
            name=str(spec.get("name", "*")) or "*",
            category=category,
            where=tuple(MetricPred.from_spec(p) for p in where),
        )


Pattern = tuple  # of Step | ANY_DEPTH


def _split_segments(text: str) -> list[str]:
    """Split a pattern string on ``/`` outside braces and quotes."""
    segments: list[str] = []
    buf: list[str] = []
    depth = 0
    quote: str | None = None
    for ch in text:
        if quote is not None:
            buf.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "\"'":
            quote = ch
            buf.append(ch)
        elif ch == "{":
            depth += 1
            buf.append(ch)
        elif ch == "}":
            depth -= 1
            buf.append(ch)
        elif ch == "/" and depth == 0:
            segments.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if quote is not None or depth != 0:
        raise QueryError(f"unbalanced quotes or braces in pattern {text!r}")
    segments.append("".join(buf))
    return segments


def parse_pattern(pattern) -> Pattern:
    """Normalize any accepted pattern form into a tuple of steps.

    Accepts a string (``'main / ** / flux*'``, JSON-object segments
    allowed), a single step (str / dict / :class:`Step`), or a
    sequence of steps.
    """
    if isinstance(pattern, str):
        parts: list = []
        for segment in _split_segments(pattern):
            segment = segment.strip()
            if not segment:
                raise QueryError(f"empty segment in pattern {pattern!r}")
            if segment.startswith("{"):
                try:
                    parts.append(json.loads(segment))
                except json.JSONDecodeError as exc:
                    raise QueryError(
                        f"bad JSON step {segment!r}: {exc}") from None
            else:
                parts.append(segment)
        pattern = parts
    elif isinstance(pattern, (Step, dict)) or pattern is ANY_DEPTH:
        pattern = [pattern]
    elif not isinstance(pattern, (list, tuple)):
        raise QueryError(f"bad pattern: {pattern!r}")
    if not pattern:
        raise QueryError("empty pattern")
    steps = tuple(Step.from_spec(s) for s in pattern)
    if all(s is ANY_DEPTH for s in steps):
        raise QueryError("pattern needs at least one concrete step")
    for a, b in zip(steps, steps[1:]):
        if a is ANY_DEPTH and b is ANY_DEPTH:
            raise QueryError("consecutive '**' segments are redundant")
    return steps


def _pattern_spec(steps: Pattern) -> list:
    return ["**" if s is ANY_DEPTH else s.to_spec() for s in steps]


# --------------------------------------------------------------------- #
# the query itself
# --------------------------------------------------------------------- #
_OP_KINDS = ("match", "filter", "prune", "squash", "groupby")


@dataclass(frozen=True, slots=True)
class Query:
    """An immutable, composable call-path query.

    Build one with :func:`query` and chain operators; every method
    returns a new query.  :meth:`run` evaluates it against an
    experiment (in-memory, ``.rpdb``-loaded, or ``.rpstore``-backed),
    an :class:`~repro.core.ensemble.EnsembleView` member, or a view.

    >>> q = (query('main / ** / {"category": "loop"}')
    ...      .where('CYCLES.exclusive >= 2%')
    ...      .sort('CYCLES', 'exclusive')
    ...      .limit(10))
    >>> result = q.run(experiment)        # doctest: +SKIP
    >>> result.to_columns()               # doctest: +SKIP
    """

    ops: tuple = ()
    metrics: tuple | None = None
    flavors: tuple = ("inclusive", "exclusive")
    sort_by: tuple | None = None
    row_limit: int | None = None
    #: ``(t0, t1)`` trace-time restriction (either bound may be None);
    #: None means the query is untimed
    time_window: tuple | None = None

    # ------------------------------------------------------------------ #
    # operators
    # ------------------------------------------------------------------ #
    def match(self, pattern) -> "Query":
        """Select scopes at the end of a matching path."""
        return replace(self, ops=self.ops + (("match", parse_pattern(pattern)),))

    def filter(self, *predicates, name: str | None = None,
               category=None) -> "Query":
        """Restrict the current selection by predicate / name / category."""
        step = Step.from_spec({
            "name": name or "*",
            "category": category or (),
            "where": [MetricPred.from_spec(p) for p in predicates],
        })
        if step == Step():
            raise QueryError("filter() needs a predicate, name, or category")
        return replace(self, ops=self.ops + (("filter", step),))

    #: predicate-only filters read naturally as ``.where(...)``
    where = filter

    def prune(self, pattern) -> "Query":
        """Remove matching scopes *and their subtrees* from the universe."""
        return replace(self, ops=self.ops + (("prune", parse_pattern(pattern)),))

    def squash(self) -> "Query":
        """Re-parent selected scopes to their nearest selected ancestor."""
        return replace(self, ops=self.ops + (("squash", None),))

    def groupby(self, key: str = "name") -> "Query":
        """Aggregate the selection by ``name``, ``category``, or ``depth``."""
        if key not in GROUPBY_KEYS:
            raise QueryError(f"unknown groupby key {key!r} "
                             f"(expected one of {', '.join(GROUPBY_KEYS)})")
        return replace(self, ops=self.ops + (("groupby", key),))

    # ------------------------------------------------------------------ #
    # result shaping
    # ------------------------------------------------------------------ #
    def select(self, metrics=None, flavors=None) -> "Query":
        """Choose the metric columns the result materializes.

        ``metrics`` is a sequence of metric names/ids (None = every
        metric in the table); ``flavors`` a subset of ``raw`` /
        ``inclusive`` / ``exclusive``.
        """
        if metrics is not None:
            if isinstance(metrics, (str, int)):
                metrics = (metrics,)
            metrics = tuple(metrics)
            for m in metrics:
                if not isinstance(m, (str, int)) or isinstance(m, bool):
                    raise QueryError(f"bad metric selector {m!r}")
        if flavors is None:
            flavors = self.flavors
        else:
            if isinstance(flavors, str):
                flavors = (flavors,)
            flavors = tuple(flavors)
            for f in flavors:
                if f not in _FLAVORS:
                    raise QueryError(f"unknown metric flavor {f!r}")
            if not flavors:
                raise QueryError("select() needs at least one flavor")
        return replace(self, metrics=metrics, flavors=flavors)

    def sort(self, metric=None, flavor: str = "inclusive",
             descending: bool = True) -> "Query":
        """Sort rows by a metric column (None = the first selected one)."""
        if flavor not in _FLAVORS:
            raise QueryError(f"unknown metric flavor {flavor!r}")
        return replace(self, sort_by=(metric, flavor, bool(descending)))

    def limit(self, n: int) -> "Query":
        """Keep only the first *n* rows (after sorting)."""
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise QueryError(f"limit must be a positive integer, got {n!r}")
        return replace(self, row_limit=n)

    def window(self, t0: float | None = None,
               t1: float | None = None) -> "Query":
        """Restrict evaluation to trace events with ``t0 <= t < t1``.

        Requires a trace-capable target (a
        :class:`~repro.trace.model.TraceSet` or an opened
        :class:`~repro.trace.store.TraceStore`); the CCT the rest of
        the query sees is materialized from exactly the events inside
        the window.  ``window(None, None)`` is the whole trace — by
        the trace model's exactness contract, identical to the untimed
        profile.
        """
        bounds = []
        for label, t in (("t0", t0), ("t1", t1)):
            if t is None:
                bounds.append(None)
                continue
            if isinstance(t, bool) or not isinstance(t, (int, float)):
                raise QueryError(
                    f"window {label} must be a number or None, got {t!r}")
            t = float(t)
            if t != t:  # NaN
                raise QueryError(f"window {label} must not be NaN")
            bounds.append(t)
        if (bounds[0] is not None and bounds[1] is not None
                and bounds[0] > bounds[1]):
            raise QueryError(
                f"window is inverted: t0={bounds[0]!r} > t1={bounds[1]!r}")
        return replace(self, time_window=(bounds[0], bounds[1]))

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def run(self, target):
        """Evaluate against an experiment, ensemble member, or view."""
        from repro.query.engine import run_query  # circular-import guard

        return run_query(self, target)

    # ------------------------------------------------------------------ #
    # wire form
    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        """A JSON-serializable spec; inverse of :meth:`from_spec`."""
        ops = []
        for kind, payload in self.ops:
            if kind in ("match", "prune"):
                ops.append({"op": kind, "pattern": _pattern_spec(payload)})
            elif kind == "filter":
                entry: dict = {"op": "filter"}
                if payload.name != "*":
                    entry["name"] = payload.name
                if payload.category:
                    entry["category"] = list(payload.category)
                if payload.where:
                    entry["where"] = [p.to_spec() for p in payload.where]
                ops.append(entry)
            elif kind == "squash":
                ops.append({"op": "squash"})
            else:
                ops.append({"op": "groupby", "key": payload})
        spec: dict = {"ops": ops}
        if self.metrics is not None:
            spec["metrics"] = list(self.metrics)
        if self.flavors != ("inclusive", "exclusive"):
            spec["flavors"] = list(self.flavors)
        if self.sort_by is not None:
            metric, flavor, descending = self.sort_by
            spec["sort"] = {"metric": metric, "flavor": flavor,
                            "descending": descending}
        if self.row_limit is not None:
            spec["limit"] = self.row_limit
        if self.time_window is not None:
            spec["window"] = list(self.time_window)
        return spec

    @staticmethod
    def from_spec(spec: "Query | dict | str") -> "Query":
        """Build a query from a spec dict (or a bare pattern string)."""
        if isinstance(spec, Query):
            return spec
        if isinstance(spec, str):
            return query(spec)
        if not isinstance(spec, dict):
            raise QueryError(f"bad query spec: {spec!r}")
        known = {"ops", "pattern", "where", "metrics", "flavors",
                 "sort", "limit", "window"}
        unknown = set(spec) - known
        if unknown:
            raise QueryError(
                f"unknown query key(s): {', '.join(sorted(unknown))}")
        q = Query()
        if "pattern" in spec:
            q = q.match(spec["pattern"])
        if spec.get("where"):
            where = spec["where"]
            if isinstance(where, (dict, str)):
                where = [where]
            q = q.filter(*where)
        for entry in spec.get("ops") or ():
            if not isinstance(entry, dict) or "op" not in entry:
                raise QueryError(f"bad op entry: {entry!r}")
            kind = entry["op"]
            if kind == "match":
                q = q.match(entry.get("pattern"))
            elif kind == "prune":
                q = q.prune(entry.get("pattern"))
            elif kind == "filter":
                where = entry.get("where") or ()
                if isinstance(where, (dict, str)):
                    where = [where]
                q = q.filter(*where, name=entry.get("name"),
                             category=entry.get("category"))
            elif kind == "squash":
                q = q.squash()
            elif kind == "groupby":
                q = q.groupby(entry.get("key", "name"))
            else:
                raise QueryError(
                    f"unknown op {kind!r} "
                    f"(expected one of {', '.join(_OP_KINDS)})")
        if spec.get("metrics") is not None or spec.get("flavors") is not None:
            q = q.select(spec.get("metrics"), spec.get("flavors"))
        if spec.get("sort") is not None:
            sort = spec["sort"]
            if not isinstance(sort, dict):
                raise QueryError("query 'sort' must be an object")
            q = q.sort(sort.get("metric"),
                       sort.get("flavor", "inclusive"),
                       bool(sort.get("descending", True)))
        if spec.get("limit") is not None:
            q = q.limit(spec["limit"])
        if spec.get("window") is not None:
            window = spec["window"]
            if not isinstance(window, (list, tuple)) or len(window) != 2:
                raise QueryError(
                    "query 'window' must be a [t0, t1] pair "
                    "(either bound may be null)")
            q = q.window(window[0], window[1])
        return q


def query(pattern=None) -> Query:
    """Start a query, optionally matching a path pattern right away."""
    q = Query()
    if pattern is not None:
        q = q.match(pattern)
    return q

"""Advisor rules, expressed as queries over the metric engine.

Section IX of the paper lists as ongoing work "identifying data reuse
patterns and suggesting program transformations to improve program
performance".  The rule set lives here now: each rule is the
materialization of one call-path query — the loop rules are
``query('{"category": ["loop", "inlined"]}')`` over the flat view with
vectorized threshold masks, the imbalance rule reduces the per-rank
engine vectors, the context rule scans callers-view roots — and each
fires a :class:`Suggestion` carrying the scope, evidence values, and
the transformation the Figure 6 case study actually applied.

``repro.core.advisor`` remains the public entry point (a thin shim over
this module); suggestions are bit-identical to the original per-node
implementation, in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.views import NodeCategory
from repro.hpcrun.counters import CYCLES, FLOPS, L1_DCM
from repro.query.engine import ViewFrame

__all__ = [
    "Suggestion",
    "context_rule",
    "imbalance_rule",
    "loop_rules",
    "run_rules",
]

#: effectively unbounded walk — the legacy advisor never capped its own
#: traversal, so neither do the rules
_NO_CAP = 1 << 62


@dataclass(frozen=True)
class Suggestion:
    """One tuning opportunity with its evidence."""

    rule: str
    scope: str
    location: str
    transformation: str
    evidence: dict[str, float]
    #: estimated share of total cycles touched by the scope
    impact: float

    def describe(self) -> str:
        facts = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self.evidence.items()))
        return (
            f"[{self.rule}] {self.scope} ({self.location}; "
            f"~{100 * self.impact:.1f}% of cycles)\n"
            f"    -> {self.transformation}\n"
            f"    evidence: {facts}"
        )


def _metric(experiment, name: str) -> int | None:
    return (experiment.metrics.by_name(name).mid
            if name in experiment.metrics else None)


# --------------------------------------------------------------------- #
# loop rules: memory-bound / low-efficiency / already-tight
# --------------------------------------------------------------------- #
def loop_rules(
    experiment,
    peak: float,
    *,
    min_impact: float,
    memory_bound_miss_rate: float,
    low_efficiency: float,
    tight_efficiency: float,
) -> list[Suggestion]:
    """The three loop rules, vectorized over the flat view.

    Query form: ``query('{"category": ["loop", "inlined"]}')`` with an
    exclusive-cycles impact floor; the efficiency / miss-rate evidence
    columns are computed as whole arrays, and only the (few) scopes
    that clear the impact threshold surface as suggestions.
    """
    cyc = _metric(experiment, CYCLES)
    if cyc is None:
        return []
    fl = _metric(experiment, FLOPS)
    l1 = _metric(experiment, L1_DCM)
    total = experiment.cct.root.inclusive.get(cyc, 0.0)
    if total <= 0:
        return []

    frame = ViewFrame(experiment.flat_view(), max_nodes=_NO_CAP)
    mask = frame.category_mask(
        (NodeCategory.LOOP.value, NodeCategory.INLINED.value)
    )
    rows = np.flatnonzero(mask)  # preorder == the legacy walk order
    if not len(rows):
        return []

    cycles = frame.column(cyc, "exclusive")[rows]
    impact = cycles / total
    hot = impact >= min_impact
    rows, cycles, impact = rows[hot], cycles[hot], impact[hot]
    if not len(rows):
        return []

    zeros = np.zeros(len(rows))
    flops = frame.column(fl, "exclusive")[rows] if fl is not None else zeros
    misses = frame.column(l1, "exclusive")[rows] if l1 is not None else zeros
    nonzero = cycles != 0.0
    efficiency = np.divide(flops, peak * cycles,
                           out=np.zeros(len(rows)), where=nonzero)
    miss_rate = np.divide(misses, cycles,
                          out=np.zeros(len(rows)), where=nonzero)

    out: list[Suggestion] = []
    for i, row in enumerate(rows):
        loop = frame.nodes[row]
        location = str(loop.struct.location) if loop.struct else loop.name
        eff = float(efficiency[i])
        if l1 is not None and miss_rate[i] >= memory_bound_miss_rate \
                and eff < low_efficiency:
            out.append(Suggestion(
                rule="memory-bound-loop",
                scope=loop.name,
                location=location,
                transformation=(
                    "streaming through the memory hierarchy: exploit "
                    "data reuse in cache via loop scalarization, fusion, "
                    "unswitching, and unroll-and-jam (the Figure 6 fix)"
                ),
                evidence={"efficiency": eff,
                          "l1_misses_per_cycle": float(miss_rate[i])},
                impact=float(impact[i]),
            ))
        elif fl is not None and 0 < eff < low_efficiency:
            out.append(Suggestion(
                rule="low-efficiency-compute",
                scope=loop.name,
                location=location,
                transformation=(
                    "far from peak without being cache-bound: check "
                    "vectorization, dependence chains, and instruction mix"
                ),
                evidence={"efficiency": eff},
                impact=float(impact[i]),
            ))
        elif fl is not None and eff >= tight_efficiency:
            out.append(Suggestion(
                rule="already-tight",
                scope=loop.name,
                location=location,
                transformation=(
                    "running near achievable rate; prefer algorithmic "
                    "changes (fewer calls, batched/vectorized variants) "
                    "over micro-tuning"
                ),
                evidence={"efficiency": eff},
                impact=float(impact[i]),
            ))
    return out


# --------------------------------------------------------------------- #
# load imbalance: per-rank engine-vector reduction
# --------------------------------------------------------------------- #
def imbalance_rule(experiment, *, imbalance_cov: float) -> list[Suggestion]:
    """Whole-execution load imbalance from the per-rank cycle vectors."""
    cyc = _metric(experiment, CYCLES)
    if cyc is None or not experiment.rank_ccts:
        return []
    vec = experiment.rank_vector(experiment.cct.root, CYCLES)
    mean = float(vec.mean())
    if mean <= 0:
        return []
    cov = float(vec.std() / mean)
    if cov < imbalance_cov:
        return []
    # localize: hot path on idleness if present, else on max-rank cycles
    idle_name = next(
        (d.name for d in experiment.metrics if "idle" in d.name.lower()), None
    )
    context = ""
    if idle_name is not None and experiment.total(idle_name) > 0:
        result = experiment.hot_path(idle_name)
        context = " -> ".join(n.name for n in result.path[-3:])
    return [Suggestion(
        rule="load-imbalance",
        scope="<whole execution>",
        location=context or "per-rank totals",
        transformation=(
            "uneven work across ranks: repartition the domain (weight "
            "by measured per-cell cost) or over-decompose and balance "
            "dynamically"
        ),
        evidence={"cov": cov,
                  "max_over_mean": float(vec.max() / mean)},
        impact=float((vec.max() - mean) / vec.sum() * len(vec)),
    )]


# --------------------------------------------------------------------- #
# context concentration: callers-view root scan
# --------------------------------------------------------------------- #
def context_rule(experiment, *, min_impact: float) -> list[Suggestion]:
    """Callees whose cost is wildly context-dependent: specialization
    or caller-side fixes beat tuning the callee in isolation.

    Query form: callers-view roots filtered on
    ``CYCLES.inclusive >= 2 * min_impact`` share; the roots' values are
    gathered in one batch, and only qualifying procedures expand their
    (lazy) calling contexts.
    """
    from repro.core.metrics import MetricFlavor, MetricSpec

    cyc = _metric(experiment, CYCLES)
    if cyc is None:
        return []
    total = experiment.cct.root.inclusive.get(cyc, 0.0)
    if total <= 0:
        return []
    out: list[Suggestion] = []
    callers = experiment.callers_view()
    roots = list(callers.roots)
    if not roots:
        return []
    spec = MetricSpec(cyc, MetricFlavor.INCLUSIVE)
    values = callers.gather_columns(roots, [spec])[:, 0]
    for row, value in zip(roots, values):
        value = float(value)
        if value / total < 2 * min_impact:
            continue
        shares = np.array([
            c.inclusive.get(cyc, 0.0) for c in row.children
        ])
        if len(shares) < 2 or shares.sum() <= 0:
            continue
        top = float(shares.max() / shares.sum())
        if top >= 0.9:
            out.append(Suggestion(
                rule="single-context-callee",
                scope=row.name,
                location=f"{len(shares)} calling contexts",
                transformation=(
                    "one caller dominates this procedure's cost: tune "
                    "that call path (or inline/specialize for it) rather "
                    "than the procedure in general"
                ),
                evidence={"dominant_context_share": top},
                impact=value / total,
            ))
    return out


def run_rules(
    experiment,
    peak: float,
    *,
    min_impact: float,
    memory_bound_miss_rate: float,
    low_efficiency: float,
    tight_efficiency: float,
    imbalance_cov: float,
) -> list[Suggestion]:
    """All rules over one experiment, highest impact first."""
    out: list[Suggestion] = []
    out.extend(loop_rules(
        experiment, peak,
        min_impact=min_impact,
        memory_bound_miss_rate=memory_bound_miss_rate,
        low_efficiency=low_efficiency,
        tight_efficiency=tight_efficiency,
    ))
    out.extend(imbalance_rule(experiment, imbalance_cov=imbalance_cov))
    out.extend(context_rule(experiment, min_impact=min_impact))
    out.sort(key=lambda s: -s.impact)
    return out

"""Corpus-wide automated diagnosis — rules over a whole tenant.

``diagnose_corpus`` streams every committed profile of one corpus
tenant through the diagnosis rules **one profile at a time**: each
profile is opened, reduced to a handful of scalars (aggregate totals,
per-rank vector moments, the hot path), and released before the next
one is touched, so the working set stays flat no matter how many
profiles the tenant holds — the same discipline the streaming merge
planner applies.

Three rules ship (the corpus-scale versions of the advisor's
single-experiment rules):

* **load-imbalance** — a profile whose per-rank cycle totals have a
  coefficient of variation at or above ``rank_cov``;
* **scaling-loss** — within a profile *group* (the catalog's scaling
  series), a member whose aggregate cost grew beyond
  ``scaling_floor`` parallel efficiency against the group's
  smallest-rank member;
* **hot-path-drift** — a profile whose hot path diverged from the
  baseline's (explicit ``baseline`` pid, or each group's first
  member), reported with the shared prefix and both tails.

The result is a columnar :class:`CorpusDiagnosis` (``to_rows()`` /
``to_columns()`` / ``to_payload()``), served by
``POST /v1/query`` in corpus mode and by ``repro-query --diagnose``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpcrun.counters import CYCLES

__all__ = ["CorpusDiagnosis", "Finding", "diagnose_corpus"]

#: how many trailing hot-path frames to report as evidence
_PATH_TAIL = 3


@dataclass(frozen=True)
class Finding:
    """One diagnosis: a rule that fired on one profile."""

    rule: str
    tenant: str
    profile: str
    group: str
    detail: str
    evidence: dict[str, float]
    #: rule-specific badness in [0, 1]-ish units; sorts the report
    severity: float

    def describe(self) -> str:
        facts = ", ".join(
            f"{k}={v:.3g}" for k, v in sorted(self.evidence.items())
        )
        where = f"{self.tenant}/{self.profile}"
        if self.group:
            where += f" (group {self.group})"
        return f"[{self.rule}] {where}: {self.detail} ({facts})"


@dataclass(frozen=True)
class CorpusDiagnosis:
    """The outcome of one diagnosis pass over a tenant."""

    tenant: str
    metric: str
    findings: tuple[Finding, ...]
    #: per-profile scalar summaries, in catalog order:
    #: (pid, group, nranks, total, hotspot, hotspot_share)
    summaries: tuple[tuple, ...]
    profiles_examined: int
    profiles_skipped: int = 0

    def to_rows(self) -> list[list]:
        """``[rule, profile, group, severity, detail]`` per finding."""
        return [
            [f.rule, f.profile, f.group, float(f.severity), f.detail]
            for f in self.findings
        ]

    def to_columns(self) -> dict:
        return {
            "rule": [f.rule for f in self.findings],
            "profile": [f.profile for f in self.findings],
            "group": [f.group for f in self.findings],
            "severity": [float(f.severity) for f in self.findings],
            "detail": [f.detail for f in self.findings],
        }

    def to_payload(self) -> dict:
        return {
            "tenant": self.tenant,
            "metric": self.metric,
            "profiles_examined": self.profiles_examined,
            "profiles_skipped": self.profiles_skipped,
            "findings": [
                {
                    "rule": f.rule,
                    "profile": f.profile,
                    "group": f.group,
                    "detail": f.detail,
                    "evidence": dict(f.evidence),
                    "severity": f.severity,
                }
                for f in self.findings
            ],
            "profiles": [
                {
                    "id": pid,
                    "group": group,
                    "nranks": nranks,
                    "total": total,
                    "hotspot": hotspot,
                    "hotspot_share": share,
                }
                for pid, group, nranks, total, hotspot, share in self.summaries
            ],
        }


@dataclass
class _Summary:
    """The scalars retained per profile after its experiment is released."""

    pid: str
    group: str
    created_at: float
    nranks: int
    total: float
    hot_names: tuple[str, ...]
    hotspot_share: float


def _release(experiment) -> None:
    release = getattr(experiment, "release", None)
    if release is not None:
        release()


def _summarize_one(entry, experiment, metric: str) -> tuple[_Summary, list]:
    """Reduce one open experiment to scalars + any per-profile findings."""
    findings: list = []
    total = experiment.total(metric)
    nranks = len(experiment.rank_ccts) if experiment.rank_ccts else int(
        entry.meta.get("nranks", 1) or 1
    )
    hot_names: tuple[str, ...] = ()
    hotspot_share = 0.0
    if total > 0:
        result = experiment.hot_path(metric)
        hot_names = tuple(n.name for n in result.path)
        hotspot_share = float(result.hotspot_value / total)
    return _Summary(
        pid=entry.pid,
        group=entry.group or "",
        created_at=entry.created_at,
        nranks=nranks,
        total=float(total),
        hot_names=hot_names,
        hotspot_share=hotspot_share,
    ), findings


def _imbalance_finding(entry, experiment, metric: str, rank_cov: float):
    if experiment.rank_ccts:
        vec = experiment.rank_vector(experiment.cct.root, metric)
        mean = float(vec.mean())
        if mean <= 0:
            return None
        cov = float(vec.std() / mean)
        max_over_mean = float(vec.max() / mean)
        nranks = len(vec)
    else:
        # stored profiles keep only the merge's summary-statistic
        # metrics; the root's stddev/mean IS the per-rank CoV
        if (f"{metric} (mean)" not in experiment.metrics
                or f"{metric} (stddev)" not in experiment.metrics):
            return None
        mean = float(experiment.total(f"{metric} (mean)"))
        if mean <= 0:
            return None
        cov = float(experiment.total(f"{metric} (stddev)") / mean)
        max_over_mean = (
            float(experiment.total(f"{metric} (max)") / mean)
            if f"{metric} (max)" in experiment.metrics else 0.0
        )
        nranks = int(round(experiment.total(metric) / mean)) or 1
    if cov < rank_cov:
        return None
    return Finding(
        rule="load-imbalance",
        tenant=entry.tenant,
        profile=entry.pid,
        group=entry.group or "",
        detail=(
            f"per-rank {metric} totals vary {100 * cov:.0f}% around the "
            f"mean across {nranks} ranks"
        ),
        evidence={
            "cov": cov,
            "max_over_mean": max_over_mean,
            "nranks": float(nranks),
        },
        severity=cov,
    )


def _scaling_findings(tenant: str, summaries: list, metric: str,
                      scaling_floor: float) -> list:
    """Aggregate-cost growth within each scaling group (strong scaling:
    perfect scaling keeps total cost flat as ranks grow)."""
    groups: dict[str, list] = {}
    for s in summaries:
        if s.group:
            groups.setdefault(s.group, []).append(s)
    out = []
    for group, members in sorted(groups.items()):
        members = sorted(members, key=lambda s: (s.nranks, s.created_at))
        base = members[0]
        if base.total <= 0:
            continue
        for member in members[1:]:
            if member.nranks <= base.nranks or member.total <= 0:
                continue
            efficiency = base.total / member.total
            if efficiency >= scaling_floor:
                continue
            out.append(Finding(
                rule="scaling-loss",
                tenant=tenant,
                profile=member.pid,
                group=group,
                detail=(
                    f"aggregate {metric} grew "
                    f"{member.total / base.total:.2f}x over the "
                    f"{base.nranks}-rank baseline {base.pid} at "
                    f"{member.nranks} ranks "
                    f"({100 * efficiency:.0f}% efficiency)"
                ),
                evidence={
                    "efficiency": efficiency,
                    "base_total": base.total,
                    "total": member.total,
                    "base_nranks": float(base.nranks),
                    "nranks": float(member.nranks),
                },
                severity=1.0 - efficiency,
            ))
    return out


def _drift_findings(tenant: str, summaries: list, metric: str,
                    baseline: str | None, drift_share: float) -> list:
    """Hot-path divergence against a baseline profile.

    With an explicit *baseline* pid, every other profile is compared to
    it; otherwise each group's first member (by creation time) anchors
    its group, and ungrouped profiles are left alone.
    """
    by_pid = {s.pid: s for s in summaries}
    pairs: list[tuple] = []  # (base, member)
    if baseline is not None:
        base = by_pid.get(baseline)
        if base is None:
            return []
        pairs = [(base, s) for s in summaries if s.pid != base.pid]
    else:
        groups: dict[str, list] = {}
        for s in summaries:
            if s.group:
                groups.setdefault(s.group, []).append(s)
        for members in groups.values():
            members = sorted(members, key=lambda s: (s.created_at, s.pid))
            pairs.extend((members[0], m) for m in members[1:])

    out = []
    for base, member in pairs:
        if not base.hot_names or not member.hot_names:
            continue
        shared = 0
        for a, b in zip(base.hot_names, member.hot_names):
            if a != b:
                break
            shared += 1
        diverged = (shared < len(base.hot_names)
                    or shared < len(member.hot_names))
        share_delta = member.hotspot_share - base.hotspot_share
        if not diverged and abs(share_delta) < drift_share:
            continue
        longest = max(len(base.hot_names), len(member.hot_names))
        drift = 1.0 - (shared / longest if longest else 1.0)
        if diverged:
            detail = (
                f"hot {metric} path diverged from baseline {base.pid} "
                f"after {shared} shared frame(s): "
                f"{' -> '.join(base.hot_names[-_PATH_TAIL:])} vs "
                f"{' -> '.join(member.hot_names[-_PATH_TAIL:])}"
            )
        else:
            detail = (
                f"hotspot share moved {100 * share_delta:+.1f}% against "
                f"baseline {base.pid} on an unchanged hot path "
                f"({' -> '.join(member.hot_names[-_PATH_TAIL:])})"
            )
        out.append(Finding(
            rule="hot-path-drift",
            tenant=tenant,
            profile=member.pid,
            group=member.group,
            detail=detail,
            evidence={
                "shared_frames": float(shared),
                "baseline_depth": float(len(base.hot_names)),
                "depth": float(len(member.hot_names)),
                "hotspot_share_delta": share_delta,
            },
            severity=max(drift, abs(share_delta)),
        ))
    return out


def diagnose_corpus(
    corpus,
    tenant: str,
    *,
    metric: str | None = None,
    baseline: str | None = None,
    rank_cov: float = 0.10,
    scaling_floor: float = 0.8,
    drift_share: float = 0.05,
    salvage: bool = False,
    checkpoint=None,
) -> CorpusDiagnosis:
    """Run the diagnosis rules over every profile of *tenant*.

    Profiles stream one at a time — opened, reduced to scalars,
    released — so memory stays flat regardless of corpus size.
    *metric* defaults to the cycle counter when the first profile
    carries it, otherwise to that profile's first metric; profiles
    that do not carry the resolved metric are skipped (counted in
    ``profiles_skipped``), so a mixed-measurement tenant still
    diagnoses cleanly.  *checkpoint*, when given, is called between
    profiles (the server passes its deadline check so a long corpus
    cannot overrun the request budget).
    """
    entries = corpus.list(tenant)
    summaries: list[_Summary] = []
    findings: list[Finding] = []
    skipped = 0
    for entry in entries:
        if checkpoint is not None:
            checkpoint()
        experiment = corpus.load(tenant, entry.pid, salvage=salvage)
        try:
            if metric is None:
                metric = (CYCLES if CYCLES in experiment.metrics
                          else next(iter(experiment.metrics)).name)
            if metric not in experiment.metrics:
                skipped += 1
                continue
            summary, extra = _summarize_one(entry, experiment, metric)
            summaries.append(summary)
            findings.extend(extra)
            imbalance = _imbalance_finding(entry, experiment, metric, rank_cov)
            if imbalance is not None:
                findings.append(imbalance)
        finally:
            _release(experiment)

    findings.extend(
        _scaling_findings(tenant, summaries, metric, scaling_floor)
    )
    findings.extend(
        _drift_findings(tenant, summaries, metric, baseline, drift_share)
    )
    findings.sort(key=lambda f: (-f.severity, f.rule, f.profile))
    return CorpusDiagnosis(
        tenant=tenant,
        metric=metric or "",
        findings=tuple(findings),
        summaries=tuple(
            (s.pid, s.group, s.nranks, s.total,
             s.hot_names[-1] if s.hot_names else "", s.hotspot_share)
            for s in summaries
        ),
        profiles_examined=len(summaries),
        profiles_skipped=skipped,
    )

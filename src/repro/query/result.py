"""Columnar query results: dataframe-shaped, no pandas dependency.

A :class:`QueryResult` is a small frozen table: one row per selected
scope (or per group, after ``groupby``), a ``name`` / ``depth`` /
``category`` spine, and one float64 column per selected metric flavor.
The value matrix is gathered straight from the
:class:`~repro.core.engine.MetricEngine` matrices, so the same query
over an in-memory experiment, a loaded ``.rpdb``, and an mmap-backed
``.rpstore`` produces bit-identical bytes — the property battery pins
this.

``to_rows()`` / ``to_columns()`` are the notebook surface
(``pandas.DataFrame(result.to_columns())`` works directly);
``to_snapshot()`` adapts a result to the server's
:class:`~repro.server.wire.TableSnapshot` so ``POST /v1/query`` reuses
the existing columnar wire format unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """The materialized outcome of one query over one profile."""

    #: scope (or group-key) display name per row
    names: tuple[str, ...]
    #: tree depth per row (squashed depth after ``squash``; 0 for groups)
    depths: np.ndarray
    #: one label per value column, e.g. ``"CYCLES (I)"``
    labels: tuple[str, ...]
    #: float64 value matrix, shape ``(len(names), len(labels))``
    values: np.ndarray
    #: scope category per row ("" when not applicable)
    categories: tuple[str, ...] = ()
    #: engine preorder row per scope (absent after ``groupby``)
    rows: np.ndarray | None = None
    #: result-relative parent index per row (-1 = top level; only
    #: populated by ``squash``)
    parents: np.ndarray | None = None
    #: rows dropped by ``limit``
    truncated: int = 0

    @property
    def row_count(self) -> int:
        return len(self.names)

    # ------------------------------------------------------------------ #
    # notebook surface
    # ------------------------------------------------------------------ #
    def to_columns(self) -> dict:
        """Column name -> list, in a stable column order."""
        out: dict = {
            "name": list(self.names),
            "depth": [int(d) for d in self.depths],
        }
        if self.categories:
            out["category"] = list(self.categories)
        if self.rows is not None:
            out["row"] = [int(r) for r in self.rows]
        if self.parents is not None:
            out["parent"] = [int(p) for p in self.parents]
        for j, label in enumerate(self.labels):
            out[label] = [float(v) for v in self.values[:, j]]
        return out

    def to_rows(self) -> list[list]:
        """``[name, depth, *values]`` per row — the wire row shape."""
        return [
            [name, int(depth), *(float(v) for v in row)]
            for name, depth, row in zip(self.names, self.depths, self.values)
        ]

    # ------------------------------------------------------------------ #
    # wire adaptation
    # ------------------------------------------------------------------ #
    def to_snapshot(self, generation: int = 0):
        """Adapt to a :class:`~repro.server.wire.TableSnapshot`.

        The snapshot's ``view`` slot is ``"query"``; everything else —
        JSON payload shape, columnar framing, decode parity — is the
        ``/table`` machinery reused verbatim.
        """
        from repro.server.wire import TableSnapshot  # avoid a hard dep

        return TableSnapshot(
            view="query",
            generation=generation,
            names=self.names,
            depths=np.ascontiguousarray(self.depths, dtype=np.int64),
            labels=self.labels,
            values=np.ascontiguousarray(self.values, dtype=np.float64),
            truncated=self.truncated,
        )

    def to_payload(self, session: str = "") -> dict:
        """The JSON wire payload (same shape as ``GET /table``)."""
        payload = self.to_snapshot().to_json_payload(session)
        if self.categories:
            payload["categories"] = list(self.categories)
        return payload

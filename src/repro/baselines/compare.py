"""Quantifying gprof-style misattribution against exact CCT attribution.

For every caller→callee pair, the canonical CCT knows the *exact*
inclusive cost the callee incurred on behalf of that caller (the Callers
View's numbers, exposure-filtered for recursion).  gprof instead
apportions the callee's total by call counts.  The difference is the
measurable value of context-sensitive presentation: this module computes
both attributions side by side and summarizes the error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attribution import exposed_instances
from repro.core.cct import CCT
from repro.core.metrics import total as metric_total
from repro.baselines.gprof import GprofProfile

__all__ = ["ArcAttribution", "compare_attribution", "max_relative_error"]


@dataclass(frozen=True)
class ArcAttribution:
    """Exact vs estimated cost of one caller→callee relationship."""

    caller: str
    callee: str
    exact: float
    gprof_estimate: float

    @property
    def absolute_error(self) -> float:
        return abs(self.gprof_estimate - self.exact)

    @property
    def relative_error(self) -> float:
        if self.exact == 0.0:
            return 0.0 if self.gprof_estimate == 0.0 else float("inf")
        return self.absolute_error / self.exact


def exact_caller_costs(cct: CCT, mid: int) -> dict[tuple[str, str], float]:
    """Exact per-caller inclusive cost of every callee, from the CCT.

    For each (caller, callee) pair, sums the callee's inclusive cost over
    the exposed instances whose immediate caller is that procedure —
    exactly the first level of the Callers View.
    """
    groups: dict[tuple[str, str], list] = {}
    for frame in cct.frames():
        parent = frame.parent
        caller_frame = parent.enclosing_frame if parent is not None else None
        if caller_frame is None:
            continue
        key = (caller_frame.struct.name, frame.struct.name)
        groups.setdefault(key, []).append(frame)
    return {
        key: metric_total(n.inclusive for n in exposed_instances(frames)).get(mid, 0.0)
        for key, frames in groups.items()
    }


def compare_attribution(cct: CCT, mid: int) -> list[ArcAttribution]:
    """Exact vs gprof attribution for every arc, sorted by absolute error."""
    gprof = GprofProfile.from_cct(cct, mid)
    exact = exact_caller_costs(cct, mid)
    rows = []
    for (caller, callee), exact_cost in exact.items():
        if gprof.in_cycle(callee):
            # gprof reports cycle members as one unit; its per-caller
            # estimate is the whole cycle's cost apportioned by counts
            estimate = gprof.caller_share(caller, callee)
        else:
            estimate = gprof.caller_share(caller, callee)
        rows.append(
            ArcAttribution(
                caller=caller,
                callee=callee,
                exact=exact_cost,
                gprof_estimate=estimate,
            )
        )
    rows.sort(key=lambda r: -r.absolute_error)
    return rows


def max_relative_error(rows: list[ArcAttribution]) -> float:
    """Largest finite per-arc relative error in a comparison."""
    finite = [r.relative_error for r in rows if r.relative_error != float("inf")]
    return max(finite) if finite else 0.0

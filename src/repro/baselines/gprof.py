"""A gprof-style baseline profiler (context-insensitive call graph).

The paper's related work contrasts hpcviewer with gprof-class tools,
whose model is a *call graph*: per-procedure self time plus caller→callee
arcs with call counts — no calling contexts.  gprof estimates each
caller's share of a callee's total time by apportioning it
**proportionally to call counts**, assuming every call costs the same;
cycles (recursion) are collapsed into a single node because propagation
around a cycle is ill-defined.  Varley's classic critique [16] documents
how these assumptions mislead.

This module implements that model faithfully:

* :meth:`GprofProfile.from_cct` deliberately *discards* context from a
  canonical CCT, keeping exactly what gprof's measurement would see:
  self cost per procedure and arc call counts;
* propagation runs over the condensation of the call graph (Tarjan SCC),
  apportioning descendant cost to callers by arc counts;
* :func:`repro.baselines.compare` then quantifies how far these
  estimates fall from the CCT's exact context-sensitive attribution —
  the measurable argument for calling-context-aware presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cct import CCT, CCTKind, CCTNode
from repro.errors import ReproError

__all__ = ["GprofProfile", "Arc"]


@dataclass(frozen=True)
class Arc:
    """One caller→callee edge of the call graph."""

    caller: str
    callee: str
    calls: float


class GprofProfile:
    """Context-insensitive call-graph profile for one metric."""

    def __init__(self) -> None:
        #: per-procedure self cost (flat profile)
        self.self_cost: dict[str, float] = {}
        #: (caller, callee) -> call count
        self.arc_calls: dict[tuple[str, str], float] = {}
        #: estimated total (inclusive) cost per procedure, after propagation
        self.total_cost: dict[str, float] = {}
        #: procedures grouped into recursion cycles (gprof's <cycle N>)
        self.cycles: list[frozenset[str]] = []
        self._member_cycle: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_cct(cls, cct: CCT, mid: int) -> "GprofProfile":
        """Flatten a canonical CCT into what gprof would have measured.

        Arc call counts are taken as the number of distinct dynamic
        contexts exercising the arc — the best a context-free profiler
        could do under sampling without instrumented counts.
        """
        prof = cls()
        for frame in cct.frames():
            name = frame.struct.name
            prof.self_cost[name] = prof.self_cost.get(name, 0.0) + sum(
                v for k, v in frame.exclusive.items() if k == mid
            )
            parent = frame.parent
            caller_frame = parent.enclosing_frame if parent is not None else None
            if caller_frame is not None:
                arc = (caller_frame.struct.name, name)
                prof.arc_calls[arc] = prof.arc_calls.get(arc, 0.0) + 1.0
        prof._propagate()
        return prof

    # ------------------------------------------------------------------ #
    # the gprof algorithm: SCC condensation + proportional propagation
    # ------------------------------------------------------------------ #
    def _sccs(self) -> list[list[str]]:
        """Tarjan's strongly-connected components, iteratively."""
        graph: dict[str, list[str]] = {p: [] for p in self.self_cost}
        for (caller, callee) in self.arc_calls:
            graph.setdefault(caller, []).append(callee)
            graph.setdefault(callee, [])
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]

        for root in graph:
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, ci = work.pop()
                if ci == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = graph[node]
                while ci < len(children):
                    child = children[ci]
                    ci += 1
                    if child not in index:
                        work.append((node, ci))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if recurse:
                    continue
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    out.append(comp)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return out

    def _propagate(self) -> None:
        """Estimate per-procedure totals bottom-up over the condensation."""
        sccs = self._sccs()
        comp_of: dict[str, int] = {}
        for i, comp in enumerate(sccs):
            for proc in comp:
                comp_of[proc] = i
            if len(comp) > 1 or any(
                (p, p) in self.arc_calls for p in comp
            ):
                self.cycles.append(frozenset(comp))
                for p in comp:
                    self._member_cycle[p] = len(self.cycles) - 1

        # component DAG: Tarjan emits components in reverse topological
        # order (callees before callers), so one pass suffices
        comp_total = [sum(self.self_cost.get(p, 0.0) for p in comp) for comp in sccs]
        calls_into: dict[int, float] = {}
        for (caller, callee), calls in self.arc_calls.items():
            ci, cj = comp_of[caller], comp_of[callee]
            if ci != cj:
                calls_into[cj] = calls_into.get(cj, 0.0) + calls

        comp_inclusive = list(comp_total)
        for j, comp in enumerate(sccs):
            # distribute this component's inclusive cost to callers by counts
            incoming = calls_into.get(j, 0.0)
            if incoming <= 0:
                continue
            for (caller, callee), calls in self.arc_calls.items():
                if comp_of[callee] == j and comp_of[caller] != j:
                    share = comp_inclusive[j] * calls / incoming
                    comp_inclusive[comp_of[caller]] += share

        # per-procedure totals: members of a cycle share the cycle total
        # (gprof reports the cycle as a unit); singletons get theirs exactly
        for j, comp in enumerate(sccs):
            for proc in comp:
                self.total_cost[proc] = comp_inclusive[j]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def caller_share(self, caller: str, callee: str) -> float:
        """gprof's estimate of the callee cost attributable to one caller.

        Apportioned by call counts: ``total(callee) x arc/Σarcs`` — the
        uniform-cost-per-call assumption under test.
        """
        arc = self.arc_calls.get((caller, callee))
        if arc is None:
            raise ReproError(f"no arc {caller} -> {callee}")
        incoming = sum(
            calls for (c, e), calls in self.arc_calls.items() if e == callee
        )
        return self.total_cost.get(callee, 0.0) * arc / incoming

    def in_cycle(self, proc: str) -> bool:
        return proc in self._member_cycle

    def flat_profile(self) -> list[tuple[str, float, float]]:
        """gprof's flat profile: (name, self, estimated total), by self."""
        rows = [
            (name, self.self_cost.get(name, 0.0), self.total_cost.get(name, 0.0))
            for name in self.self_cost
        ]
        rows.sort(key=lambda r: -r[1])
        return rows

    def report(self, top: int = 20) -> str:
        """A gprof-style textual listing (flat profile + call graph)."""
        lines = ["flat profile (self cost):", f"{'self':>12} {'total est.':>12}  name"]
        for name, self_c, total_c in self.flat_profile()[:top]:
            cycle = "  <cycle>" if self.in_cycle(name) else ""
            lines.append(f"{self_c:>12.4g} {total_c:>12.4g}  {name}{cycle}")
        lines.append("")
        lines.append("call graph arcs (calls):")
        for (caller, callee), calls in sorted(self.arc_calls.items()):
            lines.append(f"  {caller} -> {callee}  x{calls:g}")
        return "\n".join(lines)

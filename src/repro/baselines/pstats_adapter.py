"""Adapter: Python's built-in cProfile as a call-graph baseline.

``cProfile`` is the ecosystem's stock profiler and a live example of the
gprof model the paper's related work discusses: it records per-function
timings plus caller→callee arcs — *no calling contexts*.  This adapter
converts a finished ``cProfile.Profile`` (or ``pstats.Stats``) into a
:class:`~repro.baselines.gprof.GprofProfile`, so the same comparison
machinery (`repro.baselines.compare`) quantifies stdlib-profiler
attribution against this library's exact context-sensitive views on the
very same workload.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Callable

from repro.baselines.gprof import GprofProfile
from repro.errors import ReproError

__all__ = ["gprof_from_pstats", "profile_with_cprofile"]


def _label(func_key: tuple) -> str:
    """pstats function key -> display name matching our qualname style."""
    filename, _line, name = func_key
    if filename.startswith("<") or filename == "~":
        return name.strip("<>") if name.startswith("<built-in") else name
    return name


def gprof_from_pstats(stats: "pstats.Stats | cProfile.Profile") -> GprofProfile:
    """Build a gprof-style profile from cProfile measurement.

    Self cost is ``tottime`` (seconds); arcs carry cProfile's exact call
    counts — *better* information than our sampled-arc approximation, so
    any remaining misattribution is attributable purely to the missing
    contexts, which is the point of the comparison.
    """
    if isinstance(stats, cProfile.Profile):
        stats = pstats.Stats(stats)
    raw = getattr(stats, "stats", None)
    if raw is None:
        raise ReproError("expected a pstats.Stats or cProfile.Profile")
    gprof = GprofProfile()
    for func_key, (_cc, _nc, tottime, _cumtime, callers) in raw.items():
        callee = _label(func_key)
        gprof.self_cost[callee] = gprof.self_cost.get(callee, 0.0) + tottime
        for caller_key, caller_stats in callers.items():
            caller = _label(caller_key)
            # caller_stats: (cc, nc, tottime, cumtime) for this arc
            ncalls = float(caller_stats[0])
            arc = (caller, callee)
            gprof.arc_calls[arc] = gprof.arc_calls.get(arc, 0.0) + ncalls
    gprof._propagate()
    return gprof


def profile_with_cprofile(fn: Callable, *args, **kwargs):
    """Run *fn* under cProfile; returns ``(result, GprofProfile)``."""
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    return result, gprof_from_pstats(profiler)

"""Comparator baselines: the gprof call-graph model and its evaluation."""

"""The paper's contribution: views, attribution, hot paths, derived metrics."""

"""Common infrastructure for the three presentation views.

A *view* is a tree (or forest) of :class:`ViewNode`\\ s over the metric
space of one experiment.  The three concrete views — Calling Context
(:mod:`repro.core.ccview`), Callers (:mod:`repro.core.callers`) and Flat
(:mod:`repro.core.flat`) — differ only in how nodes are derived from the
canonical CCT; presentation machinery (sorting, hot-path expansion,
rendering, derived-metric columns) is shared and operates on this
interface.

Scalability: a ``ViewNode`` may be *lazy* — its children are produced by
an expander callback on first access (Section VII: "the Callers View is
constructed dynamically … we store and process data only when needed").
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import ViewError
from repro.core.metrics import (
    MetricFlavor,
    MetricKind,
    MetricSpec,
    MetricTable,
    MetricValues,
)

__all__ = ["ViewKind", "NodeCategory", "ViewNode", "View"]


class ViewKind(Enum):
    CALLING_CONTEXT = "calling-context"
    CALLERS = "callers"
    FLAT = "flat"


class NodeCategory(Enum):
    """What a view node represents — drives display icons and semantics."""

    ROOT = "root"
    LOAD_MODULE = "load-module"
    FILE = "file"
    PROCEDURE = "procedure"
    PROCEDURE_FRAME = "frame"
    CALLER = "caller"            # a caller entry in the Callers View
    CALL_SITE = "call-site"      # fused call-site/callee line
    LOOP = "loop"
    INLINED = "inlined"
    STATEMENT = "statement"


class ViewNode:
    """One row of a view's navigation pane plus its metric values."""

    __slots__ = (
        "name",
        "category",
        "struct",
        "line",
        "file",
        "inclusive",
        "exclusive",
        "parent",
        "cct_nodes",
        "_children",
        "_expander",
        "has_source",
    )

    def __init__(
        self,
        name: str,
        category: NodeCategory,
        inclusive: MetricValues | None = None,
        exclusive: MetricValues | None = None,
        struct=None,
        line: int = 0,
        file: str = "",
        parent: Optional["ViewNode"] = None,
        cct_nodes: Sequence | None = None,
        expander: Callable[["ViewNode"], list["ViewNode"]] | None = None,
        has_source: bool = True,
    ) -> None:
        self.name = name
        self.category = category
        self.struct = struct
        self.line = line
        self.file = file or (struct.location.file if struct is not None else "")
        self.inclusive: MetricValues = inclusive if inclusive is not None else {}
        self.exclusive: MetricValues = exclusive if exclusive is not None else {}
        self.parent = parent
        #: underlying CCT scopes this row aggregates (drill-down support)
        self.cct_nodes = list(cct_nodes) if cct_nodes else []
        self._children: list[ViewNode] | None = None
        self._expander = expander
        #: False for binary-only scopes shown "in plain black" (no source)
        self.has_source = has_source

    # ------------------------------------------------------------------ #
    @property
    def children(self) -> list["ViewNode"]:
        """Child rows; lazily constructed on first access."""
        if self._children is None:
            if self._expander is None:
                self._children = []
            else:
                expander, self._expander = self._expander, None
                self._children = expander(self)
                for child in self._children:
                    child.parent = self
        return self._children

    @property
    def is_expanded(self) -> bool:
        """True when children have been materialized (lazy-construction probe)."""
        return self._children is not None

    @property
    def is_leaf(self) -> bool:
        """True when the node is known to have no children.

        For unexpanded lazy nodes this forces expansion — callers that only
        want a cheap hint should check :attr:`is_expanded` first.
        """
        return not self.children

    def set_children(self, children: list["ViewNode"]) -> None:
        self._children = list(children)
        for child in self._children:
            child.parent = self

    def value(self, spec: MetricSpec) -> float:
        """The value of one metric column at this row (0.0 when absent)."""
        source = (
            self.inclusive if spec.flavor is MetricFlavor.INCLUSIVE else self.exclusive
        )
        return source.get(spec.mid, 0.0)

    def walk(self, max_depth: int | None = None) -> Iterator["ViewNode"]:
        """Preorder traversal; expands lazy children as it goes."""
        stack: list[tuple[ViewNode, int]] = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            yield node
            if max_depth is None or depth < max_depth:
                stack.extend((c, depth + 1) for c in reversed(node.children))

    def ancestors(self) -> Iterator["ViewNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def depth(self) -> int:
        return sum(1 for _ in self.ancestors())

    def location(self) -> str:
        if self.file and self.line:
            return f"{self.file}:{self.line}"
        return self.file

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ViewNode {self.category.value} {self.name!r}>"


class View:
    """Base class for the three views: a forest of rows over one metric table."""

    kind: ViewKind

    def __init__(
        self,
        metrics: MetricTable,
        title: str = "",
        totals: MetricValues | None = None,
        engine=None,
    ) -> None:
        self.metrics = metrics
        self.title = title or type(self).__name__
        #: experiment-aggregate inclusive totals (percentage denominators);
        #: normally the CCT root's inclusive vector
        self.totals: MetricValues = dict(totals) if totals else {}
        #: optional columnar :class:`~repro.core.engine.MetricEngine` over
        #: the backing CCT; when present, ``total`` and ``sorted_children``
        #: read measured columns from its matrices instead of the dicts
        self.engine = engine
        self._roots: list[ViewNode] | None = None
        #: guards lazy root construction under concurrent first access
        #: (the analysis server renders one view from many threads)
        self._build_lock = threading.Lock()
        #: derived metrics currently being evaluated (cycle detection)
        self._eval_guard: set[int] = set()
        #: per-view memo of evaluated derived cells, keyed by
        #: ``(id(row), mid, flavor)``.  Derived values must NOT be cached
        #: in a row's own metric dicts: view rows alias the underlying
        #: CCT nodes' vectors, so a write there would leak the derived
        #: column into every other view's raw aggregation of the same
        #: scopes (an order-dependence the server's stateful equivalence
        #: suite caught).  Rows are reachable from ``_roots``, so the
        #: ``id()`` keys stay unique for the cache's lifetime.
        self._derived_cache: dict[tuple[int, int, MetricFlavor], float] = {}

    # -- to be provided by subclasses ----------------------------------- #
    def _build_roots(self) -> list[ViewNode]:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    @property
    def roots(self) -> list[ViewNode]:
        if self._roots is None:
            with self._build_lock:
                if self._roots is None:
                    self._roots = self._build_roots()
        return self._roots

    def invalidate(self) -> None:
        """Drop materialized rows (e.g. after adding a derived metric)."""
        self._roots = None
        self._derived_cache.clear()

    def _aggregate_exposed(self, instances) -> tuple[MetricValues, MetricValues]:
        """Exposed-instance aggregation for row construction (Sec. IV-B).

        Dispatches to the columnar engine's kernel when one is attached
        (bit-identical results; see the engine's docstring), else to the
        dict-path reference in :mod:`repro.core.attribution`.
        """
        if self.engine is not None:
            return self.engine.aggregate_exposed(instances)
        from repro.core.attribution import aggregate_exposed

        return aggregate_exposed(instances)

    def value(self, node: ViewNode, spec: MetricSpec) -> float:
        """The value of a metric column at a row, evaluating derived metrics.

        Measured metrics come straight from the row's aggregated values.
        Derived metrics are evaluated *per row* from the row's own column
        values (so ratios are ratios of aggregates, not aggregates of
        ratios), in the same inclusive/exclusive flavour as the requested
        cell, and memoized per view (never written back into the row's
        metric dicts, which may be shared with other views — see
        ``_derived_cache``).
        """
        desc = self.metrics.by_id(spec.mid)
        if desc.kind is not MetricKind.DERIVED:
            return node.value(spec)
        store = (
            node.inclusive
            if spec.flavor is MetricFlavor.INCLUSIVE
            else node.exclusive
        )
        if spec.mid in store:
            # pre-materialized (e.g. summary columns from a database)
            return store[spec.mid]
        cache_key = (id(node), spec.mid, spec.flavor)
        cached = self._derived_cache.get(cache_key)
        if cached is not None:
            return cached
        from repro.core.derived import evaluate  # local import: avoid cycle

        active = self._eval_guard
        if spec.mid in active:
            raise ViewError(
                f"cyclic derived-metric reference involving {desc.name!r}"
            )
        active.add(spec.mid)
        try:
            result = evaluate(
                desc.formula,
                resolver=lambda mid: self.value(node, MetricSpec(mid, spec.flavor)),
            )
        finally:
            active.discard(spec.mid)
        self._derived_cache[cache_key] = result
        return result

    def sorted_children(
        self, node: ViewNode | None, spec: MetricSpec, descending: bool = True
    ) -> list[ViewNode]:
        """Children of *node* (roots if None) ordered by a metric column.

        This implements the paper's rule that "scopes at each level of the
        nesting in the navigation pane are sorted according to the selected
        metric column".
        """
        rows = self.roots if node is None else node.children
        engine = self.engine
        if (
            engine is not None
            and len(rows) > 1
            and spec.mid < engine.num_metrics
            and self.metrics.by_id(spec.mid).kind is not MetricKind.DERIVED
        ):
            import numpy as np  # engine present implies numpy available

            values = engine.gather_view_values(rows, spec)
            # stable argsort on the negated column == sorted(reverse=True)
            order = np.argsort(-values if descending else values, kind="stable")
            return [rows[i] for i in order]
        return sorted(rows, key=lambda r: self.value(r, spec), reverse=descending)

    def gather_columns(self, rows: Sequence[ViewNode], specs: Sequence[MetricSpec]):
        """Metric cells for *rows* as a ``(len(rows), len(specs))`` matrix.

        The bulk serialization path: measured columns are gathered
        straight from the engine matrices (one fancy-index read per
        column, no per-row dict assembly); derived columns — and rows a
        view synthesized without engine backing — fall back to
        :meth:`value` cell by cell, so the matrix is always exactly what
        a row-at-a-time render would have shown.
        """
        import numpy as np  # deferred like sorted_children: numpy is
        # guaranteed wherever an engine exists, and the fallback path
        # only needs it for the output buffer

        out = np.empty((len(rows), len(specs)), dtype=np.float64)
        for j, spec in enumerate(specs):
            desc = self.metrics.by_id(spec.mid)
            if (
                self.engine is not None
                and spec.mid < self.engine.num_metrics
                and desc.kind is not MetricKind.DERIVED
            ):
                out[:, j] = self.engine.gather_view_values(rows, spec)
            else:
                for i, row in enumerate(rows):
                    out[i, j] = self.value(row, spec)
        return out

    def total(self, spec: MetricSpec) -> float:
        """Aggregate total of a column — the denominator for percentages."""
        desc = self.metrics.by_id(spec.mid)
        if desc.kind is MetricKind.DERIVED:
            from repro.core.derived import evaluate  # local import: avoid cycle

            return evaluate(
                desc.formula,
                resolver=lambda mid: self.total(MetricSpec(mid, spec.flavor)),
            )
        if self.totals:
            return self.totals.get(spec.mid, 0.0)
        if self.engine is not None and spec.mid < self.engine.num_metrics:
            return self.engine.total(spec.mid)
        incl = MetricSpec(spec.mid, MetricFlavor.INCLUSIVE)
        return sum(self.value(r, incl) for r in self.roots)

    def find(self, name: str, category: NodeCategory | None = None) -> ViewNode:
        """Depth-first search for a row by display name (testing helper)."""
        for root in self.roots:
            for node in root.walk():
                if node.name == name and (category is None or node.category is category):
                    return node
        raise ViewError(f"no row named {name!r} in {self.title}")

    def find_all(self, name: str) -> list[ViewNode]:
        out = []
        for root in self.roots:
            out.extend(n for n in root.walk() if n.name == name)
        return out

"""Scope filters — deemphasizing what doesn't matter (legacy shim).

"A set of performance data often includes measurements for procedures
that consume very few resources and are therefore unimportant from the
perspective of diagnosing performance bottlenecks.  A presentation tool
should deemphasize this data."  hpcviewer's descendants grew an explicit
filter facility; this module provides the equivalent for our views:

* **pattern filters** match scopes by glob on name and/or category and
  either *elide* them (splice their children into the parent — like
  flattening a single scope, so costs never disappear) or *prune* them
  (drop the whole subtree from display);
* **threshold filters** hide rows whose share of the experiment total
  falls below a cutoff — the automated version of "keep attention on
  scopes where performance is of interest".

Filters are display transforms: they build a parallel forest of the same
:class:`ViewNode` objects and never mutate the underlying views or CCT.

:meth:`FilterSet.apply` and :meth:`FilterSet.children_of` now evaluate
through the query engine (:mod:`repro.query.compat`) — batched name
matching over the name vocabulary and one metric gather for the
threshold — and emit a :class:`DeprecationWarning` pointing at the
equivalent query forms (``.filter()`` / ``.prune()`` / ``.squash()``;
see docs/query.md).  Results are bit-identical to the original per-node
walk (pinned by ``tests/test_query_shims.py``).
"""

from __future__ import annotations

import fnmatch
import warnings
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.errors import ViewError
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import NodeCategory, View, ViewNode

__all__ = ["FilterAction", "ScopeFilter", "ThresholdFilter", "FilterSet"]

_DEPRECATION = (
    "FilterSet.apply()/children_of() are deprecated; use "
    "repro.query.query() with .filter()/.prune()/.squash() instead "
    "(see docs/query.md)"
)


class FilterAction(Enum):
    ELIDE = "elide"    # hide the scope, keep its children (costs preserved)
    PRUNE = "prune"    # hide the scope and its whole subtree


@dataclass(frozen=True)
class ScopeFilter:
    """Match scopes by name glob and (optionally) category."""

    pattern: str
    action: FilterAction = FilterAction.ELIDE
    categories: tuple[NodeCategory, ...] = ()

    def matches(self, node: ViewNode) -> bool:
        if self.categories and node.category not in self.categories:
            return False
        return fnmatch.fnmatchcase(node.name, self.pattern)


@dataclass(frozen=True)
class ThresholdFilter:
    """Hide rows below a share of the experiment-aggregate total."""

    spec: MetricSpec
    min_share: float = 0.01  # 1%

    def __post_init__(self) -> None:
        if not (0.0 <= self.min_share <= 1.0):
            raise ViewError(
                f"min_share must be within [0, 1], got {self.min_share}"
            )

    def passes(self, view: View, node: ViewNode) -> bool:
        total = view.total(self.spec)
        if total == 0.0:
            return True
        incl = MetricSpec(self.spec.mid, MetricFlavor.INCLUSIVE)
        return view.value(node, incl) >= self.min_share * total


class FilterSet:
    """An ordered collection of filters applied to a view's forest."""

    def __init__(
        self,
        scope_filters: Iterable[ScopeFilter] = (),
        threshold: ThresholdFilter | None = None,
    ) -> None:
        self.scope_filters = list(scope_filters)
        self.threshold = threshold

    # ------------------------------------------------------------------ #
    def add(self, pattern: str, action: FilterAction = FilterAction.ELIDE,
            categories: Sequence[NodeCategory] = ()) -> "FilterSet":
        self.scope_filters.append(
            ScopeFilter(pattern, action, tuple(categories))
        )
        return self

    def set_threshold(self, spec: MetricSpec, min_share: float) -> "FilterSet":
        self.threshold = ThresholdFilter(spec, min_share)
        return self

    # ------------------------------------------------------------------ #
    def _action_for(self, node: ViewNode) -> FilterAction | None:
        for filt in self.scope_filters:
            if filt.matches(node):
                return filt.action
        return None

    def apply(self, view: View, roots: Sequence[ViewNode] | None = None
              ) -> list[ViewNode]:
        """The filtered forest (same node objects; display-only).

        .. deprecated::
            Use :func:`repro.query.query` with ``.filter()`` /
            ``.prune()`` / ``.squash()``; this shim forwards to the
            query engine and returns identical results.
        """
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        from repro.query.compat import filter_forest  # lazy: keep import light

        return filter_forest(self, view, roots)

    def children_of(self, view: View, node: ViewNode) -> list[ViewNode]:
        """Filtered children (for renderers walking the filtered forest).

        .. deprecated::
            Use :func:`repro.query.query`; see :meth:`apply`.
        """
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        from repro.query.compat import filter_children

        return filter_children(self, view, node)

    def __len__(self) -> int:
        return len(self.scope_filters) + (1 if self.threshold else 0)

"""Derived metrics (Section V-D): spreadsheet-like formulas over columns.

A derived metric is defined by a formula that refers to other metrics by
``$n`` (the metric with id *n*), e.g. the paper's floating-point waste::

    waste = cycles x peak_flops_per_cycle - flops      ->   "4 * $0 - $1"

and relative efficiency::

    efficiency = flops / (cycles x peak)               ->   "$1 / (4 * $0)"

The formula language supports:

* column references ``$n`` (value taken in the same inclusive/exclusive
  flavour as the cell being computed);
* numeric literals (including scientific notation), ``+ - * / ^``,
  parentheses, unary minus;
* functions ``abs, sqrt, exp, log, log2, log10, floor, ceil, min, max``;
* constants ``pi`` and ``e``.

Division by zero yields 0.0 rather than an error: a scope that executed
no denominator events has no meaningful ratio, and 0 keeps sorting and
blank-cell display well-behaved (hpcviewer likewise renders such cells
as empty).

Derived metrics compose: a formula may reference another derived column;
reference cycles are detected and reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Union

from repro.errors import FormulaError
from repro.core.metrics import MetricDescriptor, MetricKind, MetricTable

__all__ = [
    "parse_formula",
    "evaluate",
    "formula_columns",
    "define_derived",
    "flop_waste_formula",
    "relative_efficiency_formula",
]

# --------------------------------------------------------------------- #
# AST
# --------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class Num:
    value: float


@dataclass(frozen=True, slots=True)
class Col:
    mid: int


@dataclass(frozen=True, slots=True)
class UnaryOp:
    op: str
    operand: "Expr"


@dataclass(frozen=True, slots=True)
class BinaryOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class Func:
    name: str
    args: tuple["Expr", ...]


Expr = Union[Num, Col, UnaryOp, BinaryOp, Func]

_CONSTANTS = {"pi": math.pi, "e": math.e}
_FUNCTIONS: dict[str, tuple[int, Callable]] = {
    "abs": (1, abs),
    "sqrt": (1, lambda x: math.sqrt(x) if x >= 0 else 0.0),
    "exp": (1, math.exp),
    "log": (1, lambda x: math.log(x) if x > 0 else 0.0),
    "log2": (1, lambda x: math.log2(x) if x > 0 else 0.0),
    "log10": (1, lambda x: math.log10(x) if x > 0 else 0.0),
    "floor": (1, math.floor),
    "ceil": (1, math.ceil),
    "min": (2, min),
    "max": (2, max),
}


# --------------------------------------------------------------------- #
# tokenizer
# --------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # num, col, name, op, lparen, rparen, comma, end
    text: str
    pos: int


def _digit(ch: str) -> bool:
    # ASCII only: str.isdigit() accepts characters like '²' that
    # float()/int() reject, which would turn a lex success into a
    # ValueError at parse time
    return "0" <= ch <= "9"


def _tokenize(src: str) -> Iterator[_Token]:
    i, n = 0, len(src)
    while i < n:
        ch = src[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "$":
            j = i + 1
            while j < n and _digit(src[j]):
                j += 1
            if j == i + 1:
                raise FormulaError(f"'$' must be followed by a column number (pos {i})")
            yield _Token("col", src[i + 1 : j], i)
            i = j
        elif _digit(ch) or (ch == "." and i + 1 < n and _digit(src[i + 1])):
            j = i
            seen_exp = False
            while j < n:
                c = src[j]
                if _digit(c) or c == ".":
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n and (
                    _digit(src[j + 1]) or src[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 2 if src[j + 1] in "+-" else 1
                else:
                    break
            yield _Token("num", src[i:j], i)
            i = j
        elif ch.isalpha() or ch == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            yield _Token("name", src[i:j], i)
            i = j
        elif ch in "+-*/^":
            yield _Token("op", ch, i)
            i += 1
        elif ch == "(":
            yield _Token("lparen", ch, i)
            i += 1
        elif ch == ")":
            yield _Token("rparen", ch, i)
            i += 1
        elif ch == ",":
            yield _Token("comma", ch, i)
            i += 1
        else:
            raise FormulaError(f"unexpected character {ch!r} at position {i}")
    yield _Token("end", "", n)


# --------------------------------------------------------------------- #
# parser (recursive descent; ^ is right-associative and binds tightest)
# --------------------------------------------------------------------- #
class _Parser:
    def __init__(self, src: str) -> None:
        self.src = src
        self.tokens = list(_tokenize(src))
        self.pos = 0

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str) -> _Token:
        tok = self.advance()
        if tok.kind != kind:
            raise FormulaError(
                f"expected {kind} at position {tok.pos} in {self.src!r}, "
                f"got {tok.text!r}"
            )
        return tok

    def parse(self) -> Expr:
        expr = self.expr()
        tok = self.peek()
        if tok.kind != "end":
            raise FormulaError(
                f"unexpected trailing input {tok.text!r} at position {tok.pos}"
            )
        return expr

    def expr(self) -> Expr:  # additive
        node = self.term()
        while self.peek().kind == "op" and self.peek().text in "+-":
            op = self.advance().text
            node = BinaryOp(op, node, self.term())
        return node

    def term(self) -> Expr:  # multiplicative
        node = self.unary()
        while self.peek().kind == "op" and self.peek().text in "*/":
            op = self.advance().text
            node = BinaryOp(op, node, self.unary())
        return node

    def unary(self) -> Expr:
        # unary minus binds looser than ^, so "-2^2" is -(2^2) = -4
        tok = self.peek()
        if tok.kind == "op" and tok.text in "+-":
            self.advance()
            operand = self.unary()
            return operand if tok.text == "+" else UnaryOp("-", operand)
        return self.power()

    def power(self) -> Expr:
        node = self.atom()
        if self.peek().kind == "op" and self.peek().text == "^":
            self.advance()
            return BinaryOp("^", node, self.unary())  # right associative
        return node

    def atom(self) -> Expr:
        tok = self.advance()
        if tok.kind == "num":
            try:
                return Num(float(tok.text))
            except ValueError:
                raise FormulaError(
                    f"malformed number {tok.text!r} at position {tok.pos}"
                ) from None
        if tok.kind == "col":
            return Col(int(tok.text))
        if tok.kind == "name":
            if tok.text in _CONSTANTS:
                return Num(_CONSTANTS[tok.text])
            if tok.text in _FUNCTIONS:
                arity, _fn = _FUNCTIONS[tok.text]
                self.expect("lparen")
                args = [self.expr()]
                while self.peek().kind == "comma":
                    self.advance()
                    args.append(self.expr())
                self.expect("rparen")
                if len(args) != arity:
                    raise FormulaError(
                        f"{tok.text} expects {arity} argument(s), got {len(args)}"
                    )
                return Func(tok.text, tuple(args))
            raise FormulaError(f"unknown identifier {tok.text!r} at position {tok.pos}")
        if tok.kind == "lparen":
            node = self.expr()
            self.expect("rparen")
            return node
        raise FormulaError(f"unexpected token {tok.text!r} at position {tok.pos}")


_parse_cache: dict[str, Expr] = {}


def parse_formula(src: str) -> Expr:
    """Parse a derived-metric formula, with caching."""
    if not src or not src.strip():
        raise FormulaError("empty formula")
    ast = _parse_cache.get(src)
    if ast is None:
        ast = _Parser(src).parse()
        _parse_cache[src] = ast
    return ast


# --------------------------------------------------------------------- #
# evaluation
# --------------------------------------------------------------------- #
def evaluate(expr: Expr | str, resolver: Callable[[int], float]) -> float:
    """Evaluate a formula; ``resolver(mid)`` supplies column values."""
    if isinstance(expr, str):
        expr = parse_formula(expr)
    return _eval(expr, resolver)


def _eval(expr: Expr, resolver: Callable[[int], float]) -> float:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Col):
        return float(resolver(expr.mid))
    if isinstance(expr, UnaryOp):
        return -_eval(expr.operand, resolver)
    if isinstance(expr, BinaryOp):
        left = _eval(expr.left, resolver)
        right = _eval(expr.right, resolver)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0.0 else 0.0
        if expr.op == "^":
            try:
                return float(left**right)
            except (OverflowError, ValueError):
                return 0.0
    if isinstance(expr, Func):
        _arity, fn = _FUNCTIONS[expr.name]
        return float(fn(*(_eval(a, resolver) for a in expr.args)))
    raise FormulaError(f"cannot evaluate {expr!r}")  # pragma: no cover


def formula_columns(expr: Expr | str) -> set[int]:
    """The set of column ids a formula references (cycle detection input)."""
    if isinstance(expr, str):
        expr = parse_formula(expr)
    out: set[int] = set()

    def visit(node: Expr) -> None:
        if isinstance(node, Col):
            out.add(node.mid)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, BinaryOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, Func):
            for arg in node.args:
                visit(arg)

    visit(expr)
    return out


def define_derived(
    metrics: MetricTable,
    name: str,
    formula: str,
    unit: str = "",
    description: str = "",
    show_percent: bool = False,
) -> MetricDescriptor:
    """Register a derived metric on a metric table.

    The formula is parsed eagerly so malformed definitions fail at
    definition time, and column references are checked against the table
    (a formula may reference any already-registered metric, including
    other derived metrics; self/forward references are impossible because
    the new id is assigned after validation).
    """
    ast = parse_formula(formula)
    for mid in formula_columns(ast):
        metrics.by_id(mid)  # raises MetricError for unknown columns
    return metrics.add(
        name,
        unit=unit,
        kind=MetricKind.DERIVED,
        formula=formula,
        description=description,
        show_percent=show_percent,
    )


# --------------------------------------------------------------------- #
# the paper's canonical derived metrics (Section V-D)
# --------------------------------------------------------------------- #
def flop_waste_formula(cycles_mid: int, flops_mid: int, peak_flops_per_cycle: float) -> str:
    """Floating-point waste: cycles x peak - actual FLOPs executed."""
    return f"{peak_flops_per_cycle} * ${cycles_mid} - ${flops_mid}"


def relative_efficiency_formula(
    cycles_mid: int, flops_mid: int, peak_flops_per_cycle: float
) -> str:
    """Relative efficiency: measured FLOPS / potential peak FLOPS."""
    return f"${flops_mid} / ({peak_flops_per_cycle} * ${cycles_mid})"

"""The canonical calling context tree (canonical CCT).

The canonical CCT is the paper's central data structure (Section IV): a
fusion of dynamic calling context — a sequence of <call site, callee>
pairs — with static program structure (loop nests, inlined code,
statements).  Every scope in the tree is either *dynamic* (procedure
frames, call sites) or *static* (loops, statements); the hybrid
exclusive-metric rule of Eq. 1 dispatches on this classification.

Tree shape invariants:

* The root's children are procedure frames of entry points (e.g. ``main``).
* A ``FRAME``'s children are the static scopes executed inside it — loops
  and statements — plus ``CALL_SITE`` scopes at the source position of each
  call (call sites nest inside the loops that contain them).
* A ``CALL_SITE``'s children are the ``FRAME``\\ s of its callees (usually
  one; more with function pointers / virtual dispatch).
* ``STATEMENT`` scopes are leaves; raw sample costs live on statements and
  on call-site scopes (a sample whose program counter sits at the call
  instruction itself).

Raw metric values (``node.raw``) are what measurement produces; the
attributed ``exclusive`` / ``inclusive`` values are computed by
:mod:`repro.core.attribution`.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Callable, Iterator, Optional

from repro.errors import CorrelationError
from repro.core.metrics import MetricValues, add_into
from repro.hpcstruct.model import StructKind, StructureNode

__all__ = ["CCTKind", "CCTNode", "CCT"]


class CCTKind(Enum):
    """Kinds of scopes appearing in a canonical CCT."""

    ROOT = "root"
    FRAME = "procedure-frame"    # dynamic: one invocation context of a procedure
    CALL_SITE = "call-site"      # dynamic: the call itself, at a source line
    LOOP = "loop"                # static: a loop nest level
    STATEMENT = "statement"      # static: a source line

    @property
    def is_dynamic(self) -> bool:
        """Dynamic scopes represent caller–callee relationships (Sec. IV-A)."""
        return self in (CCTKind.FRAME, CCTKind.CALL_SITE)

    @property
    def is_static(self) -> bool:
        return self in (CCTKind.LOOP, CCTKind.STATEMENT)


_uid_counter = itertools.count(1)


class CCTNode:
    """One scope instance in a canonical CCT."""

    __slots__ = (
        "uid",
        "kind",
        "struct",
        "line",
        "parent",
        "children",
        "raw",
        "exclusive",
        "inclusive",
        "_child_index",
    )

    def __init__(
        self,
        kind: CCTKind,
        struct: StructureNode | None = None,
        line: int = 0,
        parent: Optional["CCTNode"] = None,
    ) -> None:
        self.uid: int = next(_uid_counter)
        self.kind = kind
        #: associated static scope: the procedure for FRAMEs, the loop for
        #: LOOPs, the innermost enclosing static scope for statements and
        #: call sites (used to recover file/procedure identity).
        self.struct = struct
        #: source line for CALL_SITE / STATEMENT scopes
        self.line = line
        self.parent = parent
        self.children: list[CCTNode] = []
        self.raw: MetricValues = {}
        self.exclusive: MetricValues = {}
        self.inclusive: MetricValues = {}
        self._child_index: dict[tuple, CCTNode] = {}
        if parent is not None:
            parent._attach(self)

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def key(self) -> tuple:
        """Identity of this scope among its siblings (used for merging)."""
        struct_id = self.struct.uid if self.struct is not None else 0
        return (self.kind.value, struct_id, self.line)

    @property
    def name(self) -> str:
        """Display name of the scope."""
        if self.kind is CCTKind.ROOT:
            return "<program root>"
        if self.kind is CCTKind.FRAME:
            return self.struct.name if self.struct is not None else "<unknown>"
        if self.kind is CCTKind.LOOP:
            if self.struct is None:
                return "loop"
            if self.struct.kind is StructKind.INLINED_PROC:
                return self.struct.name  # inlined code keeps its identity
            return f"loop at {self.struct.location}"
        file = self.file
        return f"{file}:{self.line}" if file else f"line {self.line}"

    @property
    def file(self) -> str:
        if self.struct is None:
            return ""
        file_scope = self.struct.enclosing_file
        if file_scope is not None:
            return file_scope.name
        return self.struct.location.file

    @property
    def procedure(self) -> StructureNode | None:
        """The static procedure this scope belongs to.

        For a FRAME this is its own procedure; for inner scopes it is the
        procedure of the enclosing frame.
        """
        if self.kind is CCTKind.FRAME:
            return self.struct
        frame = self.enclosing_frame
        return frame.struct if frame is not None else None

    @property
    def enclosing_frame(self) -> Optional["CCTNode"]:
        """The innermost enclosing procedure frame (self, if a frame)."""
        node: CCTNode | None = self
        while node is not None:
            if node.kind is CCTKind.FRAME:
                return node
            node = node.parent
        return None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _attach(self, child: "CCTNode") -> None:
        self._child_index[child.key] = child
        self.children.append(child)
        child.parent = self

    def _ensure(self, kind: CCTKind, struct: StructureNode | None, line: int) -> "CCTNode":
        struct_id = struct.uid if struct is not None else 0
        key = (kind.value, struct_id, line)
        node = self._child_index.get(key)
        if node is None:
            node = CCTNode(kind, struct=struct, line=line, parent=self)
        return node

    def ensure_frame(self, proc: StructureNode) -> "CCTNode":
        """Get or create the callee frame for *proc* under this scope."""
        if proc.kind not in (StructKind.PROCEDURE, StructKind.INLINED_PROC):
            raise CorrelationError(f"frame requires a procedure scope, got {proc.kind}")
        if self.kind not in (CCTKind.ROOT, CCTKind.CALL_SITE):
            raise CorrelationError(
                f"procedure frames may only appear under the root or a call "
                f"site, not under {self.kind.value}"
            )
        return self._ensure(CCTKind.FRAME, proc, 0)

    def ensure_loop(self, loop: StructureNode) -> "CCTNode":
        if not loop.kind.is_loop and loop.kind is not StructKind.INLINED_PROC:
            raise CorrelationError(f"loop scope requires a loop, got {loop.kind}")
        return self._ensure(CCTKind.LOOP, loop, loop.location.line)

    def ensure_call_site(self, line: int, struct: StructureNode | None = None) -> "CCTNode":
        return self._ensure(CCTKind.CALL_SITE, struct or self.struct, line)

    def ensure_statement(self, line: int, struct: StructureNode | None = None) -> "CCTNode":
        return self._ensure(CCTKind.STATEMENT, struct or self.struct, line)

    def add_raw(self, values: dict[int, float] | None = None, **_ignored) -> None:
        """Accumulate raw sample cost onto this scope."""
        if values:
            add_into(self.raw, values)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def walk(self) -> Iterator["CCTNode"]:
        """Preorder traversal of this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def walk_postorder(self) -> Iterator["CCTNode"]:
        """Postorder traversal (children before parents), iterative."""
        stack: list[tuple[CCTNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    def ancestors(self) -> Iterator["CCTNode"]:
        """Proper ancestors, innermost first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def call_path(self) -> list["CCTNode"]:
        """The chain of procedure frames from the root down to this scope."""
        frames = [n for n in self.ancestors() if n.kind is CCTKind.FRAME]
        if self.kind is CCTKind.FRAME:
            frames.insert(0, self)
        frames.reverse()
        return frames

    @property
    def depth(self) -> int:
        return sum(1 for _ in self.ancestors())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CCTNode {self.kind.value} {self.name!r} uid={self.uid}>"


class CCT:
    """A canonical calling context tree: a root plus node-count bookkeeping.

    The tree carries a *version* counter used to invalidate derived caches
    (the ``frames_by_procedure`` index and the columnar
    :class:`~repro.core.engine.MetricEngine` projection).  Every operation
    that mutates the tree's shape or metric values —
    :meth:`prune`, :func:`repro.core.attribution.attribute`,
    :func:`repro.hpcprof.merge.merge_ccts`, correlation, summarization —
    calls :meth:`invalidate_caches`; code that mutates nodes directly must
    do the same before relying on cached projections.
    """

    def __init__(self) -> None:
        self.root = CCTNode(CCTKind.ROOT)
        self._version: int = 0
        self._frames_cache: dict[StructureNode, list[CCTNode]] | None = None
        #: cached columnar projection, managed by :mod:`repro.core.engine`
        self._engine = None

    @property
    def version(self) -> int:
        """Monotonic mutation counter (cache-invalidation token)."""
        return self._version

    def invalidate_caches(self) -> None:
        """Drop cached projections after a shape or value mutation."""
        self._version += 1
        self._frames_cache = None
        self._engine = None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.walk())

    def walk(self) -> Iterator[CCTNode]:
        return self.root.walk()

    def frames(self) -> Iterator[CCTNode]:
        """All procedure-frame scopes in the tree."""
        for node in self.root.walk():
            if node.kind is CCTKind.FRAME:
                yield node

    def frames_by_procedure(self) -> dict[StructureNode, list[CCTNode]]:
        """Group frame instances by their static procedure (cached).

        This index drives both the Callers View (top-level entries) and the
        Flat View (procedure-level aggregation); both consult it on every
        build, so the full-tree walk is cached and invalidated alongside
        the other projections on merge/prune.  Treat the returned mapping
        as read-only.
        """
        if self._frames_cache is None:
            index: dict[StructureNode, list[CCTNode]] = {}
            for frame in self.frames():
                index.setdefault(frame.struct, []).append(frame)
            self._frames_cache = index
        return self._frames_cache

    def prune(self, keep: Callable[[CCTNode], bool] | None = None) -> int:
        """Remove subtrees with no raw metrics anywhere (sparseness rule).

        The paper: "there is no representation for a scope unless there is
        a non-zero performance metric or it is a parent of another scope
        that meets this criteria."  Returns the number of removed nodes.

        Iterative (children decided before their parent via the postorder
        walk), so chains deeper than the interpreter recursion limit prune
        correctly.
        """
        keep = keep or (lambda node: bool(node.raw))
        removed = 0
        keep_flags: dict[int, bool] = {}

        for node in self.root.walk_postorder():
            kept_children = []
            for child in node.children:
                if keep_flags.pop(child.uid):
                    kept_children.append(child)
                else:
                    removed += sum(1 for _ in child.walk())
                    node._child_index.pop(child.key, None)
            node.children = kept_children
            keep_flags[node.uid] = bool(kept_children) or keep(node)

        if removed:
            self.invalidate_caches()
        return removed

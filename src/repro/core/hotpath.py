"""Hot path analysis (Section V-C, Eq. 3).

Given a starting scope ``x``, a metric, and a threshold ``t`` (default
50%), the hot path extends from ``x`` through the child with the maximum
inclusive metric value, as long as that child accounts for at least
``t × mI(x)``; it ends at the first scope whose heaviest child falls below
the threshold — the scope where the cost stops being concentrated, i.e.
the potential bottleneck.

Hot path analysis is deliberately generic: it can start at *any* scope of
*any* view (not just the CCT root) and use *any* metric, including derived
metrics — "it is not just something that one applies to the root of the
calling context tree".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.cct import CCTNode
from repro.core.errors import ViewError
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import View, ViewNode

__all__ = ["DEFAULT_THRESHOLD", "HotPathResult", "hot_path", "hot_path_generic"]

DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class HotPathResult:
    """The expanded hot path and the scope it pinpoints."""

    path: tuple
    values: tuple[float, ...]

    @property
    def hotspot(self):
        """The scope at which the hot path ends — the potential bottleneck."""
        return self.path[-1]

    @property
    def hotspot_value(self) -> float:
        return self.values[-1]

    def __len__(self) -> int:
        return len(self.path)


def hot_path_generic(
    start,
    value_fn: Callable[[object], float],
    children_fn: Callable[[object], Sequence],
    threshold: float = DEFAULT_THRESHOLD,
    max_depth: int = 10_000,
) -> HotPathResult:
    """Eq. 3 over any tree shape.

    ``value_fn`` must return the inclusive metric value of a scope and
    ``children_fn`` its children.  The path always contains ``start``.
    """
    if not (0.0 < threshold <= 1.0):
        raise ViewError(f"hot-path threshold must be in (0, 1], got {threshold}")
    path = [start]
    values = [float(value_fn(start))]
    node = start
    for _ in range(max_depth):
        kids = children_fn(node)
        if not kids:
            break
        best = max(kids, key=value_fn)
        best_value = float(value_fn(best))
        parent_value = values[-1]
        if parent_value <= 0.0 or best_value < threshold * parent_value:
            break
        path.append(best)
        values.append(best_value)
        node = best
    return HotPathResult(tuple(path), tuple(values))


def hot_path(
    view: View,
    spec: MetricSpec,
    start: ViewNode | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> HotPathResult:
    """Hot path through a view, starting at *start* (or the heaviest root).

    Uses the *inclusive* flavour of the selected metric, as Eq. 3
    prescribes, regardless of which flavour the selected display column
    shows.
    """
    incl = MetricSpec(spec.mid, MetricFlavor.INCLUSIVE)
    if start is None:
        roots = view.roots
        if not roots:
            raise ViewError(f"{view.title} is empty")
        start = max(roots, key=lambda r: view.value(r, incl))
    return hot_path_generic(
        start,
        value_fn=lambda n: view.value(n, incl),
        children_fn=lambda n: n.children,
        threshold=threshold,
    )


def hot_path_cct(
    start: CCTNode, mid: int, threshold: float = DEFAULT_THRESHOLD
) -> HotPathResult:
    """Hot path directly over CCT scopes (pre-view analyses)."""
    return hot_path_generic(
        start,
        value_fn=lambda n: n.inclusive.get(mid, 0.0),
        children_fn=lambda n: n.children,
        threshold=threshold,
    )

"""Hot path analysis (Section V-C, Eq. 3).

Given a starting scope ``x``, a metric, and a threshold ``t`` (default
50%), the hot path extends from ``x`` through the child with the maximum
inclusive metric value, as long as that child accounts for at least
``t × mI(x)``; it ends at the first scope whose heaviest child falls below
the threshold — the scope where the cost stops being concentrated, i.e.
the potential bottleneck.

Hot path analysis is deliberately generic: it can start at *any* scope of
*any* view (not just the CCT root) and use *any* metric, including derived
metrics — "it is not just something that one applies to the root of the
calling context tree".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.cct import CCTNode
from repro.errors import ViewError
from repro.core.metrics import MetricFlavor, MetricKind, MetricSpec
from repro.core.views import View, ViewNode

__all__ = ["DEFAULT_THRESHOLD", "HotPathResult", "hot_path", "hot_path_generic"]

DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class HotPathResult:
    """The expanded hot path and the scope it pinpoints."""

    path: tuple
    values: tuple[float, ...]

    @property
    def hotspot(self):
        """The scope at which the hot path ends — the potential bottleneck."""
        return self.path[-1]

    @property
    def hotspot_value(self) -> float:
        return self.values[-1]

    def __len__(self) -> int:
        return len(self.path)


def hot_path_generic(
    start,
    value_fn: Callable[[object], float],
    children_fn: Callable[[object], Sequence],
    threshold: float = DEFAULT_THRESHOLD,
    max_depth: int = 10_000,
) -> HotPathResult:
    """Eq. 3 over any tree shape.

    ``value_fn`` must return the inclusive metric value of a scope and
    ``children_fn`` its children.  The path always contains ``start``.
    """
    if not (0.0 < threshold <= 1.0):
        raise ViewError(f"hot-path threshold must be in (0, 1], got {threshold}")
    path = [start]
    values = [float(value_fn(start))]
    node = start
    for _ in range(max_depth):
        kids = children_fn(node)
        if not kids:
            break
        best = max(kids, key=value_fn)
        best_value = float(value_fn(best))
        parent_value = values[-1]
        if parent_value <= 0.0 or best_value < threshold * parent_value:
            break
        path.append(best)
        values.append(best_value)
        node = best
    return HotPathResult(tuple(path), tuple(values))


def hot_path(
    view: View,
    spec: MetricSpec,
    start: ViewNode | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> HotPathResult:
    """Hot path through a view, starting at *start* (or the heaviest root).

    Uses the *inclusive* flavour of the selected metric, as Eq. 3
    prescribes, regardless of which flavour the selected display column
    shows.

    When the view carries a columnar engine and the metric is measured
    (not derived), the descent gathers each level's child values from the
    engine's matrices in one vectorized read instead of per-row dict
    lookups; the argmax/threshold logic is identical either way.
    """
    incl = MetricSpec(spec.mid, MetricFlavor.INCLUSIVE)
    engine = view.engine
    if (
        engine is not None
        and spec.mid < engine.num_metrics
        and view.metrics.by_id(spec.mid).kind is not MetricKind.DERIVED
    ):
        return _hot_path_view_columnar(view, engine, incl, start, threshold)
    if start is None:
        roots = view.roots
        if not roots:
            raise ViewError(f"{view.title} is empty")
        start = max(roots, key=lambda r: view.value(r, incl))
    return hot_path_generic(
        start,
        value_fn=lambda n: view.value(n, incl),
        children_fn=lambda n: n.children,
        threshold=threshold,
    )


def _hot_path_view_columnar(
    view: View,
    engine,
    incl: MetricSpec,
    start: ViewNode | None,
    threshold: float,
    max_depth: int = 10_000,
) -> HotPathResult:
    """Eq. 3 over view rows with per-level columnar gathers.

    ``np.argmax`` returns the first maximum, matching ``max(key=...)``'s
    tie rule, so the chosen path is identical to the generic descent.
    """
    import numpy as np  # engine present implies numpy available

    if not (0.0 < threshold <= 1.0):
        raise ViewError(f"hot-path threshold must be in (0, 1], got {threshold}")
    if start is None:
        roots = view.roots
        if not roots:
            raise ViewError(f"{view.title} is empty")
        root_values = engine.gather_view_values(roots, incl)
        best_root = int(np.argmax(root_values))
        start = roots[best_root]
        start_value = float(root_values[best_root])
    else:
        start_value = float(engine.gather_view_values([start], incl)[0])
    path = [start]
    values = [start_value]
    node = start
    for _ in range(max_depth):
        kids = node.children
        if not kids:
            break
        kid_values = engine.gather_view_values(kids, incl)
        best = int(np.argmax(kid_values))
        best_value = float(kid_values[best])
        if values[-1] <= 0.0 or best_value < threshold * values[-1]:
            break
        node = kids[best]
        path.append(node)
        values.append(best_value)
    return HotPathResult(tuple(path), tuple(values))


def hot_path_cct(
    start: CCTNode,
    mid: int,
    threshold: float = DEFAULT_THRESHOLD,
    engine=None,
) -> HotPathResult:
    """Hot path directly over CCT scopes (pre-view analyses).

    Pass the CCT's :class:`~repro.core.engine.MetricEngine` to run the
    descent over the columnar matrices (one fancy-index gather per level)
    instead of per-node dict lookups.
    """
    if engine is not None and 0 <= mid < engine.num_metrics:
        if not (0.0 < threshold <= 1.0):
            raise ViewError(f"hot-path threshold must be in (0, 1], got {threshold}")
        rows, values = engine.hot_path_rows(engine.row_of(start), mid, threshold)
        return HotPathResult(
            tuple(engine.nodes[row] for row in rows), tuple(values)
        )
    return hot_path_generic(
        start,
        value_fn=lambda n: n.inclusive.get(mid, 0.0),
        children_fn=lambda n: n.children,
        threshold=threshold,
    )

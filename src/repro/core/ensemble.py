"""Ensemble analysis over a union CCT: statistics, diffs, regressions.

The paper's derived-metric machinery (Section VI-A, Figure 6) compares
*two* profiles by scale-and-subtract.  This module generalizes that to
a corpus: :func:`align_experiments` structurally aligns N runs into one
:class:`EnsembleView` (a supergraph over a columnar member×scope value
matrix, built by :mod:`repro.hpcprof.align`), on top of which

* :meth:`EnsembleView.stats` / :meth:`~EnsembleView.attach_stats`
  compute per-scope mean/std/min/max (via the exact Welford reduction
  shared with rank summarization) and quantiles across members;
* :meth:`EnsembleView.diff` builds pairwise or baseline-vs-corpus diff
  *experiments* whose raw values are ``target - factor * baseline`` per
  scope — re-attributed through Eq. 1/2, so the three views, hot paths
  (Eq. 3), and derived metrics all work on a diff unchanged.  Since
  IEEE subtraction gives ``x - x == 0.0`` exactly and attribution of
  all-zero raws yields zeros, ``diff(A, A)`` is exactly zero
  everywhere, and ``diff(A, B)`` is the exact negation of
  ``diff(B, A)`` — properties the test battery pins;
* :func:`detect_regressions` flags scopes whose *inclusive share* of a
  metric shifted beyond an absolute threshold or beyond k·σ of the
  baseline corpus, as structured :class:`RegressionFinding` records
  (bridged to tuning advice by :func:`repro.core.advisor.advise_regressions`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTKind, CCTNode
from repro.core.metrics import MetricKind
from repro.errors import MetricError
from repro.hpcprof.align import (
    DEFAULT_WORKING_SET,
    Alignment,
    align_members,
)

__all__ = [
    "EnsembleStats",
    "EnsembleView",
    "RegressionFinding",
    "align_experiments",
    "detect_regressions",
]

#: default absolute inclusive-share shift that flags a scope
DEFAULT_THRESHOLD = 0.02

#: default sigma multiplier against the baseline corpus spread
DEFAULT_SIGMA = 3.0

#: scopes whose share (target or baseline) is below this are ignored
DEFAULT_MIN_SHARE = 0.005

#: default quantile levels of :meth:`EnsembleView.stats`
DEFAULT_QUANTILES = (0.25, 0.5, 0.75)


@dataclass(frozen=True)
class EnsembleStats:
    """Per-union-scope statistics of one metric across the members.

    Every array has one entry per union node, in preorder (row order of
    the alignment matrices).  ``mean``/``stddev`` come from the same
    sequential Welford recurrence the rank summaries use, advanced in
    member order, so they are bit-identical to the ``.rpstore`` summary
    path over the same inputs.
    """

    metric: str
    flavor: str
    count: int
    mean: np.ndarray
    stddev: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray
    quantiles: dict[float, np.ndarray]


@dataclass(frozen=True)
class RegressionFinding:
    """One scope whose inclusive share moved against the baseline corpus."""

    scope: str
    kind: str                 #: "regression" (grew) or "improvement" (shrank)
    metric: str
    path: tuple[str, ...]     #: frame names from the root to the scope
    target: str               #: label of the compared member
    target_share: float
    baseline_mean: float      #: mean inclusive share over the corpus
    baseline_stddev: float
    delta: float              #: target_share - baseline_mean
    sigmas: float | None      #: |delta| / stddev (None when stddev == 0)
    target_value: float
    baseline_mean_value: float

    def to_payload(self) -> dict:
        return {
            "scope": self.scope,
            "kind": self.kind,
            "metric": self.metric,
            "path": list(self.path),
            "target": self.target,
            "target_share": self.target_share,
            "baseline_mean": self.baseline_mean,
            "baseline_stddev": self.baseline_stddev,
            "delta": self.delta,
            "sigmas": self.sigmas,
            "target_value": self.target_value,
            "baseline_mean_value": self.baseline_mean_value,
        }

    def describe(self) -> str:
        sig = f", {self.sigmas:.1f} sigma" if self.sigmas is not None else ""
        return (
            f"[{self.kind}] {self.scope} ({self.metric}): share "
            f"{100 * self.baseline_mean:.2f}% -> "
            f"{100 * self.target_share:.2f}% "
            f"({self.delta:+.2%}{sig})\n"
            f"    at {' -> '.join(self.path) or '<program root>'}"
        )


class EnsembleView:
    """N structurally aligned experiments, ready for comparison.

    Thin analysis layer over an :class:`~repro.hpcprof.align.Alignment`:
    the union experiment (member sums) renders through the regular
    Flat/Callers/CC pipeline, per-scope statistics come from the
    columnar matrices, and :meth:`diff` / :meth:`member` materialize
    ordinary experiments from matrix rows.
    """

    def __init__(self, alignment: Alignment) -> None:
        self.alignment = alignment
        self._summaries: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> list[str]:
        return self.alignment.names

    @property
    def n_experiments(self) -> int:
        return self.alignment.n_members

    @property
    def union(self):
        """The union experiment (raw values = member sums, attributed)."""
        return self.alignment.union

    @property
    def nodes(self) -> list[CCTNode]:
        """Union tree in preorder — the row order of every matrix."""
        return self.alignment.nodes

    def _mid(self, metric: str | None) -> int:
        if metric is None:
            if not self.alignment.mids:
                raise MetricError("ensemble has no raw metrics")
            return self.alignment.mids[0]
        mid = self.union.metrics.by_name(metric).mid
        if mid not in self.alignment.mids:
            raise MetricError(
                f"metric {metric!r} is not a raw metric of this ensemble"
            )
        return mid

    def matrix(self, metric: str | None = None, flavor: str = "inclusive"):
        """The ``(n_experiments, n_union_nodes)`` value matrix (read-only)."""
        return self.alignment.matrix(self._mid(metric), flavor)

    def resolve(self, which) -> tuple[int | None, str]:
        """A member selector → ``(index, label)``.

        Accepts an index (negatives count from the end), a member name
        (first match), or ``"mean"`` — the corpus mean, which has no
        index.
        """
        if which == "mean":
            return None, "mean"
        if isinstance(which, bool) or not isinstance(which, (int, str)):
            raise MetricError(
                f"member selector must be an index, a name, or 'mean', "
                f"got {type(which).__name__}"
            )
        if isinstance(which, str):
            try:
                return self.names.index(which), which
            except ValueError:
                raise MetricError(
                    f"unknown ensemble member {which!r} "
                    f"(have: {', '.join(self.names)})"
                ) from None
        index = which if which >= 0 else self.alignment.n_members + which
        if not (0 <= index < self.alignment.n_members):
            raise MetricError(
                f"member index {which} out of range for "
                f"{self.alignment.n_members} members"
            )
        return index, self.names[index]

    def _row(self, index: int | None, mid: int, flavor: str) -> np.ndarray:
        matrix = self.alignment.matrix(mid, flavor)
        if index is None:  # the corpus mean
            return matrix.mean(axis=0)
        return matrix[index]

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def stats(
        self,
        metric: str | None = None,
        flavor: str = "inclusive",
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> EnsembleStats:
        """Per-scope mean/std/min/max/quantiles across the members."""
        from repro.hpcprof.summarize import _welford_chunk

        mid = self._mid(metric)
        matrix = self.alignment.matrix(mid, flavor)
        count, mean, m2, minimum, maximum = _welford_chunk(matrix.T)
        if count > 1:
            variance = m2 / count
        else:
            variance = np.zeros_like(mean)
        return EnsembleStats(
            metric=self.union.metrics.by_id(mid).name,
            flavor=flavor,
            count=count,
            mean=mean,
            stddev=np.sqrt(np.maximum(variance, 0.0)),
            minimum=minimum,
            maximum=maximum,
            quantiles={
                float(q): np.quantile(matrix, q, axis=0) for q in quantiles
            },
        )

    def attach_stats(self, metric: str | None = None):
        """Attach mean/min/max/stddev columns over *members* to the union.

        Same descriptor names and ids as rank summarization
        (:func:`~repro.hpcprof.summarize.register_summary_ids`), so an
        ensemble session's stat columns render exactly like a parallel
        experiment's — idempotent per metric.
        """
        from repro.hpcprof.summarize import (
            _welford_chunk,
            apply_summary_stats,
            register_summary_ids,
        )

        mid = self._mid(metric)
        ids = self._summaries.get(mid)
        if ids is not None:
            return ids
        ids = register_summary_ids(self.union.metrics, mid)
        for flavor in ("inclusive", "exclusive"):
            matrix = self.alignment.matrix(mid, flavor)
            stats = _welford_chunk(matrix.T)
            mask = np.any(matrix != 0.0, axis=0)
            apply_summary_stats(self.nodes, flavor, ids, stats, mask)
        self.union.cct.invalidate_caches()
        self._summaries[mid] = ids
        self.union._summaries[mid] = ids
        return ids

    # ------------------------------------------------------------------ #
    # materialization (members and diffs as ordinary experiments)
    # ------------------------------------------------------------------ #
    def _copy_skeleton(self) -> tuple[CCT, dict[int, CCTNode]]:
        """A fresh copy of the union tree shape (no metric values).

        Preorder over the alignment's node list guarantees parents are
        copied before children and child order is preserved, so copies
        of the same union always walk in the same order — the property
        that makes diff antisymmetry exact.
        """
        nodes = self.nodes
        clone = CCT()
        twins = {nodes[0].uid: clone.root}
        for node in nodes[1:]:
            twins[node.uid] = CCTNode(
                node.kind, struct=node.struct, line=node.line,
                parent=twins[node.parent.uid],
            )
        return clone, twins

    def _materialize(self, name: str, vectors: dict[int, np.ndarray]):
        """An experiment over the union skeleton with given raw vectors."""
        from repro.hpcprof.experiment import Experiment

        clone, twins = self._copy_skeleton()
        nodes = self.nodes
        for mid, vec in vectors.items():
            for row in np.flatnonzero(vec):
                twins[nodes[row].uid].raw[mid] = float(vec[row])
        attribute(clone)
        return Experiment(
            name, self.alignment.pristine_metrics.copy(),
            self.union.structure, clone,
        )

    def member(self, which):
        """One member (or ``"mean"``) re-materialized over the union tree.

        Value-identical to the original member where scopes align, with
        the union's shape — handy for rendering a member against the
        ensemble's row order.
        """
        index, label = self.resolve(which)
        return self._materialize(
            label,
            {mid: self._row(index, mid, "raw") for mid in self.alignment.mids},
        )

    def diff(self, baseline=0, target=-1, factor: float = 1.0, name=None):
        """The diff experiment ``target - factor * baseline``.

        *baseline* / *target* select members (index, name, or
        ``"mean"`` for the corpus mean).  Per scope and raw metric, the
        diff's raw value is ``target_raw - factor * baseline_raw``
        (Section VI-A's scale-and-subtract, over aligned union scopes);
        re-attribution makes inclusive/exclusive diffs obey Eq. 1/2, so
        the result renders through any view, and positive values mean
        the target got more expensive.
        """
        if factor <= 0:
            raise MetricError(
                f"scaling factor must be positive, got {factor}"
            )
        b_index, b_label = self.resolve(baseline)
        t_index, t_label = self.resolve(target)
        vectors = {}
        for mid in self.alignment.mids:
            base = self._row(b_index, mid, "raw")
            tgt = self._row(t_index, mid, "raw")
            # factor 1.0 takes the exact  t - b  path: x - x == 0.0 and
            # (a - b) == -(b - a) hold bitwise, the identity/antisymmetry
            # contract of the property suite
            vectors[mid] = tgt - base if factor == 1.0 else tgt - factor * base
        if name is None:
            scaled = f"{factor:g}*" if factor != 1.0 else ""
            name = f"{t_label} vs {scaled}{b_label}"
        return self._materialize(name, vectors)

    def to_payload(self) -> dict:
        return {
            "members": list(self.names),
            "n_experiments": self.n_experiments,
            "union_scopes": self.alignment.nnodes,
            "metrics": [
                d.name for d in self.union.metrics
                if d.kind is MetricKind.RAW
            ],
            "report": self.alignment.report.to_payload(),
        }


def align_experiments(
    members: Sequence,
    *,
    name: str = "ensemble",
    working_set_bytes: int = DEFAULT_WORKING_SET,
    strict: bool = True,
) -> EnsembleView:
    """Align N experiments (objects or database paths) into an ensemble.

    Members given as paths (``.xml`` / ``.rpdb`` / ``.rpstore``) are
    streamed one at a time under *working_set_bytes*, so hundred-profile
    ensembles stay bounded-memory; ``strict=False`` salvages corrupted
    binary members instead of refusing them.  See
    :func:`repro.hpcprof.align.align_members` for the alignment rules.
    """
    return EnsembleView(align_members(
        members, name=name,
        working_set_bytes=working_set_bytes, strict=strict,
    ))


def detect_regressions(
    ensemble: EnsembleView,
    metric: str | None = None,
    target=-1,
    baseline=None,
    threshold: float = DEFAULT_THRESHOLD,
    sigma: float = DEFAULT_SIGMA,
    min_share: float = DEFAULT_MIN_SHARE,
    kinds: Sequence[CCTKind] = (CCTKind.FRAME, CCTKind.LOOP),
) -> list[RegressionFinding]:
    """Scopes of *target* whose inclusive share moved against the corpus.

    Shares are per-member: a scope's inclusive value over that member's
    own total, so uniformly faster or slower runs do not trip the
    detector — only *redistribution* of cost does.  The baseline corpus
    is every other member by default, or an explicit list of member
    selectors.  A scope is flagged when

    * ``|delta| > threshold`` (absolute share shift), or
    * ``|delta| > sigma * stddev`` of the corpus shares (when the
      corpus actually varies — a zero-spread corpus only triggers the
      absolute rule);

    scopes whose share is below *min_share* on both sides are ignored,
    as are kinds outside *kinds* (frames and loops by default — the
    scopes a person would act on).  Findings are sorted by |delta|,
    largest first; ``kind`` is "regression" when the share grew.
    """
    mid = ensemble._mid(metric)
    metric_name = ensemble.union.metrics.by_id(mid).name
    t_index, t_label = ensemble.resolve(target)
    if t_index is None:
        raise MetricError("regression target must be a member, not 'mean'")
    if baseline is None:
        corpus = [i for i in range(ensemble.n_experiments) if i != t_index]
    else:
        corpus = []
        for selector in baseline:
            index, _ = ensemble.resolve(selector)
            if index is None:
                raise MetricError(
                    "baseline corpus members must be members, not 'mean'"
                )
            corpus.append(index)
    if not corpus:
        raise MetricError("regression baseline corpus is empty")

    from repro.hpcprof.summarize import _welford_chunk

    incl = ensemble.alignment.matrix(mid, "inclusive")
    totals = incl[:, 0]  # row 0 is the root: each member's own total
    safe = np.where(totals == 0.0, 1.0, totals)
    shares = incl / safe[:, None]
    count, mean, m2, _minimum, _maximum = _welford_chunk(shares[corpus].T)
    if count > 1:
        stddev = np.sqrt(np.maximum(m2 / count, 0.0))
    else:
        stddev = np.zeros_like(mean)
    delta = shares[t_index] - mean

    findings: list[RegressionFinding] = []
    kinds = tuple(kinds)
    for row, node in enumerate(ensemble.nodes):
        if row == 0 or node.kind not in kinds:
            continue
        d = float(delta[row])
        t_share = float(shares[t_index][row])
        b_mean = float(mean[row])
        if max(t_share, b_mean) < min_share:
            continue
        spread = float(stddev[row])
        over_threshold = abs(d) > threshold
        over_sigma = sigma > 0 and spread > 0.0 and abs(d) > sigma * spread
        if not (over_threshold or over_sigma):
            continue
        findings.append(RegressionFinding(
            scope=node.name,
            kind="regression" if d > 0 else "improvement",
            metric=metric_name,
            path=tuple(f.name for f in node.call_path()),
            target=t_label,
            target_share=t_share,
            baseline_mean=b_mean,
            baseline_stddev=spread,
            delta=d,
            sigmas=abs(d) / spread if spread > 0.0 else None,
            target_value=float(incl[t_index][row]),
            baseline_mean_value=float(
                math.fsum(incl[i][row] for i in corpus) / len(corpus)
            ),
        ))
    findings.sort(key=lambda f: (-abs(f.delta), f.scope))
    return findings

"""Out-of-core columnar store for merged many-rank experiments.

The paper's finalization step (Section IV) exists because holding every
rank's metric values in memory does not scale; this module is the
storage tier that makes the reproduction honor that constraint.  A
*store* is a directory (conventionally ``<name>.rpstore``) holding:

* ``manifest.json`` — shapes, metric ids, summary-column ids;
* ``skeleton.rpdb`` — the merged experiment (combined CCT, metric
  table, structure model, summary overlays) in the regular framed v2
  binary format, opened through the mmap-backed streaming reader;
* ``columns/{raw,inclusive,exclusive}.f64`` — the three dense
  ``(nnodes x num_metrics)`` float64 engine matrices, row order equal
  to the skeleton CCT's preorder walk, memory-mapped read-only into
  :class:`~repro.core.engine.MetricEngine` so view rendering never
  re-gathers per-node dicts and the OS pages matrix data in on demand;
* ``ranks/m<mid>_{incl,excl}.f64`` — per-metric ``(nranks x nnodes)``
  rank matrices (rank-major, so the bounded merge writes each rank as
  one contiguous row), backing :meth:`StoreExperiment.rank_vector` and
  on-demand summarization without any per-rank tree in memory.

Byte parity with the in-memory path is a design invariant, not an
accident: the engine matrices are written *from* the in-memory engine
of the merged experiment, and the skeleton round-trips through the same
serializer the eager loader reads — so a store-backed session renders
tables byte-identical to loading the equivalent single ``.rpdb``.  The
golden-corpus and differential suites pin this.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.cct import CCTNode
from repro.core.engine import MetricEngine
from repro.core.metrics import MetricKind
from repro.core.views import ViewNode
from repro.errors import DatabaseError, ViewError
from repro.hpcprof.experiment import Experiment
from repro.hpcprof.summarize import (
    SummaryIds,
    apply_summary_stats,
    register_summary_ids,
)

__all__ = [
    "STORE_EXTENSION",
    "STORE_VERSION",
    "ColumnStore",
    "StoreExperiment",
    "StoreWriter",
    "create_store",
    "is_store_path",
    "open_store",
]

STORE_EXTENSION = ".rpstore"
STORE_VERSION = 1
MANIFEST_NAME = "manifest.json"
SKELETON_NAME = "skeleton.rpdb"

_COLUMNS_DIR = "columns"
_RANKS_DIR = "ranks"
_MATRIX_NAMES = ("raw", "inclusive", "exclusive")
_FLAVOR_TAG = {"inclusive": "incl", "exclusive": "excl"}
_DTYPE = np.dtype("<f8")


def is_store_path(path: str) -> bool:
    """True when *path* is a store directory (has a manifest)."""
    return os.path.isfile(os.path.join(path, MANIFEST_NAME))


def _rank_file(mid: int, flavor: str) -> str:
    return os.path.join(_RANKS_DIR, f"m{mid}_{_FLAVOR_TAG[flavor]}.f64")


# --------------------------------------------------------------------- #
# writing
# --------------------------------------------------------------------- #
class StoreWriter:
    """Builds a store directory file by file; ``finish`` seals it.

    The manifest is written last, so a crashed or aborted build leaves a
    directory that :func:`is_store_path` rejects rather than a store
    that opens half-populated.
    """

    def __init__(self, path: str, overwrite: bool = False) -> None:
        self.path = path
        if os.path.exists(path):
            if not overwrite:
                raise DatabaseError(
                    f"store path already exists: {path} (pass overwrite)"
                )
            if os.path.isfile(path) or not (
                is_store_path(path) or not os.listdir(path)
            ):
                # refuse to clobber anything that is not a store we own
                raise DatabaseError(
                    f"refusing to overwrite non-store path: {path}"
                )
            self._wipe()
        os.makedirs(os.path.join(path, _COLUMNS_DIR), exist_ok=True)
        os.makedirs(os.path.join(path, _RANKS_DIR), exist_ok=True)

    def _wipe(self) -> None:
        for rel in [MANIFEST_NAME, SKELETON_NAME]:
            full = os.path.join(self.path, rel)
            if os.path.isfile(full):
                os.unlink(full)
        for sub in (_COLUMNS_DIR, _RANKS_DIR):
            full = os.path.join(self.path, sub)
            if os.path.isdir(full):
                for name in os.listdir(full):
                    os.unlink(os.path.join(full, name))

    # ------------------------------------------------------------------ #
    def write_skeleton(self, experiment: Experiment) -> int:
        from repro.hpcprof import binio

        data = binio.dumps_binary(experiment)
        with open(os.path.join(self.path, SKELETON_NAME), "wb") as fh:
            fh.write(data)
        return len(data)

    def write_matrices(self, engine: MetricEngine) -> None:
        """Persist the engine's three matrices as raw column files."""
        for name, matrix in zip(
            _MATRIX_NAMES, (engine.raw, engine.inclusive, engine.exclusive)
        ):
            out = os.path.join(self.path, _COLUMNS_DIR, f"{name}.f64")
            np.ascontiguousarray(matrix, dtype=_DTYPE).tofile(out)

    def create_rank_matrix(
        self, mid: int, flavor: str, nranks: int, nnodes: int
    ) -> np.memmap:
        """A writable ``(nranks x nnodes)`` rank-major memmap."""
        return np.memmap(
            os.path.join(self.path, _rank_file(mid, flavor)),
            dtype=_DTYPE,
            mode="w+",
            shape=(nranks, nnodes),
        )

    def finish(
        self,
        *,
        name: str,
        nnodes: int,
        num_metrics: int,
        nranks: int,
        rank_mids: list[int],
        summaries: dict[int, SummaryIds],
        extra: dict | None = None,
    ) -> dict:
        manifest = {
            "format": "rpstore",
            "version": STORE_VERSION,
            "name": name,
            "nnodes": nnodes,
            "num_metrics": num_metrics,
            "nranks": nranks,
            "dtype": _DTYPE.str,
            "rank_mids": list(rank_mids),
            "summaries": {
                str(mid): list(ids.all()) for mid, ids in summaries.items()
            },
        }
        if extra:
            manifest.update(extra)
        with open(os.path.join(self.path, MANIFEST_NAME), "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return manifest


# --------------------------------------------------------------------- #
# reading
# --------------------------------------------------------------------- #
class ColumnStore:
    """Open handle on a store directory: manifest + lazy memmaps.

    ``release()`` drops the cached memory-mapped arrays; it is GC-safe —
    an in-flight render holding a matrix keeps that mapping alive until
    the array is collected, so eviction never invalidates live readers.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        manifest_path = os.path.join(path, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise DatabaseError(f"no such database: {path}") from None
        except (OSError, ValueError) as exc:
            raise DatabaseError(f"cannot read store manifest {path}: {exc}"
                                ) from None
        if manifest.get("format") != "rpstore":
            raise DatabaseError(f"{path}: not a column store manifest")
        if manifest.get("version") != STORE_VERSION:
            raise DatabaseError(
                f"{path}: unsupported store version {manifest.get('version')}"
            )
        try:
            self.name = str(manifest["name"])
            self.nnodes = int(manifest["nnodes"])
            self.num_metrics = int(manifest["num_metrics"])
            self.nranks = int(manifest["nranks"])
            self.rank_mids = [int(m) for m in manifest["rank_mids"]]
            self.summary_ids = {
                int(mid): SummaryIds(*ids)
                for mid, ids in manifest["summaries"].items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise DatabaseError(f"{path}: malformed store manifest: {exc!r}"
                                ) from None
        self.manifest = manifest
        self._matrices: tuple[np.ndarray, ...] | None = None
        self._rank_maps: dict[tuple[int, str], np.memmap] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def skeleton_path(self) -> str:
        return os.path.join(self.path, SKELETON_NAME)

    @property
    def closed(self) -> bool:
        return self._closed

    def _open_map(self, rel: str, shape: tuple[int, int]) -> np.memmap:
        full = os.path.join(self.path, rel)
        expected = shape[0] * shape[1] * _DTYPE.itemsize
        try:
            actual = os.path.getsize(full)
        except OSError:
            raise DatabaseError(f"corrupt store {self.path}: missing {rel}"
                                ) from None
        if actual != expected:
            raise DatabaseError(
                f"corrupt store {self.path}: {rel} is {actual} bytes, "
                f"expected {expected}"
            )
        return np.memmap(full, dtype=_DTYPE, mode="r", shape=shape)

    def matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three read-only mmap engine matrices (raw, incl, excl)."""
        if self._closed:
            raise DatabaseError(f"store {self.path} is closed")
        if self._matrices is None:
            shape = (self.nnodes, self.num_metrics)
            self._matrices = tuple(
                self._open_map(os.path.join(_COLUMNS_DIR, f"{name}.f64"),
                               shape)
                for name in _MATRIX_NAMES
            )
        return self._matrices  # type: ignore[return-value]

    def rank_matrix(self, mid: int, flavor: str) -> np.memmap:
        """Read-only ``(nranks x nnodes)`` matrix of one metric/flavor."""
        if self._closed:
            raise DatabaseError(f"store {self.path} is closed")
        if mid not in self.rank_mids:
            raise ViewError(
                f"store holds no per-rank data for metric id {mid}"
            )
        key = (mid, flavor)
        mm = self._rank_maps.get(key)
        if mm is None:
            mm = self._open_map(_rank_file(mid, flavor),
                                (self.nranks, self.nnodes))
            self._rank_maps[key] = mm
        return mm

    def size_bytes(self) -> int:
        """Total on-disk footprint of the store's files."""
        total = 0
        for base, _dirs, files in os.walk(self.path):
            for name in files:
                total += os.path.getsize(os.path.join(base, name))
        return total

    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Drop cached mappings (idempotent); the store can re-open them."""
        self._matrices = None
        self._rank_maps.clear()

    def close(self) -> None:
        """Release mappings and refuse further opens through this handle."""
        self.release()
        self._closed = True

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StoreExperiment(Experiment):
    """An :class:`Experiment` whose bulk data stays memory-mapped.

    Behaves exactly like the in-memory experiment it was built from —
    same views, same hot paths, same rendered bytes — but:

    * the engine's matrices are the store's mmap column files (no dict
      gather, no resident matrix copy) while the experiment is
      unmutated; defining a derived metric or otherwise invalidating the
      CCT transparently falls back to the regular gathered engine;
    * :meth:`rank_vector` and :meth:`summarize` read the ``(nranks x
      nnodes)`` rank matrices instead of requiring per-rank trees;
    * :meth:`release` drops the mappings (used by server eviction).
    """

    def __init__(self, store: ColumnStore, base: Experiment) -> None:
        super().__init__(base.name, base.metrics, base.structure, base.cct)
        self.store = store
        self._base_metrics = len(base.metrics)
        self._base_version = self.cct.version
        self._row_index: dict[int, int] | None = None
        self._summaries.update(store.summary_ids)

    # ------------------------------------------------------------------ #
    @property
    def engine(self):
        if (
            not self.store.closed
            and self.cct.version == self._base_version
            and len(self.metrics) == self._base_metrics
        ):
            engine = getattr(self.cct, "_engine", None)
            if (
                engine is None
                or engine.version != self.cct.version
                or engine.num_metrics != self._base_metrics
            ):
                engine = MetricEngine(
                    self.cct, self._base_metrics, matrices=self.store.matrices()
                )
                self.cct._engine = engine
            return engine
        return Experiment.engine.fget(self)

    @property
    def nranks(self) -> int:
        return max(self.store.nranks, 1)

    def _rows(self) -> dict[int, int]:
        if self._row_index is None:
            self._row_index = {
                node.uid: row for row, node in enumerate(self.cct.walk())
            }
        return self._row_index

    # ------------------------------------------------------------------ #
    def rank_vector(self, node_or_uid, metric: str) -> np.ndarray:
        if self.store.closed:
            raise ViewError("store is closed; per-rank data unavailable")
        mid = self.metric_id(metric)
        if isinstance(node_or_uid, int):
            uids = {node_or_uid}
        elif isinstance(node_or_uid, ViewNode):
            cct_nodes = [
                n for n in node_or_uid.cct_nodes if isinstance(n, CCTNode)
            ]
            if not cct_nodes:
                raise ViewError(
                    f"row {node_or_uid.name!r} maps to no CCT scope"
                )
            uids = {n.uid for n in cct_nodes}
        else:
            uids = {node_or_uid.uid}
        matrix = self.store.rank_matrix(mid, "inclusive")
        rows = self._rows()
        out = np.zeros(self.store.nranks)
        for uid in uids:
            row = rows.get(uid)
            if row is not None:
                out += np.asarray(matrix[:, row], dtype=np.float64)
        return out

    def summarize(self, metric: str, max_workers: int | None = None
                  ) -> SummaryIds:
        """Summary columns for *metric* (Section IV finalization).

        Columns baked in at merge time are returned directly; otherwise
        they are computed on demand from the store's rank matrices by
        the same sequential Welford recurrence the bounded merge uses,
        one rank row at a time — never materializing the full matrix.
        """
        mid = self.metric_id(metric)
        ids = self._summaries.get(mid)
        if ids is not None:
            return ids
        del max_workers  # the store path is already out-of-core
        matrix_incl = self.store.rank_matrix(mid, "inclusive")
        matrix_excl = self.store.rank_matrix(mid, "exclusive")
        nodes = list(self.cct.walk())
        ids = register_summary_ids(self.metrics, mid)
        for flavor, matrix in (
            ("inclusive", matrix_incl), ("exclusive", matrix_excl)
        ):
            stats, mask = _streaming_moments(matrix)
            apply_summary_stats(nodes, flavor, ids, stats, mask)
        self.cct.invalidate_caches()
        self._summaries[mid] = ids
        return ids

    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Drop the store's mappings (server eviction hook)."""
        engine = getattr(self.cct, "_engine", None)
        if engine is not None and engine.num_metrics == self._base_metrics:
            self.cct._engine = None
        self.store.release()

    def close(self) -> None:
        self.release()
        self.store.close()


def _streaming_moments(matrix: np.memmap):
    """Sequential per-node Welford over rank rows, one row resident.

    Bit-identical to ``_welford_chunk`` on the dense transpose — the
    parity contract between the store, the bounded merge, and the
    in-memory reference (``summarize_ranks_exact``).
    """
    nranks, nnodes = matrix.shape
    mean = np.zeros(nnodes)
    m2 = np.zeros(nnodes)
    minimum = np.full(nnodes, np.inf)
    maximum = np.full(nnodes, -np.inf)
    nonzero = np.zeros(nnodes, dtype=bool)
    for r in range(nranks):
        x = np.asarray(matrix[r], dtype=np.float64)
        delta = x - mean
        mean = mean + delta / (r + 1)
        m2 = m2 + delta * (x - mean)
        minimum = np.minimum(minimum, x)
        maximum = np.maximum(maximum, x)
        nonzero |= x != 0.0
    return (nranks, mean, m2, minimum, maximum), nonzero


# --------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------- #
def create_store(
    experiment: Experiment, path: str, overwrite: bool = False
) -> "StoreExperiment":
    """Persist an in-memory experiment as a store and re-open it.

    Everything already attached to the experiment — summary columns,
    per-rank trees — is preserved: summaries ride along in the skeleton,
    and per-rank inclusive/exclusive values become rank matrices.
    """
    if not len(experiment.metrics):
        raise DatabaseError("cannot build a store for a metric-less experiment")
    engine = experiment.engine
    writer = StoreWriter(path, overwrite=overwrite)
    skeleton_bytes = writer.write_skeleton(experiment)
    writer.write_matrices(engine)
    nodes = engine.nodes
    rank_mids: list[int] = []
    if experiment.rank_ccts:
        from repro.hpcprof.merge import _walk_aligned

        index = {node.uid: row for row, node in enumerate(nodes)}
        nranks = len(experiment.rank_ccts)
        for desc in experiment.metrics:
            if desc.kind is not MetricKind.RAW:
                continue
            rank_mids.append(desc.mid)
            for flavor in ("inclusive", "exclusive"):
                mm = writer.create_rank_matrix(
                    desc.mid, flavor, nranks, len(nodes)
                )

                def sink(cnode, rnode, rank, _mm=mm, _mid=desc.mid,
                         _flavor=flavor):
                    values = getattr(rnode, _flavor)
                    value = values.get(_mid, 0.0)
                    if value != 0.0:
                        _mm[rank, index[cnode.uid]] += value

                for rank, cct in enumerate(experiment.rank_ccts):
                    _walk_aligned(experiment.cct.root, cct.root, rank, sink)
                mm.flush()
                del mm
    writer.finish(
        name=experiment.name,
        nnodes=len(nodes),
        num_metrics=len(experiment.metrics),
        nranks=experiment.nranks,
        rank_mids=rank_mids,
        summaries=experiment._summaries,
        extra={"skeleton_bytes": skeleton_bytes},
    )
    return open_store(path)


def open_store(path: str) -> StoreExperiment:
    """Open a store directory as a live (mmap-backed) experiment."""
    from repro.hpcprof import binio

    store = ColumnStore(path)
    base = binio.read_binary_streaming(store.skeleton_path)
    if len(base.cct) != store.nnodes or len(base.metrics) != store.num_metrics:
        raise DatabaseError(
            f"corrupt store {path}: skeleton has {len(base.cct)} scopes / "
            f"{len(base.metrics)} metrics, manifest declares "
            f"{store.nnodes} / {store.num_metrics}"
        )
    return StoreExperiment(store, base)

"""Searching a view for scopes — ranked by a metric (legacy shim).

Section VII: the tabular presentation "allows a user to select which
metric to observe and to automatically search for a possible performance
bottleneck."  This module used to implement that search with a per-node
Python walk; it is now a byte-compatible shim over the query engine
(:mod:`repro.query`), which batches the name matching and the metric
gather.  Prefer the query language for new code::

    from repro.query import query
    query("flux*").sort("CYCLES").limit(50).run(experiment)

Calling :func:`search` emits a :class:`DeprecationWarning`; results are
bit-identical to the original implementation (pinned by
``tests/test_query_shims.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

from repro.core.metrics import MetricSpec
from repro.core.views import NodeCategory, View, ViewNode

__all__ = ["SearchHit", "search"]

_DEPRECATION = (
    "repro.core.search.search() is deprecated; use repro.query.query() "
    "instead (see docs/query.md)"
)


@dataclass(frozen=True)
class SearchHit:
    """One matching scope, its ranking value, and its context path."""

    node: ViewNode
    value: float
    share: float          # of the experiment-aggregate total
    path: tuple[str, ...]  # names from a root down to the node

    def describe(self) -> str:
        pct = f" ({100 * self.share:.1f}%)" if self.share else ""
        return f"{' -> '.join(self.path)}{pct}"


def search(
    view: View,
    pattern: str,
    spec: MetricSpec | None = None,
    categories: Sequence[NodeCategory] = (),
    limit: int = 50,
    max_nodes: int = 200_000,
) -> list[SearchHit]:
    """Find scopes matching *pattern*, heaviest first.

    ``spec`` picks the ranking column (default: metric 0, inclusive).
    Lazy views are expanded as the search walks them; ``max_nodes``
    bounds the walk so a search cannot materialize an unboundedly large
    bottom-up view.

    .. deprecated::
        Use :func:`repro.query.query`; this shim forwards to the query
        engine and returns identical results.
    """
    warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
    from repro.query.compat import search_view  # lazy: keep import light

    return [
        SearchHit(node=node, value=value, share=share, path=path)
        for node, value, share, path in search_view(
            view, pattern, spec=spec, categories=categories,
            limit=limit, max_nodes=max_nodes,
        )
    ]

"""Searching a view for scopes — ranked by a metric.

Section VII: the tabular presentation "allows a user to select which
metric to observe and to automatically search for a possible performance
bottleneck."  This module provides that search: match scopes by name
glob (optionally by category), rank matches by any metric column, and
report each hit with its path from the root so an analyst can jump
straight to the right context.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ViewError
from repro.core.metrics import MetricFlavor, MetricSpec
from repro.core.views import NodeCategory, View, ViewNode

__all__ = ["SearchHit", "search"]


@dataclass(frozen=True)
class SearchHit:
    """One matching scope, its ranking value, and its context path."""

    node: ViewNode
    value: float
    share: float          # of the experiment-aggregate total
    path: tuple[str, ...]  # names from a root down to the node

    def describe(self) -> str:
        pct = f" ({100 * self.share:.1f}%)" if self.share else ""
        return f"{' -> '.join(self.path)}{pct}"


def search(
    view: View,
    pattern: str,
    spec: MetricSpec | None = None,
    categories: Sequence[NodeCategory] = (),
    limit: int = 50,
    max_nodes: int = 200_000,
) -> list[SearchHit]:
    """Find scopes matching *pattern*, heaviest first.

    ``spec`` picks the ranking column (default: metric 0, inclusive).
    Lazy views are expanded as the search walks them; ``max_nodes``
    bounds the walk so a search cannot materialize an unboundedly large
    bottom-up view.
    """
    if not pattern:
        raise ViewError("empty search pattern")
    if limit < 1:
        raise ViewError(f"limit must be >= 1, got {limit}")
    spec = spec or MetricSpec(0, MetricFlavor.INCLUSIVE)
    total = view.total(MetricSpec(spec.mid, MetricFlavor.INCLUSIVE))
    hits: list[SearchHit] = []
    visited = 0

    stack: list[tuple[ViewNode, tuple[str, ...]]] = [
        (root, (root.name,)) for root in reversed(view.roots)
    ]
    while stack and visited < max_nodes:
        node, path = stack.pop()
        visited += 1
        if (not categories or node.category in categories) and \
                fnmatch.fnmatchcase(node.name, pattern):
            value = view.value(node, spec)
            hits.append(
                SearchHit(
                    node=node,
                    value=value,
                    share=(value / total) if total else 0.0,
                    path=path,
                )
            )
        for child in reversed(node.children):
            stack.append((child, path + (child.name,)))

    hits.sort(key=lambda h: -h.value)
    return hits[:limit]

"""Performance metric descriptors and sparse metric arithmetic.

The paper uses *metric* for any measured or computed quantity attributed to
a program scope: measures of work (cycles, instructions, FLOPs), resource
consumption (cache misses, bus transactions) or inefficiency (stall cycles,
derived waste).  A profile carries a table of metric descriptors; every
scope carries a *sparse* mapping ``{metric id: value}`` — the paper's
presentation principle "performance data is sparse" is reflected directly
in the storage model: zero values are simply absent.

Two flavours of per-scope values exist for every metric (Section IV):

* *exclusive*  — cost attributed to the scope itself (hybrid rule, Eq. 1);
* *inclusive*  — cost of the entire subtree rooted at the scope (Eq. 2).

:class:`MetricSpec` names one of these flavours of one metric; display
columns and derived-metric formulas are defined in terms of specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable, Iterator, Mapping

from repro.errors import MetricError

__all__ = [
    "MetricKind",
    "MetricFlavor",
    "MetricDescriptor",
    "MetricSpec",
    "MetricTable",
    "MetricValues",
    "add_into",
    "scale",
    "total",
]

#: Sparse metric vector: metric id -> value.  Zero entries are absent.
MetricValues = dict[int, float]


class MetricKind(Enum):
    """Provenance of a metric column."""

    RAW = "raw"            # directly measured (samples x period)
    DERIVED = "derived"    # computed from other columns by a formula
    SUMMARY = "summary"    # statistical summary over ranks/threads


class MetricFlavor(Enum):
    """Which per-scope value of a metric a column shows."""

    EXCLUSIVE = "exclusive"
    INCLUSIVE = "inclusive"

    @property
    def short(self) -> str:
        return "E" if self is MetricFlavor.EXCLUSIVE else "I"


@dataclass(frozen=True, slots=True)
class MetricDescriptor:
    """Description of one metric.

    ``period`` is the sampling period: a raw metric's value is
    ``samples * period`` (the asynchronous-sampling cost model).
    """

    mid: int
    name: str
    unit: str = ""
    period: float = 1.0
    kind: MetricKind = MetricKind.RAW
    formula: str = ""
    description: str = ""
    #: show a percent-of-total column next to values
    show_percent: bool = True

    def __post_init__(self) -> None:
        if self.mid < 0:
            raise MetricError(f"metric id must be non-negative, got {self.mid}")
        if not self.name:
            raise MetricError("metric name must be non-empty")
        if self.period <= 0:
            raise MetricError(f"metric period must be positive, got {self.period}")
        if self.kind is MetricKind.DERIVED and not self.formula:
            raise MetricError(f"derived metric {self.name!r} needs a formula")


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """A (metric, flavor) pair — one conceptual column of the metric pane."""

    mid: int
    flavor: MetricFlavor = MetricFlavor.INCLUSIVE

    def __str__(self) -> str:
        return f"{self.mid}{self.flavor.short}"


class MetricTable:
    """Registry of the metrics attached to one experiment.

    Metric ids are dense, assigned in registration order, and stable across
    serialization — they index the sparse per-scope vectors.
    """

    def __init__(self) -> None:
        self._by_id: list[MetricDescriptor] = []
        self._by_name: dict[str, MetricDescriptor] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add(
        self,
        name: str,
        unit: str = "",
        period: float = 1.0,
        kind: MetricKind = MetricKind.RAW,
        formula: str = "",
        description: str = "",
        show_percent: bool = True,
    ) -> MetricDescriptor:
        """Register a new metric; returns its descriptor."""
        if name in self._by_name:
            raise MetricError(f"duplicate metric name {name!r}")
        desc = MetricDescriptor(
            mid=len(self._by_id),
            name=name,
            unit=unit,
            period=period,
            kind=kind,
            formula=formula,
            description=description,
            show_percent=show_percent,
        )
        self._by_id.append(desc)
        self._by_name[name] = desc
        return desc

    def add_descriptor(self, desc: MetricDescriptor) -> MetricDescriptor:
        """Register a pre-built descriptor, reassigning its id."""
        return self.add(
            desc.name,
            unit=desc.unit,
            period=desc.period,
            kind=desc.kind,
            formula=desc.formula,
            description=desc.description,
            show_percent=desc.show_percent,
        )

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[MetricDescriptor]:
        return iter(self._by_id)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def by_id(self, mid: int) -> MetricDescriptor:
        try:
            return self._by_id[mid]
        except IndexError:
            raise MetricError(f"unknown metric id {mid}") from None

    def by_name(self, name: str) -> MetricDescriptor:
        try:
            return self._by_name[name]
        except KeyError:
            raise MetricError(f"unknown metric {name!r}") from None

    def spec(self, name: str, flavor: MetricFlavor = MetricFlavor.INCLUSIVE) -> MetricSpec:
        """Convenience: build a :class:`MetricSpec` from a metric name."""
        return MetricSpec(self.by_name(name).mid, flavor)

    def names(self) -> list[str]:
        return [d.name for d in self._by_id]

    def copy(self) -> "MetricTable":
        table = MetricTable()
        for desc in self._by_id:
            table._by_id.append(desc)
            table._by_name[desc.name] = desc
        return table


# ---------------------------------------------------------------------- #
# sparse vector arithmetic
# ---------------------------------------------------------------------- #
def add_into(dst: MetricValues, src: Mapping[int, float], factor: float = 1.0) -> None:
    """``dst += factor * src`` in place; entries that become 0 are kept out."""
    for mid, value in src.items():
        new = dst.get(mid, 0.0) + factor * value
        if new == 0.0:
            dst.pop(mid, None)
        else:
            dst[mid] = new


def scale(values: Mapping[int, float], factor: float) -> MetricValues:
    """Return ``factor * values`` as a new sparse vector."""
    if factor == 0.0:
        return {}
    return {mid: factor * v for mid, v in values.items()}


def total(vectors: Iterable[Mapping[int, float]]) -> MetricValues:
    """Sum an iterable of sparse vectors into a new one."""
    out: MetricValues = {}
    for vec in vectors:
        add_into(out, vec)
    return out

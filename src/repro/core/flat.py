"""The Flat View (Section III-C) — costs correlated to static structure.

All costs a procedure incurs in *any* calling context are aggregated onto
the static hierarchy: load module → file → procedure → loop nests /
inlined code → statements.  Call sites inside a procedure appear fused
with their callee (inclusive = the callee's cost over every context
reaching that call site), so the view answers "what does this source line
cost in total?".

Aggregation rules (matching Figure 2c exactly):

* a **procedure** row sums the attributed values of its *exposed* frame
  instances (``g`` = inclusive 9, exclusive 4 despite three instances);
* **file / load-module / root** rows take inclusive values from the
  exposed subset of all frames below them (``file2`` = 9: ``h``'s cost is
  already inside ``g``'s) and exclusive values as the plain sum of their
  children's exclusives (``file2`` = 8 = g:4 + h:4);
* **loops and statements** aggregate the matching CCT scopes across all
  contexts, again exposure-filtered so recursive contexts count once;
* a **call-site** row fused with callee ``c`` shows the exposed sum of the
  callee frames reached from that line; with ``fused=False`` it shows the
  rule-1 dynamic-scope values instead — inclusive = cost at the line plus
  callee cost, exclusive = only the cost of the invocation itself (the
  node ``h_y`` of Figure 2c).

Flattening (Section III-C): :meth:`FlatView.flatten` elides the current
root level and shows its children instead — leaves are kept — which lets
an analyst compare loops across different routines directly.
"""

from __future__ import annotations

from repro.core.attribution import exposed_instances
from repro.core.cct import CCT, CCTKind, CCTNode
from repro.core.metrics import MetricTable, MetricValues, add_into, total
from repro.core.views import NodeCategory, View, ViewKind, ViewNode
from repro.hpcstruct.model import StructKind, StructureNode

__all__ = ["FlatView"]


class FlatView(View):
    """Static (flat) view over a canonical CCT."""

    kind = ViewKind.FLAT

    def __init__(
        self,
        cct: CCT,
        metrics: MetricTable,
        fused: bool = True,
        show_load_modules: bool = False,
        engine=None,
    ) -> None:
        super().__init__(
            metrics, title="Flat View", totals=cct.root.inclusive, engine=engine
        )
        self.cct = cct
        self.fused = fused
        #: when False, files are the top level (load modules elided), which
        #: matches the single-binary examples in the paper's figures.
        self.show_load_modules = show_load_modules
        self.flatten_depth = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_roots(self) -> list[ViewNode]:
        by_proc = self.cct.frames_by_procedure()
        files: dict[StructureNode, list[tuple[StructureNode, list[CCTNode]]]] = {}
        for proc, frames in by_proc.items():
            file_scope = proc.enclosing_file
            files.setdefault(file_scope, []).append((proc, frames))

        modules: dict[StructureNode, list[ViewNode]] = {}
        for file_scope, procs in files.items():
            proc_rows = [self._procedure_row(proc, frames) for proc, frames in procs]
            all_frames = [f for _p, frames in procs for f in frames]
            inclusive = total(n.inclusive for n in exposed_instances(all_frames))
            exclusive: MetricValues = {}
            for row in proc_rows:
                add_into(exclusive, row.exclusive)
            file_row = ViewNode(
                name=file_scope.name if file_scope is not None else "<unknown file>",
                category=NodeCategory.FILE,
                inclusive=inclusive,
                exclusive=exclusive,
                struct=file_scope,
                cct_nodes=all_frames,
            )
            file_row.set_children(proc_rows)
            lm = file_scope.parent if file_scope is not None else None
            modules.setdefault(lm, []).append(file_row)

        if not self.show_load_modules:
            return [row for rows in modules.values() for row in rows]

        lm_rows: list[ViewNode] = []
        for lm, file_rows in modules.items():
            all_frames = [f for row in file_rows for f in row.cct_nodes]
            inclusive = total(n.inclusive for n in exposed_instances(all_frames))
            exclusive = {}
            for row in file_rows:
                add_into(exclusive, row.exclusive)
            lm_row = ViewNode(
                name=lm.name if lm is not None else "<unknown load module>",
                category=NodeCategory.LOAD_MODULE,
                inclusive=inclusive,
                exclusive=exclusive,
                struct=lm,
                cct_nodes=all_frames,
            )
            lm_row.set_children(file_rows)
            lm_rows.append(lm_row)
        return lm_rows

    # ------------------------------------------------------------------ #
    def _procedure_row(self, proc: StructureNode, frames: list[CCTNode]) -> ViewNode:
        inclusive, exclusive = self._aggregate_exposed(frames)
        has_source = not proc.location.file.startswith("<unknown")
        row = ViewNode(
            name=proc.name,
            category=NodeCategory.PROCEDURE,
            inclusive=inclusive,
            exclusive=exclusive,
            struct=proc,
            line=proc.location.line,
            cct_nodes=frames,
            expander=self._make_expander(frames),
            has_source=has_source,
        )
        return row

    def _make_expander(self, group: list[CCTNode]):
        """Lazy expander merging the inner scopes of a group of CCT nodes."""

        def expand(_row: ViewNode) -> list[ViewNode]:
            loops: dict[StructureNode, list[CCTNode]] = {}
            stmts: dict[int, list[CCTNode]] = {}
            sites: dict[int, list[CCTNode]] = {}
            for node in group:
                for child in node.children:
                    if child.kind is CCTKind.LOOP:
                        loops.setdefault(child.struct, []).append(child)
                    elif child.kind is CCTKind.STATEMENT:
                        stmts.setdefault(child.line, []).append(child)
                    elif child.kind is CCTKind.CALL_SITE:
                        sites.setdefault(child.line, []).append(child)
            rows: list[ViewNode] = []
            for struct, nodes in loops.items():
                inclusive, exclusive = self._aggregate_exposed(nodes)
                category = (
                    NodeCategory.INLINED if struct.kind.is_inlined else NodeCategory.LOOP
                )
                rows.append(
                    ViewNode(
                        name=(
                            struct.name
                            if struct.kind is StructKind.INLINED_PROC
                            else f"loop at {struct.location}"
                        ),
                        category=category,
                        inclusive=inclusive,
                        exclusive=exclusive,
                        struct=struct,
                        line=struct.location.line,
                        cct_nodes=nodes,
                        expander=self._make_expander(nodes),
                    )
                )
            for line, nodes in stmts.items():
                inclusive = total(n.inclusive for n in nodes)
                exclusive = total(n.exclusive for n in nodes)
                rows.append(
                    ViewNode(
                        name=nodes[0].name,
                        category=NodeCategory.STATEMENT,
                        inclusive=inclusive,
                        exclusive=exclusive,
                        struct=nodes[0].struct,
                        line=line,
                        cct_nodes=nodes,
                    )
                )
            for line, site_nodes in sites.items():
                rows.extend(self._call_site_rows(line, site_nodes))
            return rows

        return expand

    def _call_site_rows(self, line: int, sites: list[CCTNode]) -> list[ViewNode]:
        """Rows for one call-site line, grouped by callee procedure."""
        by_callee: dict[StructureNode, list[CCTNode]] = {}
        site_raw = total(s.raw for s in sites)
        for site in sites:
            for frame in site.children:
                if frame.kind is CCTKind.FRAME:
                    by_callee.setdefault(frame.struct, []).append(frame)
        rows: list[ViewNode] = []
        if not by_callee and site_raw:
            # sampled call line whose callee was never observed on a stack
            rows.append(
                ViewNode(
                    name=sites[0].name,
                    category=NodeCategory.STATEMENT,
                    inclusive=site_raw,
                    exclusive=site_raw,
                    struct=sites[0].struct,
                    line=line,
                    cct_nodes=sites,
                )
            )
            return rows
        for callee, frames in by_callee.items():
            inclusive, exclusive = self._aggregate_exposed(frames)
            if self.fused:
                fused_excl = dict(exclusive)
                add_into(fused_excl, site_raw)
                incl, excl = inclusive, fused_excl
            else:
                # rule-1 dynamic scope: the call itself (node h_y of Fig. 2c)
                incl = dict(inclusive)
                add_into(incl, site_raw)
                excl = dict(site_raw)
            rows.append(
                ViewNode(
                    name=callee.name,
                    category=NodeCategory.CALL_SITE,
                    inclusive=incl,
                    exclusive=excl,
                    struct=callee,
                    line=line,
                    file=sites[0].struct.location.file if sites[0].struct else "",
                    cct_nodes=frames,
                )
            )
        return rows

    # ------------------------------------------------------------------ #
    # flattening
    # ------------------------------------------------------------------ #
    def flatten(self) -> None:
        """Elide the current top level; show its children instead."""
        self.flatten_depth += 1

    def unflatten(self) -> None:
        if self.flatten_depth > 0:
            self.flatten_depth -= 1

    def current_roots(self) -> list[ViewNode]:
        """Roots after applying the current flattening depth.

        Flattening a leaf has no effect: leaves at the elided level are
        retained, so costs never disappear from the view.
        """
        rows = list(self.roots)
        for _ in range(self.flatten_depth):
            nxt: list[ViewNode] = []
            changed = False
            for row in rows:
                children = row.children
                if children:
                    nxt.extend(children)
                    changed = True
                else:
                    nxt.append(row)
            rows = nxt
            if not changed:
                break
        return rows

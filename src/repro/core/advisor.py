"""A tuning advisor — the paper's ongoing work, made concrete.

Section IX lists as ongoing work "identifying data reuse patterns and
suggesting program transformations to improve program performance".
The rule implementations live in :mod:`repro.query.rules`, expressed as
vectorized queries over the metric engine; this module keeps the
public advisor surface — :class:`Advisor` with its adjustable
thresholds, :func:`advise`, :func:`advise_regressions` — and delegates.
Suggestions are bit-identical to the historical per-node rule loops.

Rules are deliberately conservative and evidence-first: a suggestion
without numbers attached is noise, so every rule reports *why* it fired.
"""

from __future__ import annotations

from repro.hpcprof.experiment import Experiment
from repro.query.rules import (
    Suggestion,
    context_rule,
    imbalance_rule,
    loop_rules,
)

__all__ = ["Suggestion", "Advisor", "advise", "advise_regressions"]


class Advisor:
    """Runs the rule set over one experiment."""

    #: rule thresholds, adjustable like viewer preferences
    min_impact: float = 0.02          # ignore scopes under 2% of cycles
    memory_bound_miss_rate: float = 0.01   # L1 misses per cycle
    low_efficiency: float = 0.15      # fraction of peak FLOPS
    tight_efficiency: float = 0.30    # "already tuned" boundary
    imbalance_cov: float = 0.10       # stddev/mean over ranks

    def __init__(self, experiment: Experiment,
                 peak_flops_per_cycle: float = 4.0) -> None:
        self.experiment = experiment
        self.peak = peak_flops_per_cycle

    # ------------------------------------------------------------------ #
    def advise(self) -> list[Suggestion]:
        """All suggestions, highest impact first."""
        out: list[Suggestion] = []
        out.extend(self._loop_rules())
        out.extend(self._imbalance_rule())
        out.extend(self._context_rule())
        out.sort(key=lambda s: -s.impact)
        return out

    # ------------------------------------------------------------------ #
    def _loop_rules(self) -> list[Suggestion]:
        return loop_rules(
            self.experiment, self.peak,
            min_impact=self.min_impact,
            memory_bound_miss_rate=self.memory_bound_miss_rate,
            low_efficiency=self.low_efficiency,
            tight_efficiency=self.tight_efficiency,
        )

    def _imbalance_rule(self) -> list[Suggestion]:
        return imbalance_rule(
            self.experiment, imbalance_cov=self.imbalance_cov
        )

    def _context_rule(self) -> list[Suggestion]:
        return context_rule(self.experiment, min_impact=self.min_impact)


def advise(experiment: Experiment,
           peak_flops_per_cycle: float = 4.0) -> list[Suggestion]:
    """Convenience: run the advisor over an experiment."""
    return Advisor(experiment, peak_flops_per_cycle).advise()


def advise_regressions(ensemble, **kwargs) -> list[Suggestion]:
    """Regression findings over an ensemble, as tuning suggestions.

    Runs :func:`repro.core.ensemble.detect_regressions` on the
    :class:`~repro.core.ensemble.EnsembleView` (keyword arguments pass
    through: ``metric``, ``target``, ``baseline``, ``threshold``,
    ``sigma``, ``min_share``) and wraps each finding in the advisor's
    evidence-first :class:`Suggestion` shape — same sort order as the
    findings (largest share shift first), ``impact`` = |delta share|.
    """
    from repro.core.ensemble import detect_regressions

    out: list[Suggestion] = []
    for finding in detect_regressions(ensemble, **kwargs):
        if finding.kind == "regression":
            transformation = (
                f"inclusive {finding.metric} share grew against the "
                f"baseline corpus: bisect what changed on this path in "
                f"{finding.target!r} (code, inputs, or configuration)"
            )
        else:
            transformation = (
                f"inclusive {finding.metric} share shrank against the "
                f"baseline corpus: verify the win is real (not work "
                f"moved elsewhere) before celebrating"
            )
        evidence = {
            "target_share": finding.target_share,
            "baseline_mean": finding.baseline_mean,
            "baseline_stddev": finding.baseline_stddev,
            "delta": finding.delta,
        }
        if finding.sigmas is not None:
            evidence["sigmas"] = finding.sigmas
        out.append(Suggestion(
            rule=f"ensemble-{finding.kind}",
            scope=finding.scope,
            location=" -> ".join(finding.path) or "<program root>",
            transformation=transformation,
            evidence=evidence,
            impact=abs(finding.delta),
        ))
    return out

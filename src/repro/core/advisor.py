"""A tuning advisor — the paper's ongoing work, made concrete.

Section IX lists as ongoing work "identifying data reuse patterns and
suggesting program transformations to improve program performance".
This module implements a rule-based advisor over an analyzed experiment:
each rule inspects the views/metrics the paper's machinery already
produces and, when its evidence threshold is met, emits a
:class:`Suggestion` carrying the scope, the evidence values, and the
transformation the Figure 6 case study actually applied (scalarization/
fusion/unroll-and-jam for the streaming flux loop; vectorized math-
library calls for the tight exponential loop; repartitioning for load
imbalance).

Rules are deliberately conservative and evidence-first: a suggestion
without numbers attached is noise, so every rule reports *why* it fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.metrics import MetricFlavor
from repro.core.views import NodeCategory, ViewNode
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.counters import CYCLES, FLOPS, L1_DCM

__all__ = ["Suggestion", "Advisor", "advise", "advise_regressions"]


@dataclass(frozen=True)
class Suggestion:
    """One tuning opportunity with its evidence."""

    rule: str
    scope: str
    location: str
    transformation: str
    evidence: dict[str, float]
    #: estimated share of total cycles touched by the scope
    impact: float

    def describe(self) -> str:
        facts = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self.evidence.items()))
        return (
            f"[{self.rule}] {self.scope} ({self.location}; "
            f"~{100 * self.impact:.1f}% of cycles)\n"
            f"    -> {self.transformation}\n"
            f"    evidence: {facts}"
        )


class Advisor:
    """Runs the rule set over one experiment."""

    #: rule thresholds, adjustable like viewer preferences
    min_impact: float = 0.02          # ignore scopes under 2% of cycles
    memory_bound_miss_rate: float = 0.01   # L1 misses per cycle
    low_efficiency: float = 0.15      # fraction of peak FLOPS
    tight_efficiency: float = 0.30    # "already tuned" boundary
    imbalance_cov: float = 0.10       # stddev/mean over ranks

    def __init__(self, experiment: Experiment,
                 peak_flops_per_cycle: float = 4.0) -> None:
        self.experiment = experiment
        self.peak = peak_flops_per_cycle

    # ------------------------------------------------------------------ #
    def advise(self) -> list[Suggestion]:
        """All suggestions, highest impact first."""
        out: list[Suggestion] = []
        out.extend(self._loop_rules())
        out.extend(self._imbalance_rule())
        out.extend(self._context_rule())
        out.sort(key=lambda s: -s.impact)
        return out

    # ------------------------------------------------------------------ #
    def _metric(self, name: str) -> int | None:
        return (self.experiment.metrics.by_name(name).mid
                if name in self.experiment.metrics else None)

    def _loops(self) -> list[ViewNode]:
        flat = self.experiment.flat_view()
        loops = []
        for root in flat.roots:
            loops.extend(
                n for n in root.walk()
                if n.category in (NodeCategory.LOOP, NodeCategory.INLINED)
            )
        return loops

    def _loop_rules(self) -> list[Suggestion]:
        cyc = self._metric(CYCLES)
        if cyc is None:
            return []
        fl = self._metric(FLOPS)
        l1 = self._metric(L1_DCM)
        total = self.experiment.cct.root.inclusive.get(cyc, 0.0)
        if total <= 0:
            return []
        out = []
        for loop in self._loops():
            cycles = loop.exclusive.get(cyc, 0.0)
            impact = cycles / total
            if impact < self.min_impact:
                continue
            flops = loop.exclusive.get(fl, 0.0) if fl is not None else 0.0
            misses = loop.exclusive.get(l1, 0.0) if l1 is not None else 0.0
            efficiency = flops / (self.peak * cycles) if cycles else 0.0
            miss_rate = misses / cycles if cycles else 0.0
            location = str(loop.struct.location) if loop.struct else loop.name
            if l1 is not None and miss_rate >= self.memory_bound_miss_rate \
                    and efficiency < self.low_efficiency:
                out.append(Suggestion(
                    rule="memory-bound-loop",
                    scope=loop.name,
                    location=location,
                    transformation=(
                        "streaming through the memory hierarchy: exploit "
                        "data reuse in cache via loop scalarization, fusion, "
                        "unswitching, and unroll-and-jam (the Figure 6 fix)"
                    ),
                    evidence={"efficiency": efficiency,
                              "l1_misses_per_cycle": miss_rate},
                    impact=impact,
                ))
            elif fl is not None and 0 < efficiency < self.low_efficiency:
                out.append(Suggestion(
                    rule="low-efficiency-compute",
                    scope=loop.name,
                    location=location,
                    transformation=(
                        "far from peak without being cache-bound: check "
                        "vectorization, dependence chains, and instruction mix"
                    ),
                    evidence={"efficiency": efficiency},
                    impact=impact,
                ))
            elif fl is not None and efficiency >= self.tight_efficiency:
                out.append(Suggestion(
                    rule="already-tight",
                    scope=loop.name,
                    location=location,
                    transformation=(
                        "running near achievable rate; prefer algorithmic "
                        "changes (fewer calls, batched/vectorized variants) "
                        "over micro-tuning"
                    ),
                    evidence={"efficiency": efficiency},
                    impact=impact,
                ))
        return out

    def _imbalance_rule(self) -> list[Suggestion]:
        exp = self.experiment
        cyc = self._metric(CYCLES)
        if cyc is None or not exp.rank_ccts:
            return []
        vec = exp.rank_vector(exp.cct.root, CYCLES)
        mean = float(vec.mean())
        if mean <= 0:
            return []
        cov = float(vec.std() / mean)
        if cov < self.imbalance_cov:
            return []
        # localize: hot path on idleness if present, else on max-rank cycles
        idle_name = next(
            (d.name for d in exp.metrics if "idle" in d.name.lower()), None
        )
        context = ""
        if idle_name is not None and exp.total(idle_name) > 0:
            result = exp.hot_path(idle_name)
            context = " -> ".join(n.name for n in result.path[-3:])
        return [Suggestion(
            rule="load-imbalance",
            scope="<whole execution>",
            location=context or "per-rank totals",
            transformation=(
                "uneven work across ranks: repartition the domain (weight "
                "by measured per-cell cost) or over-decompose and balance "
                "dynamically"
            ),
            evidence={"cov": cov,
                      "max_over_mean": float(vec.max() / mean)},
            impact=float((vec.max() - mean) / vec.sum() * len(vec)),
        )]

    def _context_rule(self) -> list[Suggestion]:
        """Callees whose cost is wildly context-dependent: specialization
        or caller-side fixes beat tuning the callee in isolation."""
        exp = self.experiment
        cyc = self._metric(CYCLES)
        if cyc is None:
            return []
        total = exp.cct.root.inclusive.get(cyc, 0.0)
        if total <= 0:
            return []
        out = []
        callers = exp.callers_view()
        for row in callers.roots:
            value = row.inclusive.get(cyc, 0.0)
            if value / total < 2 * self.min_impact:
                continue
            shares = np.array([
                c.inclusive.get(cyc, 0.0) for c in row.children
            ])
            if len(shares) < 2 or shares.sum() <= 0:
                continue
            top = float(shares.max() / shares.sum())
            if top >= 0.9:
                out.append(Suggestion(
                    rule="single-context-callee",
                    scope=row.name,
                    location=f"{len(shares)} calling contexts",
                    transformation=(
                        "one caller dominates this procedure's cost: tune "
                        "that call path (or inline/specialize for it) rather "
                        "than the procedure in general"
                    ),
                    evidence={"dominant_context_share": top},
                    impact=value / total,
                ))
        return out


def advise(experiment: Experiment,
           peak_flops_per_cycle: float = 4.0) -> list[Suggestion]:
    """Convenience: run the advisor over an experiment."""
    return Advisor(experiment, peak_flops_per_cycle).advise()


def advise_regressions(ensemble, **kwargs) -> list[Suggestion]:
    """Regression findings over an ensemble, as tuning suggestions.

    Runs :func:`repro.core.ensemble.detect_regressions` on the
    :class:`~repro.core.ensemble.EnsembleView` (keyword arguments pass
    through: ``metric``, ``target``, ``baseline``, ``threshold``,
    ``sigma``, ``min_share``) and wraps each finding in the advisor's
    evidence-first :class:`Suggestion` shape — same sort order as the
    findings (largest share shift first), ``impact`` = |delta share|.
    """
    from repro.core.ensemble import detect_regressions

    out: list[Suggestion] = []
    for finding in detect_regressions(ensemble, **kwargs):
        if finding.kind == "regression":
            transformation = (
                f"inclusive {finding.metric} share grew against the "
                f"baseline corpus: bisect what changed on this path in "
                f"{finding.target!r} (code, inputs, or configuration)"
            )
        else:
            transformation = (
                f"inclusive {finding.metric} share shrank against the "
                f"baseline corpus: verify the win is real (not work "
                f"moved elsewhere) before celebrating"
            )
        evidence = {
            "target_share": finding.target_share,
            "baseline_mean": finding.baseline_mean,
            "baseline_stddev": finding.baseline_stddev,
            "delta": finding.delta,
        }
        if finding.sigmas is not None:
            evidence["sigmas"] = finding.sigmas
        out.append(Suggestion(
            rule=f"ensemble-{finding.kind}",
            scope=finding.scope,
            location=" -> ".join(finding.path) or "<program root>",
            transformation=transformation,
            evidence=evidence,
            impact=abs(finding.delta),
        ))
    return out

"""The Callers View (Section III-B) — a bottom-up view of calling contexts.

Each top-level entry is one procedure, aggregated over *all* contexts in
which it was called; beneath it, each level walks one step *up* the call
chains, apportioning the procedure's cost among its callers, its callers'
callers, and so on.  This is the view that answers "who is responsible
for the cost of ``MPI_Wait`` / ``memset`` across the whole program?".

Recursion is handled with the exposed-instance rule of Section IV-B: the
cost attributed to a (partial) caller chain is the sum over the matching
CCT instances that have no ancestor instance also matching — so a chain
of recursive calls is counted once.  For the Figure 1 program this yields
the exact numbers of Figure 2b (top-level g = inclusive 9, exclusive 4;
the recursive caller child g←g = inclusive 5).

Scalability: the view is constructed *lazily* (Section VII).  Building the
view materializes only the top-level procedure entries; caller chains are
expanded on demand.  ``eager=True`` forces full construction, which the
scalability benchmarks use as the ablation baseline.
"""

from __future__ import annotations

from repro.core.cct import CCT, CCTKind, CCTNode
from repro.core.metrics import MetricTable
from repro.core.views import NodeCategory, View, ViewKind, ViewNode
from repro.hpcstruct.model import StructureNode

__all__ = ["CallersView"]


def _caller_frame(frame: CCTNode) -> CCTNode | None:
    """The procedure frame that invoked *frame* (None for entry frames)."""
    parent = frame.parent
    if parent is None:
        return None
    return parent.enclosing_frame


class CallersView(View):
    """Bottom-up (callee → callers) view over a canonical CCT."""

    kind = ViewKind.CALLERS

    def __init__(
        self, cct: CCT, metrics: MetricTable, eager: bool = False, engine=None
    ) -> None:
        super().__init__(
            metrics, title="Callers View", totals=cct.root.inclusive, engine=engine
        )
        self.cct = cct
        self._eager = eager

    # ------------------------------------------------------------------ #
    def _build_roots(self) -> list[ViewNode]:
        roots: list[ViewNode] = []
        for proc, frames in self.cct.frames_by_procedure().items():
            inclusive, exclusive = self._aggregate_exposed(frames)
            node = ViewNode(
                name=proc.name,
                category=NodeCategory.PROCEDURE,
                inclusive=inclusive,
                exclusive=exclusive,
                struct=proc,
                line=proc.location.line,
                cct_nodes=frames,
                expander=self._make_expander([(f, f) for f in frames]),
            )
            roots.append(node)
        if self._eager:
            for node in roots:
                for _ in node.walk():
                    pass
        return roots

    # ------------------------------------------------------------------ #
    def _make_expander(self, entries: list[tuple[CCTNode, CCTNode]]):
        """Build the lazy child expander for one callers-view row.

        *entries* is a list of ``(instance, chain_frame)`` pairs: the
        original callee instance, and the frame reached so far while
        walking up its call chain.  Children group the entries by the
        procedure of the next caller up.
        """

        def expand(_row: ViewNode) -> list[ViewNode]:
            groups: dict[StructureNode, list[tuple[CCTNode, CCTNode]]] = {}
            call_lines: dict[StructureNode, set[tuple[str, int]]] = {}
            for instance, chain_frame in entries:
                caller = _caller_frame(chain_frame)
                if caller is None:
                    continue  # chain reached an entry point; nothing above
                groups.setdefault(caller.struct, []).append((instance, caller))
                site = chain_frame.parent
                if site is not None and site.kind is CCTKind.CALL_SITE:
                    file = site.struct.location.file if site.struct is not None else ""
                    call_lines.setdefault(caller.struct, set()).add((file, site.line))
            rows: list[ViewNode] = []
            for proc, sub_entries in groups.items():
                instances = [inst for inst, _caller in sub_entries]
                inclusive, exclusive = self._aggregate_exposed(instances)
                sites = sorted(call_lines.get(proc, ()))
                line = sites[0][1] if sites else proc.location.line
                file = sites[0][0] if sites else proc.location.file
                rows.append(
                    ViewNode(
                        name=proc.name,
                        category=NodeCategory.CALLER,
                        inclusive=inclusive,
                        exclusive=exclusive,
                        struct=proc,
                        line=line,
                        file=file,
                        cct_nodes=instances,
                        expander=self._make_expander(sub_entries),
                    )
                )
            return rows

        return expand

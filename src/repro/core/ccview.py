"""The Calling Context View (Section III-A).

A top-down presentation of the canonical CCT: dynamic calling contexts
interleaved with static structure (loops, inlined code, statements).

Call-site / callee fusion
-------------------------
Following Section V-B, a call site and its callee are presented on a
*single* row: the row's inclusive cost is the inclusive cost attributed to
the callee in that context; its exclusive cost is the callee's own
(frame-exclusive) cost plus any cost associated with the call-site line
itself.  The paper reports this halves the length of displayed call
chains; ``fused=False`` reproduces the earlier two-line design so the
claim can be measured (see ``benchmarks/bench_fusion.py``).

Rows are materialized lazily so opening a view over a huge CCT touches
only the expanded prefix.
"""

from __future__ import annotations

from repro.core.cct import CCT, CCTKind, CCTNode
from repro.core.metrics import MetricTable, MetricValues, add_into
from repro.core.views import NodeCategory, View, ViewKind, ViewNode

__all__ = ["CallingContextView"]


class CallingContextView(View):
    """Top-down view over a canonical CCT."""

    kind = ViewKind.CALLING_CONTEXT

    def __init__(
        self, cct: CCT, metrics: MetricTable, fused: bool = True, engine=None
    ) -> None:
        super().__init__(
            metrics,
            title="Calling Context View",
            totals=cct.root.inclusive,
            engine=engine,
        )
        self.cct = cct
        self.fused = fused

    # ------------------------------------------------------------------ #
    def _build_roots(self) -> list[ViewNode]:
        return self._rows_for(self.cct.root.children)

    def _rows_for(self, cct_children: list[CCTNode]) -> list[ViewNode]:
        rows: list[ViewNode] = []
        for node in cct_children:
            if node.kind is CCTKind.CALL_SITE and self.fused:
                rows.extend(self._fused_rows(node))
            else:
                rows.append(self._plain_row(node))
        return rows

    # ------------------------------------------------------------------ #
    def _plain_row(self, node: CCTNode) -> ViewNode:
        category = {
            CCTKind.FRAME: NodeCategory.PROCEDURE_FRAME,
            CCTKind.CALL_SITE: NodeCategory.CALL_SITE,
            CCTKind.LOOP: NodeCategory.LOOP,
            CCTKind.STATEMENT: NodeCategory.STATEMENT,
            CCTKind.ROOT: NodeCategory.ROOT,
        }[node.kind]
        if (
            node.kind is CCTKind.LOOP
            and node.struct is not None
            and node.struct.kind.is_inlined
        ):
            category = NodeCategory.INLINED
        struct = node.struct
        has_source = not (
            struct is not None
            and struct.location.file.startswith("<unknown")
        )
        return ViewNode(
            name=node.name,
            category=category,
            inclusive=node.inclusive,
            exclusive=node.exclusive,
            struct=struct,
            line=node.line or (struct.location.line if struct is not None else 0),
            cct_nodes=[node],
            expander=lambda row, n=node: self._rows_for(n.children),
            has_source=has_source,
        )

    def _fused_rows(self, site: CCTNode) -> list[ViewNode]:
        """One row per callee frame under a call site, fused per Section V-B."""
        frames = [c for c in site.children if c.kind is CCTKind.FRAME]
        others = [c for c in site.children if c.kind is not CCTKind.FRAME]
        rows: list[ViewNode] = []
        for frame in frames:
            exclusive: MetricValues = dict(frame.exclusive)
            add_into(exclusive, site.raw)  # cost at the call instruction itself
            struct = frame.struct
            has_source = not (
                struct is not None and struct.location.file.startswith("<unknown")
            )
            rows.append(
                ViewNode(
                    name=frame.name,
                    category=NodeCategory.CALL_SITE,
                    inclusive=frame.inclusive,
                    exclusive=exclusive,
                    struct=struct,
                    line=site.line,
                    file=site.struct.location.file if site.struct is not None else "",
                    cct_nodes=[site, frame],
                    expander=lambda row, f=frame: self._rows_for(f.children),
                    has_source=has_source,
                )
            )
        # a sampled call line with no observed callee degenerates to a statement
        if not frames and site.raw:
            rows.append(self._plain_row(site))
        for other in others:  # pragma: no cover - malformed trees only
            rows.append(self._plain_row(other))
        return rows

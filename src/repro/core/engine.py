"""The columnar metric engine — dense per-node matrices over one CCT.

The presentation layer keeps per-scope metrics as sparse dicts (the
paper's "performance data is sparse" principle), which is the right
shape for cell-at-a-time display.  Whole-tree numeric analysis — the
attribution equations, totals, percent normalization, top-k scans, hot
path descent, exposed-instance aggregation — is bulk arithmetic, and
running it as pure-Python loops over ``dict[int, float]`` is the single
hottest cost in the pipeline.  :class:`MetricEngine` is the production
columnar backing store for those kernels: one ``(num_nodes x
num_metrics)`` float64 matrix per flavour, rows in preorder, with
vectorized numpy kernels.

Design rules:

* **The sparse dicts remain the API.**  The engine is a projection built
  from (or scattered back into) ``node.raw`` / ``node.inclusive`` /
  ``node.exclusive``; nothing downstream is required to know it exists.
* **Bit-for-bit parity.**  Every kernel replicates the floating-point
  evaluation order of the dict reference path (per parent, children are
  accumulated in child order), so the two backends agree exactly — the
  parity tests assert ``==``, not ``approx``.
* **Versioned invalidation.**  The engine caches itself on the CCT and
  is dropped by :meth:`~repro.core.cct.CCT.invalidate_caches`; consumers
  go through :func:`engine_for`, which rebuilds on version or metric
  count mismatch.

See ``docs/performance.md`` for when the engine activates and how it is
benchmarked.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.cct import CCT, CCTKind, CCTNode
from repro.errors import MetricError
from repro.obs.spans import traced
from repro.core.metrics import MetricFlavor, MetricSpec, MetricValues

__all__ = ["MetricEngine", "attribute_columnar", "engine_for"]

# kind codes used in the per-row ``kinds`` array
KIND_ROOT, KIND_FRAME, KIND_CALL_SITE, KIND_LOOP, KIND_STATEMENT = range(5)

_KIND_CODE = {
    CCTKind.ROOT: KIND_ROOT,
    CCTKind.FRAME: KIND_FRAME,
    CCTKind.CALL_SITE: KIND_CALL_SITE,
    CCTKind.LOOP: KIND_LOOP,
    CCTKind.STATEMENT: KIND_STATEMENT,
}


class MetricEngine:
    """Dense metric matrices plus vectorized analysis kernels for one CCT.

    ``nodes[i]`` corresponds to row ``i`` of each matrix; ``index`` maps
    node uid → row.  Rows are in preorder, so every parent precedes its
    children and every subtree is a contiguous row range — the two
    properties the kernels rely on.
    """

    def __init__(
        self,
        cct: CCT,
        num_metrics: int | None,
        gather_attributed: bool = True,
        matrices: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if num_metrics is not None and num_metrics < 1:
            raise MetricError("num_metrics must be >= 1")
        if matrices is not None and num_metrics is None:
            num_metrics = int(matrices[0].shape[1])
        self.cct = cct
        self.version = cct.version

        # structural walk: explicit stack (deep chains exceed the
        # recursion limit) appending to lists — far cheaper than
        # element-wise numpy stores, and identical to cct.walk() preorder
        nodes: list[CCTNode] = []
        parent_list: list[int] = []
        kind_list: list[int] = []
        depth_list: list[int] = []
        stack: list[tuple[CCTNode, int, int]] = [(cct.root, -1, 0)]
        while stack:
            node, prow, depth = stack.pop()
            row = len(nodes)
            nodes.append(node)
            parent_list.append(prow)
            kind_list.append(_KIND_CODE[node.kind])
            depth_list.append(depth)
            for child in reversed(node.children):
                stack.append((child, row, depth + 1))
        n = len(nodes)
        self.nodes = nodes
        self.index: dict[int, int] = {node.uid: row for row, node in enumerate(nodes)}
        parent_rows = np.asarray(parent_list, dtype=np.int64)
        kinds = np.asarray(kind_list, dtype=np.int8)
        depths = np.asarray(depth_list, dtype=np.int64)

        if matrices is not None:
            # preloaded (typically memory-mapped) column matrices: the
            # caller guarantees rows follow this same preorder walk, so
            # the per-node dict gather is skipped entirely and the
            # matrices can stay on disk (``numpy.memmap`` pages them in
            # per kernel touch) — the out-of-core store's engine path
            raw, inclusive, exclusive = matrices
            for matrix, label in (
                (raw, "raw"), (inclusive, "inclusive"), (exclusive, "exclusive")
            ):
                if matrix.shape != (n, num_metrics):
                    raise MetricError(
                        f"{label} matrix shape {matrix.shape} does not match "
                        f"({n}, {num_metrics})"
                    )
            self.num_metrics = num_metrics
            self._finish_structure(parent_rows, kinds, depths,
                                   raw, inclusive, exclusive)
            return

        # metric gather as coordinate triples, one fancy store per matrix;
        # num_metrics=None infers the width from the raw mids seen
        raw_coords: list[int] = []
        raw_mids: list[int] = []
        raw_values: list[float] = []
        max_mid = -1
        for row, node in enumerate(nodes):
            for mid, value in node.raw.items():
                raw_coords.append(row)
                raw_mids.append(mid)
                raw_values.append(value)
                if mid > max_mid:
                    max_mid = mid
        if num_metrics is None:
            num_metrics = max(max_mid + 1, 1)
        self.num_metrics = num_metrics

        raw = np.zeros((n, num_metrics))
        if raw_coords:
            if max_mid >= num_metrics:
                keep = [i for i, mid in enumerate(raw_mids) if mid < num_metrics]
                raw_coords = [raw_coords[i] for i in keep]
                raw_mids = [raw_mids[i] for i in keep]
                raw_values = [raw_values[i] for i in keep]
            if raw_coords:
                raw[raw_coords, raw_mids] = raw_values
        inclusive = np.zeros((n, num_metrics))
        exclusive = np.zeros((n, num_metrics))
        if gather_attributed:
            for attr, matrix in (("inclusive", inclusive), ("exclusive", exclusive)):
                coords: list[int] = []
                mids: list[int] = []
                values: list[float] = []
                for row, node in enumerate(nodes):
                    for mid, value in getattr(node, attr).items():
                        if mid < num_metrics:
                            coords.append(row)
                            mids.append(mid)
                            values.append(value)
                if coords:
                    matrix[coords, mids] = values
        self._finish_structure(parent_rows, kinds, depths,
                               raw, inclusive, exclusive)

    def _finish_structure(
        self,
        parent_rows: np.ndarray,
        kinds: np.ndarray,
        depths: np.ndarray,
        raw: np.ndarray,
        inclusive: np.ndarray,
        exclusive: np.ndarray,
    ) -> None:
        """Derive the level / CSR / extent indexes shared by both builds."""
        n = len(self.nodes)
        self.parent_rows = parent_rows
        self.kinds = kinds
        self.depths = depths
        self.raw = raw
        self.inclusive = inclusive
        self.exclusive = exclusive

        # rows grouped by depth (stable → preorder within each level)
        self._level_order = np.argsort(depths, kind="stable")
        self.max_depth = int(depths[self._level_order[-1]]) if n else 0
        self._level_starts = np.searchsorted(
            depths[self._level_order], np.arange(self.max_depth + 2)
        )

        # children in CSR form: rows grouped by parent, in child order
        if n > 1:
            self._child_rows = np.argsort(parent_rows[1:], kind="stable").astype(
                np.int64
            ) + 1
            counts = np.bincount(parent_rows[1:], minlength=n)
        else:
            self._child_rows = np.empty(0, dtype=np.int64)
            counts = np.zeros(n, dtype=np.int64)
        self._child_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._child_offsets[1:])

        # subtree sizes via bottom-up level sweep → preorder extents
        sizes = np.ones(n, dtype=np.int64)
        for depth in range(self.max_depth, 0, -1):
            rows = self._rows_at_depth(depth)
            np.add.at(sizes, parent_rows[rows], sizes[rows])
        self.subtree_end = np.arange(n, dtype=np.int64) + sizes

    # ------------------------------------------------------------------ #
    # row helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.nodes)

    def _rows_at_depth(self, depth: int) -> np.ndarray:
        lo, hi = self._level_starts[depth], self._level_starts[depth + 1]
        return self._level_order[lo:hi]

    def row_of(self, node: CCTNode) -> int:
        try:
            return self.index[node.uid]
        except KeyError:
            raise MetricError(
                f"scope {node.name!r} is not part of this engine's CCT"
            ) from None

    def children_rows(self, row: int) -> np.ndarray:
        lo, hi = self._child_offsets[row], self._child_offsets[row + 1]
        return self._child_rows[lo:hi]

    # ------------------------------------------------------------------ #
    # attribution kernels (Eqs. 1 and 2, vectorized)
    # ------------------------------------------------------------------ #
    @traced("engine.attribution")
    def compute_attribution(self) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized Eq. 1 + Eq. 2 from ``raw``; returns (inclusive, exclusive).

        Both accumulations sweep the depth levels bottom-up with one
        ``np.add.at`` segment add per level, so every row is touched a
        constant number of times regardless of shape, and additions into a
        parent row happen in child order (``ufunc.at`` applies updates in
        index order, and rows within a level are in preorder) — exactly
        the dict path's evaluation order.
        """
        parent_rows = self.parent_rows
        kinds = self.kinds
        inclusive = self.raw.copy()
        within = self.raw.copy()  # within-frame raw subtotals (Eq. 1 barrier)
        nonframe = kinds != KIND_FRAME
        for depth in range(self.max_depth, 0, -1):
            rows = self._rows_at_depth(depth)
            np.add.at(inclusive, parent_rows[rows], inclusive[rows])
            inner = rows[nonframe[rows]]
            if len(inner):
                np.add.at(within, parent_rows[inner], within[inner])

        exclusive = self.raw.copy()  # statements, call sites, and the root
        frames = kinds == KIND_FRAME
        exclusive[frames] = within[frames]
        # loops: own raw plus direct child statement / call-site raw
        leafish = (kinds == KIND_STATEMENT) | (kinds == KIND_CALL_SITE)
        rows = np.where(leafish & (parent_rows >= 0))[0]
        rows = rows[kinds[parent_rows[rows]] == KIND_LOOP]
        if len(rows):
            np.add.at(exclusive, parent_rows[rows], self.raw[rows])
        return inclusive, exclusive

    def refresh(self) -> None:
        """Recompute the attributed matrices from ``raw`` in place."""
        self.inclusive, self.exclusive = self.compute_attribution()

    @traced("engine.scatter")
    def scatter(self) -> None:
        """Write the attributed matrices back into the sparse node dicts.

        Zero cells stay absent, matching the sparse representation's
        invariant (``add_into`` likewise drops entries that cancel to 0).
        """
        if self.num_metrics == 1:
            for matrix, attr in (
                (self.inclusive, "inclusive"),
                (self.exclusive, "exclusive"),
            ):
                values = matrix[:, 0].tolist()
                for node, value in zip(self.nodes, values):
                    setattr(node, attr, {0: value} if value != 0.0 else {})
            return
        for matrix, attr in (
            (self.inclusive, "inclusive"),
            (self.exclusive, "exclusive"),
        ):
            rows, mids = np.nonzero(matrix)
            values = matrix[rows, mids].tolist()
            mids_list = mids.tolist()
            counts = np.bincount(rows, minlength=len(self.nodes)).tolist()
            pos = 0
            for row, node in enumerate(self.nodes):
                count = counts[row]
                if count:
                    end = pos + count
                    setattr(node, attr, dict(zip(mids_list[pos:end], values[pos:end])))
                    pos = end
                else:
                    setattr(node, attr, {})

    # ------------------------------------------------------------------ #
    # whole-tree numeric kernels
    # ------------------------------------------------------------------ #
    def totals(self) -> np.ndarray:
        """Experiment totals per metric (the root's inclusive row)."""
        return self.inclusive[0].copy()

    def total(self, mid: int) -> float:
        """Aggregate inclusive total of one metric (percent denominator)."""
        return float(self.inclusive[0, mid])

    def shares(self, mid: int) -> np.ndarray:
        """Every scope's inclusive share of the total, in one pass."""
        total = self.inclusive[0, mid]
        if total == 0.0:
            return np.zeros(len(self.nodes))
        return self.inclusive[:, mid] / total

    def top_k(
        self, mid: int, k: int = 10, exclusive: bool = True
    ) -> list[tuple[CCTNode, float]]:
        """The k heaviest scopes by one metric — argpartition, not sort."""
        matrix = self.exclusive if exclusive else self.inclusive
        column = matrix[:, mid]
        k = min(k, len(column))
        idx = np.argpartition(column, -k)[-k:]
        idx = idx[np.argsort(column[idx])[::-1]]
        return [(self.nodes[i], float(column[i])) for i in idx]

    @traced("engine.hot-path")
    def hot_path_rows(
        self, start_row: int, mid: int, threshold: float
    ) -> tuple[list[int], list[float]]:
        """Eq. 3 descent over CCT rows: follow the argmax inclusive child
        while it holds at least ``threshold`` of its parent's value."""
        inclusive = self.inclusive
        path = [start_row]
        values = [float(inclusive[start_row, mid])]
        row = start_row
        while True:
            kids = self.children_rows(row)
            if not len(kids):
                break
            kid_values = inclusive[kids, mid]
            best = int(np.argmax(kid_values))  # first max, like max(key=...)
            best_value = float(kid_values[best])
            if values[-1] <= 0.0 or best_value < threshold * values[-1]:
                break
            row = int(kids[best])
            path.append(row)
            values.append(best_value)
        return path, values

    # ------------------------------------------------------------------ #
    # exposed-instance aggregation (Section IV-B)
    # ------------------------------------------------------------------ #
    def exposed_rows(self, rows: Sequence[int]) -> list[int]:
        """Distinct rows of *rows* with no proper ancestor also in *rows*.

        Preorder extents make this a single sweep: a sorted row is covered
        iff it falls inside the most recent exposed member's subtree.
        """
        end = self.subtree_end
        exposed: list[int] = []
        cover = -1
        for row in sorted(set(rows)):
            if row >= cover:
                exposed.append(row)
                cover = end[row]
        return exposed

    @traced("engine.aggregate-exposed")
    def aggregate_exposed(
        self, instances: Sequence[CCTNode]
    ) -> tuple[MetricValues, MetricValues]:
        """Columnar twin of :func:`repro.core.attribution.aggregate_exposed`.

        Returns sparse ``(inclusive, exclusive)`` aggregates over the
        exposed subset.  The accumulation runs in *input* instance order
        (an exposed node that appears twice counts twice), exactly like the
        dict path, so the two backends agree bit-for-bit.
        """
        rows = [self.row_of(node) for node in instances]
        exposed = set(self.exposed_rows(rows))
        incl = np.zeros(self.num_metrics)
        excl = np.zeros(self.num_metrics)
        for row in rows:
            if row in exposed:
                incl += self.inclusive[row]
                excl += self.exclusive[row]
        return _sparse(incl), _sparse(excl)

    # ------------------------------------------------------------------ #
    # view-row gathers
    # ------------------------------------------------------------------ #
    @traced("engine.gather-view-values")
    def gather_view_values(self, rows: Sequence, spec: MetricSpec) -> np.ndarray:
        """One metric column over a list of :class:`ViewNode` rows.

        Rows whose value dict *is* a single backing CCT node's dict (the
        identity the lazily-built views preserve) are read from the
        matrices with one fancy-index gather; synthesized rows (fused
        exclusives, aggregated callers/flat rows) fall back to their own
        dict — the values are identical either way, because the matrices
        are projections of those same dicts.
        """
        mid = spec.mid
        inclusive_flavor = spec.flavor is MetricFlavor.INCLUSIVE
        matrix = self.inclusive if inclusive_flavor else self.exclusive
        index = self.index
        out = np.empty(len(rows))
        gather_at: list[int] = []
        gather_rows: list[int] = []
        for i, row in enumerate(rows):
            store = row.inclusive if inclusive_flavor else row.exclusive
            nodes = row.cct_nodes
            if len(nodes) == 1:
                node = nodes[0]
                backing = node.inclusive if inclusive_flavor else node.exclusive
                if store is backing:
                    engine_row = index.get(node.uid)
                    if engine_row is not None:
                        gather_at.append(i)
                        gather_rows.append(engine_row)
                        continue
            out[i] = store.get(mid, 0.0)
        if gather_at:
            out[np.asarray(gather_at)] = matrix[np.asarray(gather_rows), mid]
        return out

    # ------------------------------------------------------------------ #
    def memory_bytes(self) -> int:
        """Matrix memory footprint (the dense side of the ablation)."""
        return self.raw.nbytes + self.inclusive.nbytes + self.exclusive.nbytes


def _sparse(vector: np.ndarray) -> MetricValues:
    """Dense vector → sparse dict, dropping exact zeros."""
    (mids,) = np.nonzero(vector)
    return {int(mid): float(vector[mid]) for mid in mids}


def attribute_columnar(cct: CCT) -> MetricEngine:
    """Columnar backend for :func:`repro.core.attribution.attribute`.

    Builds the engine from raw values, runs the vectorized Eq. 1/Eq. 2
    kernels, scatters the results back into the sparse dicts (preserving
    the dict API as a facade), and leaves the engine cached on the CCT for
    the analysis kernels to reuse.
    """
    engine = MetricEngine(cct, None, gather_attributed=False)
    engine.refresh()
    engine.scatter()
    cct.invalidate_caches()
    engine.version = cct.version
    cct._engine = engine
    return engine


def engine_for(cct: CCT, num_metrics: int) -> MetricEngine | None:
    """The cached engine for *cct*, rebuilt when stale.

    Returns None for metric-less experiments.  Staleness is a version
    mismatch (the tree mutated since the build) or a metric-table growth
    (summary/derived columns registered after the build).
    """
    if num_metrics < 1:
        return None
    engine = cct._engine
    if (
        engine is None
        or engine.version != cct.version
        or engine.num_metrics != num_metrics
    ):
        engine = MetricEngine(cct, num_metrics)
        cct._engine = engine
    return engine

"""Deprecated location — the taxonomy moved to :mod:`repro.errors`.

This shim keeps ``from repro.core.errors import ...`` working; the
classes it re-exports *are* the unified ones, so ``except`` clauses and
identity checks keep behaving across old and new import paths.
"""

from __future__ import annotations

import warnings

from repro.errors import (  # noqa: F401 - re-exported for compatibility
    CorrelationError,
    DatabaseError,
    FormulaError,
    MetricError,
    ProfilerError,
    ReproError,
    SimulationError,
    StructureError,
    ViewError,
)

__all__ = [
    "ReproError",
    "StructureError",
    "CorrelationError",
    "MetricError",
    "FormulaError",
    "ViewError",
    "DatabaseError",
    "SimulationError",
    "ProfilerError",
]

warnings.warn(
    "repro.core.errors is deprecated; import from repro.errors "
    "(or the repro.api facade) instead",
    DeprecationWarning,
    stacklevel=2,
)

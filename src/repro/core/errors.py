"""Exception hierarchy for the :mod:`repro` toolkit.

All errors raised by the library derive from :class:`ReproError` so callers
can catch toolkit failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "StructureError",
    "CorrelationError",
    "MetricError",
    "FormulaError",
    "ViewError",
    "DatabaseError",
    "SimulationError",
    "ProfilerError",
]


class ReproError(Exception):
    """Base class for all toolkit errors."""


class StructureError(ReproError):
    """Invalid or inconsistent static program structure."""


class CorrelationError(ReproError):
    """A dynamic call path could not be correlated with static structure."""


class MetricError(ReproError):
    """Invalid metric definition or metric table operation."""


class FormulaError(MetricError):
    """A derived-metric formula failed to parse or evaluate."""


class ViewError(ReproError):
    """Invalid view construction or view operation."""


class DatabaseError(ReproError):
    """Experiment database serialization or deserialization failure."""


class SimulationError(ReproError):
    """Invalid synthetic program model or simulation parameters."""


class ProfilerError(ReproError):
    """Measurement-layer (hpcrun substrate) failure."""

"""Metric attribution over the canonical CCT (Section IV, Eqs. 1 and 2).

Measurement attributes raw sample costs to leaf scopes (statements, and
call-site scopes when the program counter sits at the call instruction).
Attribution turns these raw values into the *exclusive* and *inclusive*
values every view presents.

Exclusive values follow the paper's hybrid rule (Eq. 1), dispatching on the
dynamic/static classification of the scope:

* **procedure frame** (dynamic) — the sum of raw costs of every descendant
  statement reachable without crossing a call site, i.e. all cost incurred
  *within the frame* regardless of loop nesting;
* **loop** (static, not a frame) — its own raw cost plus the raw cost of
  its direct child statements and call-site lines; nested loops are *not*
  included ("the exclusive cost of l1 does not include the cost of l2 …
  since l2 is not a statement");
* **statement / call site** — its own raw cost (a call site's exclusive
  cost "only includes the cost of its invocation", rule 1).

Inclusive values (Eq. 2) are the straightforward bottom-up sum: a scope's
raw cost plus the inclusive cost of its children.

The module also implements the *exposed-instance* rule of Section IV-B: to
aggregate a set of CCT instances of one procedure (for the Callers and
Flat views) without double counting recursive chains, only instances with
no ancestor instance in the same set contribute.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.cct import CCT, CCTKind, CCTNode
from repro.core.metrics import MetricValues, add_into, total

__all__ = [
    "attribute",
    "attribute_dicts",
    "exposed_instances",
    "exposed_sum",
    "aggregate_exposed",
]

try:  # numpy is a hard dependency, but the dict path must survive without it
    import numpy as _np  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is baked into the image
    _HAVE_NUMPY = False

#: below this node count the columnar engine's array build/scatter overhead
#: outweighs its vectorized kernels, so ``attribute`` keeps the dict path
COLUMNAR_MIN_NODES = 128


def attribute(cct: CCT, *, columnar: bool | None = None) -> None:
    """Compute ``exclusive`` and ``inclusive`` for every scope, in place.

    This is the paper's *initialization* step.  Safe to call repeatedly;
    values are recomputed from ``raw`` each time.

    Two equivalent backends exist (see ``docs/performance.md``): the
    sparse-dict reference path and the columnar
    :class:`~repro.core.engine.MetricEngine` path, whose vectorized
    kernels replicate the dict path's floating-point evaluation order so
    the results agree bit-for-bit.  ``columnar=None`` (the default) picks
    the engine for trees of at least ``COLUMNAR_MIN_NODES`` scopes when
    numpy is available, and falls back to dicts otherwise.
    """
    if columnar is None:
        columnar = _HAVE_NUMPY and len(cct) >= COLUMNAR_MIN_NODES
    if columnar:
        from repro.core.engine import attribute_columnar  # lazy: numpy

        attribute_columnar(cct)
        return
    attribute_dicts(cct)


def attribute_dicts(cct: CCT) -> None:
    """The sparse-dict attribution backend (reference implementation).

    One postorder pass computes both equations.  The within-frame raw sums
    of Eq. 1 are carried bottom-up as per-node subtotals (a scope's raw
    cost plus the subtotals of its non-frame children) rather than by a
    per-frame descendant walk: the arithmetic visits each scope once, and
    the per-parent, child-order accumulation matches the columnar engine's
    segment-add kernels addition for addition.
    """
    within: dict[int, MetricValues] = {}  # uid -> within-frame raw subtotal
    for node in cct.root.walk_postorder():
        # -- inclusive: Eq. 2 ------------------------------------------- #
        incl: MetricValues = dict(node.raw)
        for child in node.children:
            add_into(incl, child.inclusive)
        node.inclusive = incl

        # -- within-frame subtotal: raw + non-frame children's subtotals - #
        sub: MetricValues = dict(node.raw)
        for child in node.children:
            if child.kind is not CCTKind.FRAME:
                add_into(sub, within.pop(child.uid))

        # -- exclusive: Eq. 1 (hybrid rule) ----------------------------- #
        if node.kind in (CCTKind.STATEMENT, CCTKind.CALL_SITE):
            node.exclusive = dict(node.raw)
        elif node.kind is CCTKind.LOOP:
            excl: MetricValues = dict(node.raw)
            for child in node.children:
                if child.kind in (CCTKind.STATEMENT, CCTKind.CALL_SITE):
                    add_into(excl, child.raw)
            node.exclusive = excl
        elif node.kind is CCTKind.FRAME:
            node.exclusive = sub
        else:  # ROOT
            node.exclusive = dict(node.raw)

        if node.kind is not CCTKind.FRAME:
            # a frame's subtotal never propagates (the Eq. 1 barrier)
            within[node.uid] = sub
    cct.invalidate_caches()


def exposed_instances(instances: Iterable[CCTNode]) -> list[CCTNode]:
    """Return the *exposed* members of an instance set.

    An instance is exposed if it has no proper ancestor that is also in the
    set (Section IV-B).  Summing inclusive costs over exposed instances
    only avoids double-counting recursive chains.
    """
    nodes = list(instances)
    member_uids = {n.uid for n in nodes}
    exposed: list[CCTNode] = []
    for node in nodes:
        if not any(a.uid in member_uids for a in node.ancestors()):
            exposed.append(node)
    return exposed


def exposed_sum(
    instances: Sequence[CCTNode],
    *,
    inclusive: bool = True,
) -> MetricValues:
    """Sum inclusive (or exclusive) values over the exposed instances.

    Both flavours are aggregated over exposed instances only, matching the
    worked example of Figure 2: the Callers View top-level entry for the
    recursive procedure ``g`` shows inclusive 9 (= g1:6 + g3:3) and
    exclusive 4 (= g1:1 + g3:3); the nested instance g2 contributes to
    neither, its cost being visible under the recursive-caller child.
    """
    exposed = exposed_instances(instances)
    if inclusive:
        return total(n.inclusive for n in exposed)
    return total(n.exclusive for n in exposed)


def aggregate_exposed(instances: Sequence[CCTNode]) -> tuple[MetricValues, MetricValues]:
    """Return ``(inclusive, exclusive)`` aggregates over exposed instances."""
    exposed = exposed_instances(instances)
    return (
        total(n.inclusive for n in exposed),
        total(n.exclusive for n in exposed),
    )

"""repro — call path profiles, effectively presented.

A production-quality Python reproduction of *"Effectively Presenting Call
Path Profiles of Application Performance"* (Adhianto, Mellor-Crummey,
Tallent; ICPP 2010) — the ``hpcviewer`` paper from HPCToolkit — together
with every substrate it depends on:

* :mod:`repro.hpcrun` — measurement: asynchronous-sampling and tracing
  call path profilers for Python code, plus synthetic hardware counters;
* :mod:`repro.hpcstruct` — static structure recovery (Python AST, and
  synthetic program models);
* :mod:`repro.hpcprof` — correlation into canonical CCTs, multi-rank
  merging, statistical summarization, experiment databases (XML/binary);
* :mod:`repro.core` — the paper's contribution: the three complementary
  views, inclusive/exclusive attribution with recursion handling, hot
  path analysis, and derived metrics;
* :mod:`repro.viewer` — tree-tabular presentation, navigation, charts;
* :mod:`repro.sim` — synthetic workloads (S3D, MOAB, PFLOTRAN, Figure 1)
  and SPMD/load-imbalance simulation;
* :mod:`repro.baselines` — a gprof-style comparator.

Quickstart::

    import repro

    result, profile = repro.trace_call(my_function, arg)
    structure = repro.build_python_structure([my_module_path])
    exp = repro.Experiment.from_profile(profile, structure)
    print(repro.render_view(exp.calling_context_view(), depth=3))
    print(exp.hot_path("line events").hotspot.name)
"""

from repro.core.advisor import Advisor, Suggestion, advise
from repro.core.attribution import attribute
from repro.core.callers import CallersView
from repro.core.ccview import CallingContextView
from repro.core.cct import CCT, CCTKind, CCTNode
from repro.core.derived import (
    define_derived,
    evaluate,
    flop_waste_formula,
    parse_formula,
    relative_efficiency_formula,
)
from repro.errors import ReproError
from repro.core.filters import FilterAction, FilterSet, ScopeFilter, ThresholdFilter
from repro.core.flat import FlatView
from repro.core.hotpath import DEFAULT_THRESHOLD, HotPathResult, hot_path
from repro.core.metrics import MetricFlavor, MetricSpec, MetricTable
from repro.core.views import NodeCategory, View, ViewKind, ViewNode
from repro.hpcprof.database import load, save
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.profile_data import Frame, ProfileData
from repro.hpcrun.sampler import SamplingProfiler, sample_call
from repro.hpcrun.tracer import TracingProfiler, trace_call
from repro.hpcstruct.model import StructureModel
from repro.hpcstruct.pystruct import build_python_structure
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute
from repro.sim.spmd import run_spmd, spmd_experiment
from repro.viewer.diff import DiffRow, ExperimentDiff
from repro.viewer.html import render_html
from repro.viewer.session import ViewerSession
from repro.viewer.table import TableOptions, render_table, render_view
from repro.viewer.tui import InteractiveViewer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # experiment & database
    "Experiment",
    "save",
    "load",
    # views & analyses
    "CallingContextView",
    "CallersView",
    "FlatView",
    "View",
    "ViewKind",
    "ViewNode",
    "NodeCategory",
    "hot_path",
    "HotPathResult",
    "DEFAULT_THRESHOLD",
    # metrics
    "MetricTable",
    "MetricSpec",
    "MetricFlavor",
    "define_derived",
    "parse_formula",
    "evaluate",
    "flop_waste_formula",
    "relative_efficiency_formula",
    # CCT & attribution
    "CCT",
    "CCTNode",
    "CCTKind",
    "attribute",
    # measurement
    "TracingProfiler",
    "trace_call",
    "SamplingProfiler",
    "sample_call",
    "ProfileData",
    "Frame",
    # structure
    "StructureModel",
    "build_python_structure",
    "build_structure",
    # simulation
    "execute",
    "run_spmd",
    "spmd_experiment",
    # presentation
    "ViewerSession",
    "InteractiveViewer",
    "render_view",
    "render_table",
    "render_html",
    "TableOptions",
    "ExperimentDiff",
    "DiffRow",
    # advisor
    "advise",
    "Advisor",
    "Suggestion",
    # filters
    "FilterSet",
    "ScopeFilter",
    "ThresholdFilter",
    "FilterAction",
    # errors
    "ReproError",
]

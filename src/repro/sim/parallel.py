"""Multi-process SPMD execution.

:func:`repro.sim.spmd.run_spmd` simulates ranks sequentially in-process.
For workload models with real per-rank compute (or simply to exercise the
post-mortem pipeline on profiles produced by *separate processes*, as in
a real MPI job), this module fans rank execution out over a
``multiprocessing`` pool.

Synthetic programs carry closures (context-dependent costs), which do not
pickle; workers therefore receive a *factory reference* —
``"package.module:function"`` — import it, build the program locally, and
execute their rank.  Per-rank profiles return as portable dicts and are
rehydrated in the parent, exactly like reading per-rank measurement files
off a parallel filesystem.
"""

from __future__ import annotations

import importlib
from typing import Sequence

from repro.errors import SimulationError
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.profile_data import Frame, ProfileData
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute

__all__ = ["run_spmd_parallel", "spmd_experiment_parallel", "resolve_factory"]


def resolve_factory(factory: str):
    """Import ``"pkg.module:function"`` and return the callable."""
    module_name, sep, attr = factory.partition(":")
    if not sep or not module_name or not attr:
        raise SimulationError(
            f"factory must look like 'pkg.module:function', got {factory!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SimulationError(f"cannot import {module_name!r}: {exc}") from exc
    fn = getattr(module, attr, None)
    if fn is None or not callable(fn):
        raise SimulationError(f"{factory!r} does not name a callable")
    return fn


def _profile_to_wire(profile: ProfileData) -> dict:
    """Flatten a profile into a picklable dict."""
    return {
        "rank": profile.rank,
        "program": profile.program,
        "metrics": profile.metrics.names(),
        "units": [d.unit for d in profile.metrics],
        "samples": [
            ([f.key for f in frames], line, dict(costs))
            for frames, line, costs in profile.paths()
        ],
        "sample_count": profile.sample_count,
    }


def _profile_from_wire(wire: dict) -> ProfileData:
    from repro.core.metrics import MetricTable

    metrics = MetricTable()
    for name, unit in zip(wire["metrics"], wire["units"]):
        metrics.add(name, unit=unit)
    profile = ProfileData(metrics, rank=wire["rank"], program=wire["program"])
    for frame_keys, line, costs in wire["samples"]:
        frames = [Frame(proc, file, call_line)
                  for proc, file, call_line in frame_keys]
        profile.add_sample(frames, line, {int(k): v for k, v in costs.items()})
    profile.sample_count = wire["sample_count"]
    return profile


def _worker(args: tuple) -> dict:
    factory, rank, nranks, params, seed = args
    program = resolve_factory(factory)()
    profile = execute(program, rank=rank, nranks=nranks, params=params,
                      seed=seed)
    return _profile_to_wire(profile)


def run_spmd_parallel(
    factory: str,
    nranks: int,
    params: dict | None = None,
    seed: int = 12345,
    processes: int | None = None,
) -> list[ProfileData]:
    """Execute each simulated rank in a worker process."""
    if nranks < 1:
        raise SimulationError(f"nranks must be >= 1, got {nranks}")
    resolve_factory(factory)  # fail fast in the parent
    jobs = [(factory, rank, nranks, params, seed) for rank in range(nranks)]
    import multiprocessing

    workers = processes or min(nranks, multiprocessing.cpu_count())
    if workers <= 1 or nranks == 1:
        wires = [_worker(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            wires = pool.map(_worker, jobs)
    return [_profile_from_wire(w) for w in wires]


def spmd_experiment_parallel(
    factory: str,
    nranks: int,
    params: dict | None = None,
    seed: int = 12345,
    processes: int | None = None,
    name: str = "",
) -> Experiment:
    """Parallel SPMD run assembled into a merged experiment."""
    profiles = run_spmd_parallel(factory, nranks, params=params, seed=seed,
                                 processes=processes)
    program = resolve_factory(factory)()
    structure = build_structure(program)
    return Experiment.from_profiles(
        profiles, structure, name=name or f"{program.name} x{nranks} (mp)"
    )

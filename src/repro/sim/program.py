"""Synthetic program models — the workload substrate.

The paper evaluates ``hpcviewer`` on profiles of real applications (S3D,
MOAB, PFLOTRAN) measured with hardware counters on production machines.
Neither the applications nor the hardware are available here, so this
module provides a small declarative DSL for *synthetic programs*: modules,
procedures, loop nests, statements with explicit cost vectors, and call
sites — including recursive and context-dependent calls.

A synthetic program is *executed* by :mod:`repro.sim.executor`, which
walks the model and emits call-path samples exactly like the measurement
substrate (:mod:`repro.hpcrun`) does for real Python programs.  The static
structure of a synthetic program is recovered by
:mod:`repro.hpcstruct.synthstruct`.  Everything downstream (correlation,
attribution, views, presentation) is therefore exercised on the same code
paths as for real measurements — only the sample generator differs.

Costs, trip counts and call counts may be plain numbers/dicts or callables
of an :class:`ExecContext`, enabling context-dependent behaviour (e.g. the
recursive procedure ``g`` of Figure 1, whose work depends on its caller).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence, Union

from repro.errors import SimulationError

__all__ = [
    "ExecContext",
    "Work",
    "Loop",
    "Call",
    "Inlined",
    "Procedure",
    "Module",
    "Program",
    "CostLike",
    "NumberLike",
    "resolve_number",
    "resolve_costs",
]

#: A cost vector {metric name: amount}, or a callable producing one.
CostLike = Union[Mapping[str, float], Callable[["ExecContext"], Mapping[str, float]], None]
#: A scalar count, or a callable producing one.
NumberLike = Union[int, float, Callable[["ExecContext"], float]]


@dataclass(slots=True)
class ExecContext:
    """Execution context handed to callable costs/counts.

    ``path`` is the dynamic chain of procedure names, outermost first,
    including the currently executing procedure.  ``rank`` identifies the
    simulated SPMD process.  ``params`` carries workload parameters (grid
    sizes, species counts, …).  ``rng`` is a seeded ``numpy`` generator for
    stochastic workloads.
    """

    path: tuple[str, ...]
    rank: int = 0
    nranks: int = 1
    params: dict = field(default_factory=dict)
    rng: object = None
    multiplier: float = 1.0

    @property
    def current(self) -> str:
        return self.path[-1]

    @property
    def caller(self) -> str | None:
        return self.path[-2] if len(self.path) >= 2 else None

    def depth_of(self, proc_name: str) -> int:
        """Number of frames of *proc_name* on the current path."""
        return sum(1 for p in self.path if p == proc_name)

    def called_from(self, *chain: str) -> bool:
        """True when the path (excluding current) ends with *chain*."""
        prefix = self.path[:-1]
        n = len(chain)
        return len(prefix) >= n and prefix[-n:] == tuple(chain)


def resolve_number(value: NumberLike, ctx: ExecContext) -> float:
    out = value(ctx) if callable(value) else value
    return float(out)


def resolve_costs(value: CostLike, ctx: ExecContext) -> dict[str, float]:
    if value is None:
        return {}
    out = value(ctx) if callable(value) else value
    return {name: float(v) for name, v in out.items() if float(v) != 0.0}


@dataclass(slots=True)
class Work:
    """A statement at *line* incurring *costs* each execution."""

    line: int
    costs: CostLike = None


@dataclass(slots=True)
class Loop:
    """A loop whose body executes *trips* times per entry.

    ``line``/``end_line`` delimit the loop in the synthetic source; nested
    statements and calls must have lines inside this range for structure
    correlation to nest them correctly.
    """

    line: int
    body: Sequence["Statement"]
    trips: NumberLike = 1
    end_line: int = 0

    def __post_init__(self) -> None:
        if not self.end_line:
            self.end_line = max(
                [self.line]
                + [s.end_line if isinstance(s, (Loop, Inlined)) else s.line
                   for s in self.body]
            )


@dataclass(slots=True)
class Call:
    """A call site at *line* invoking *callee* ``count`` times per execution.

    ``site_costs`` is cost attributed to the call instruction itself (the
    paper's "cost associated with the call site line").
    """

    line: int
    callee: str
    count: NumberLike = 1
    site_costs: CostLike = None


@dataclass(slots=True)
class Inlined:
    """Compiler-inlined code: a named body executing inside the caller's frame.

    Models what ``hpcstruct`` recovers as inlined procedures: the work runs
    in the enclosing frame (no new dynamic scope) but is attributed to an
    ``INLINED_PROC`` static scope spanning ``line``–``end_line``.  Inlined
    scopes nest freely inside loops and other inlined scopes, reproducing
    the multi-level inlining hierarchies of the paper's Figure 5.
    """

    line: int
    name: str
    body: Sequence["Statement"] = ()
    end_line: int = 0

    def __post_init__(self) -> None:
        if not self.end_line:
            self.end_line = max(
                [self.line]
                + [s.end_line if isinstance(s, (Loop, Inlined)) else s.line
                   for s in self.body]
            )


Statement = Union[Work, Loop, Call, Inlined]


@dataclass(slots=True)
class Procedure:
    """A synthetic procedure: a name, source extent, and a body."""

    name: str
    line: int
    body: Sequence[Statement] = ()
    end_line: int = 0
    #: pretty name for display (e.g. demangled C++); defaults to name
    display_name: str = ""

    def __post_init__(self) -> None:
        if not self.end_line:
            last = self.line
            for stmt in self.body:
                last = max(
                    last,
                    stmt.end_line if isinstance(stmt, (Loop, Inlined)) else stmt.line,
                )
            self.end_line = last
        if not self.display_name:
            self.display_name = self.name


@dataclass(slots=True)
class Module:
    """A source file grouping procedures."""

    path: str
    procedures: Sequence[Procedure] = ()


@dataclass(slots=True)
class Program:
    """A whole synthetic program.

    ``entry`` names the procedure where execution starts; ``load_module``
    is the binary name the structure model reports; ``metrics`` lists the
    metric names this program's costs mention, with their units, so that
    executors can pre-register a consistent metric table.
    """

    name: str
    modules: Sequence[Module]
    entry: str = "main"
    load_module: str = ""
    metrics: Sequence[tuple[str, str]] = ()
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.load_module:
            self.load_module = self.name
        self._validate()

    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        seen: dict[str, str] = {}
        for module in self.modules:
            for proc in module.procedures:
                if proc.name in seen:
                    raise SimulationError(
                        f"procedure {proc.name!r} defined in both "
                        f"{seen[proc.name]!r} and {module.path!r}; synthetic "
                        f"procedure names must be program-unique"
                    )
                seen[proc.name] = module.path
        if self.entry not in seen:
            raise SimulationError(f"entry procedure {self.entry!r} is not defined")
        for module in self.modules:
            for proc in module.procedures:
                for call in _iter_calls(proc.body):
                    if call.callee not in seen:
                        raise SimulationError(
                            f"{proc.name!r} calls undefined procedure {call.callee!r}"
                        )

    def procedure(self, name: str) -> Procedure:
        for module in self.modules:
            for proc in module.procedures:
                if proc.name == name:
                    return proc
        raise SimulationError(f"unknown procedure {name!r}")

    def module_of(self, proc_name: str) -> Module:
        for module in self.modules:
            for proc in module.procedures:
                if proc.name == proc_name:
                    return module
        raise SimulationError(f"unknown procedure {proc_name!r}")

    def metric_names(self) -> list[str]:
        """All metric names referenced by the program's declaration."""
        return [name for name, _unit in self.metrics]


def _iter_calls(body: Sequence[Statement]):
    for stmt in body:
        if isinstance(stmt, Call):
            yield stmt
        elif isinstance(stmt, (Loop, Inlined)):
            yield from _iter_calls(stmt.body)

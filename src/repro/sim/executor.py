"""Execution engine for synthetic program models.

Walks a :class:`~repro.sim.program.Program` and produces a
:class:`~repro.hpcrun.profile_data.ProfileData` — the same artifact the
real measurement substrate produces for Python programs — so everything
downstream (correlation, views, presentation) is exercised identically.

The executor is *deterministic by construction*: statement costs are
attributed exactly (as if sampling captured the true cost distribution).
Realistic sampling noise can be layered on with
:meth:`ProfileData.resampled`.  Repeated calls with identical contexts are
collapsed — a call site with ``count=k`` executes its callee once and
scales the callee's costs by ``k`` — keeping simulation cost proportional
to the CCT size rather than the dynamic instruction count, which is what
lets laptop-scale runs model petascale executions.

**Trace mode** (:func:`execute_trace`) additionally emits timestamped
call-path samples: a per-rank simulated clock advances by each
statement's cost on a designated *time metric*, and every cost
attribution becomes one (or, with ``trace_slices > 1``, several)
events in a :class:`~repro.trace.model.TraceData`.  Costs are
quantized to int64 ticks at a dyadic resolution, so the trace's
whole-window materialization *is* the profile, exactly — the
``window(None, None) == untimed profile`` contract the property suite
pins.  Program order is execution order, so sequential phases of the
program occupy disjoint spans of trace time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.core.metrics import MetricTable
from repro.hpcrun.profile_data import Frame, PathNode, ProfileData
from repro.sim.program import (
    Call,
    ExecContext,
    Inlined,
    Loop,
    Procedure,
    Program,
    Work,
    resolve_costs,
    resolve_number,
)

__all__ = ["Executor", "execute", "execute_trace"]


class Executor:
    """Executes one synthetic program for one simulated rank."""

    def __init__(
        self,
        program: Program,
        rank: int = 0,
        nranks: int = 1,
        params: dict | None = None,
        seed: int = 12345,
        max_depth: int = 400,
        trace: bool = False,
        time_metric: str | None = None,
        time_scale: float = 1.0,
        trace_slices: int = 1,
    ) -> None:
        self.program = program
        self.rank = rank
        self.nranks = nranks
        self.params = dict(program.params)
        if params:
            self.params.update(params)
        self.max_depth = max_depth
        self.rng = np.random.default_rng(np.random.SeedSequence([seed, rank]))

        self.metrics = MetricTable()
        for name, unit in program.metrics:
            self.metrics.add(name, unit=unit)
        self._mid: dict[str, int] = {d.name: d.mid for d in self.metrics}

        self.trace = None
        self._frames: list[Frame] = []
        if trace:
            from repro.trace.model import DEFAULT_RESOLUTION, TraceData

            if trace_slices < 1:
                raise SimulationError(
                    f"trace_slices must be >= 1, got {trace_slices}"
                )
            if time_metric is None:
                time_mid = 0 if len(self.metrics) else None
            else:
                if time_metric not in self.metrics:
                    raise SimulationError(
                        f"unknown time metric {time_metric!r} "
                        f"(program metrics: {self.metrics.names()})"
                    )
                time_mid = self.metrics.by_name(time_metric).mid
            self._time_mid = time_mid
            self._trace_slices = trace_slices
            self._clock_ticks = 0
            self._tick_seconds = DEFAULT_RESOLUTION * float(time_scale)
            self.trace = TraceData(
                self.metrics,
                rank=rank,
                program=program.name,
                time_metric=time_mid if time_mid is not None else 0,
                time_scale=float(time_scale),
            )

    # ------------------------------------------------------------------ #
    def run(self) -> ProfileData:
        """Execute from the entry procedure; return the call path profile."""
        profile = ProfileData(
            self.metrics, rank=self.rank, program=self.program.name
        )
        entry = self.program.procedure(self.program.entry)
        entry_frame = Frame(
            proc=entry.name,
            file=self.program.module_of(entry.name).path,
            call_line=0,
        )
        node = profile.root.ensure_child(entry_frame)
        ctx = ExecContext(
            path=(entry.name,),
            rank=self.rank,
            nranks=self.nranks,
            params=self.params,
            rng=self.rng,
        )
        self._frames = [entry_frame]
        self._exec_proc(entry, node, ctx, profile, depth=1)
        profile.sample_count = max(profile.sample_count, 1)
        if self.trace is not None:
            self.trace.seal()
        return profile

    # ------------------------------------------------------------------ #
    def _mid_of(self, name: str) -> int:
        mid = self._mid.get(name)
        if mid is None:
            mid = self.metrics.add(name).mid
            self._mid[name] = mid
        return mid

    def _exec_proc(
        self,
        proc: Procedure,
        node: PathNode,
        ctx: ExecContext,
        profile: ProfileData,
        depth: int,
    ) -> None:
        if depth > self.max_depth:
            raise SimulationError(
                f"simulated call depth exceeded {self.max_depth} "
                f"(runaway recursion in {proc.name!r}?)"
            )
        self._exec_body(proc.body, node, ctx, profile, depth)

    def _exec_body(self, body, node, ctx, profile, depth) -> None:
        for stmt in body:
            if isinstance(stmt, Work):
                costs = resolve_costs(stmt.costs, ctx)
                if costs:
                    scaled = {
                        self._mid_of(name): v * ctx.multiplier
                        for name, v in costs.items()
                    }
                    self._attribute(node, stmt.line, scaled)
                    profile.sample_count += 1
            elif isinstance(stmt, Loop):
                trips = resolve_number(stmt.trips, ctx)
                if trips <= 0:
                    continue
                inner = ExecContext(
                    path=ctx.path,
                    rank=ctx.rank,
                    nranks=ctx.nranks,
                    params=ctx.params,
                    rng=ctx.rng,
                    multiplier=ctx.multiplier * trips,
                )
                self._exec_body(stmt.body, node, inner, profile, depth)
            elif isinstance(stmt, Inlined):
                # inlined code runs in the current frame; attribution to the
                # inlined static scope happens during correlation by line.
                self._exec_body(stmt.body, node, ctx, profile, depth)
            elif isinstance(stmt, Call):
                self._exec_call(stmt, node, ctx, profile, depth)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown statement type {type(stmt).__name__}")

    def _exec_call(self, call: Call, node, ctx, profile, depth) -> None:
        count = resolve_number(call.count, ctx)
        site = resolve_costs(call.site_costs, ctx)
        if site:
            scaled = {
                self._mid_of(name): v * ctx.multiplier for name, v in site.items()
            }
            self._attribute(node, call.line, scaled)
            profile.sample_count += 1
        if count <= 0:
            return
        callee = self.program.procedure(call.callee)
        frame = Frame(
            proc=callee.name,
            file=self.program.module_of(callee.name).path,
            call_line=call.line,
        )
        child = node.ensure_child(frame)
        inner = ExecContext(
            path=ctx.path + (callee.name,),
            rank=ctx.rank,
            nranks=ctx.nranks,
            params=ctx.params,
            rng=ctx.rng,
            multiplier=ctx.multiplier * count,
        )
        self._frames.append(frame)
        try:
            self._exec_proc(callee, child, inner, profile, depth + 1)
        finally:
            self._frames.pop()

    # ------------------------------------------------------------------ #
    # cost attribution (trace-aware)
    # ------------------------------------------------------------------ #
    def _attribute(self, node, line: int, scaled: dict[int, float]) -> None:
        """Attribute one statement's costs; in trace mode, also emit
        timestamped events and advance the simulated clock.

        Trace mode quantizes every cost to int64 ticks at the dyadic
        trace resolution and attributes ``ticks * resolution`` to the
        profile, so the profile and the trace agree *exactly* — the
        whole-trace window materializes back to this profile bit for
        bit.
        """
        if self.trace is None:
            node.add_cost(line, scaled)
            return
        from repro.trace.model import DEFAULT_RESOLUTION, quantize

        ticks = {mid: quantize(v) for mid, v in scaled.items()}
        materialized = {
            mid: t * DEFAULT_RESOLUTION for mid, t in ticks.items() if t
        }
        if not materialized:
            return
        node.add_cost(line, materialized)
        frames = tuple(self._frames)
        slices = self._trace_slices
        if slices == 1:
            parts = [ticks]
        else:
            split: dict[int, list[int]] = {}
            for mid, t in ticks.items():
                q, rem = divmod(t, slices)
                split[mid] = [q + 1] * rem + [q] * (slices - rem)
            parts = [
                {mid: chunk[i] for mid, chunk in split.items()}
                for i in range(slices)
            ]
        for part in parts:
            part = {mid: t for mid, t in part.items() if t}
            if not part:
                continue
            t_now = self._clock_ticks * self._tick_seconds
            self.trace.record(frames, line, t_now, part)
            if self._time_mid is not None:
                self._clock_ticks += part.get(self._time_mid, 0)


def execute(
    program: Program,
    rank: int = 0,
    nranks: int = 1,
    params: dict | None = None,
    seed: int = 12345,
    max_depth: int = 400,
) -> ProfileData:
    """Convenience wrapper: execute *program* and return its profile."""
    return Executor(
        program,
        rank=rank,
        nranks=nranks,
        params=params,
        seed=seed,
        max_depth=max_depth,
    ).run()


def execute_trace(
    program: Program,
    rank: int = 0,
    nranks: int = 1,
    params: dict | None = None,
    seed: int = 12345,
    max_depth: int = 400,
    time_metric: str | None = None,
    time_scale: float = 1.0,
    trace_slices: int = 1,
):
    """Execute *program* in trace mode; return the sealed
    :class:`~repro.trace.model.TraceData`.

    The rank's untimed profile is exactly ``trace.profile()`` — the
    whole-trace window materialization.  *time_metric* names the metric
    whose cost advances the simulated clock (default: the program's
    first metric); *time_scale* converts one materialized unit of it
    into trace seconds; *trace_slices > 1* splits each collapsed
    statement's ticks into that many consecutive events for denser
    timelines (the split is exact, so window sums are unaffected).
    """
    executor = Executor(
        program,
        rank=rank,
        nranks=nranks,
        params=params,
        seed=seed,
        max_depth=max_depth,
        trace=True,
        time_metric=time_metric,
        time_scale=time_scale,
        trace_slices=trace_slices,
    )
    executor.run()
    return executor.trace

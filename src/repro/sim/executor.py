"""Execution engine for synthetic program models.

Walks a :class:`~repro.sim.program.Program` and produces a
:class:`~repro.hpcrun.profile_data.ProfileData` — the same artifact the
real measurement substrate produces for Python programs — so everything
downstream (correlation, views, presentation) is exercised identically.

The executor is *deterministic by construction*: statement costs are
attributed exactly (as if sampling captured the true cost distribution).
Realistic sampling noise can be layered on with
:meth:`ProfileData.resampled`.  Repeated calls with identical contexts are
collapsed — a call site with ``count=k`` executes its callee once and
scales the callee's costs by ``k`` — keeping simulation cost proportional
to the CCT size rather than the dynamic instruction count, which is what
lets laptop-scale runs model petascale executions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.core.metrics import MetricTable
from repro.hpcrun.profile_data import Frame, PathNode, ProfileData
from repro.sim.program import (
    Call,
    ExecContext,
    Inlined,
    Loop,
    Procedure,
    Program,
    Work,
    resolve_costs,
    resolve_number,
)

__all__ = ["Executor", "execute"]


class Executor:
    """Executes one synthetic program for one simulated rank."""

    def __init__(
        self,
        program: Program,
        rank: int = 0,
        nranks: int = 1,
        params: dict | None = None,
        seed: int = 12345,
        max_depth: int = 400,
    ) -> None:
        self.program = program
        self.rank = rank
        self.nranks = nranks
        self.params = dict(program.params)
        if params:
            self.params.update(params)
        self.max_depth = max_depth
        self.rng = np.random.default_rng(np.random.SeedSequence([seed, rank]))

        self.metrics = MetricTable()
        for name, unit in program.metrics:
            self.metrics.add(name, unit=unit)
        self._mid: dict[str, int] = {d.name: d.mid for d in self.metrics}

    # ------------------------------------------------------------------ #
    def run(self) -> ProfileData:
        """Execute from the entry procedure; return the call path profile."""
        profile = ProfileData(
            self.metrics, rank=self.rank, program=self.program.name
        )
        entry = self.program.procedure(self.program.entry)
        entry_frame = Frame(
            proc=entry.name,
            file=self.program.module_of(entry.name).path,
            call_line=0,
        )
        node = profile.root.ensure_child(entry_frame)
        ctx = ExecContext(
            path=(entry.name,),
            rank=self.rank,
            nranks=self.nranks,
            params=self.params,
            rng=self.rng,
        )
        self._exec_proc(entry, node, ctx, profile, depth=1)
        profile.sample_count = max(profile.sample_count, 1)
        return profile

    # ------------------------------------------------------------------ #
    def _mid_of(self, name: str) -> int:
        mid = self._mid.get(name)
        if mid is None:
            mid = self.metrics.add(name).mid
            self._mid[name] = mid
        return mid

    def _exec_proc(
        self,
        proc: Procedure,
        node: PathNode,
        ctx: ExecContext,
        profile: ProfileData,
        depth: int,
    ) -> None:
        if depth > self.max_depth:
            raise SimulationError(
                f"simulated call depth exceeded {self.max_depth} "
                f"(runaway recursion in {proc.name!r}?)"
            )
        self._exec_body(proc.body, node, ctx, profile, depth)

    def _exec_body(self, body, node, ctx, profile, depth) -> None:
        for stmt in body:
            if isinstance(stmt, Work):
                costs = resolve_costs(stmt.costs, ctx)
                if costs:
                    scaled = {
                        self._mid_of(name): v * ctx.multiplier
                        for name, v in costs.items()
                    }
                    node.add_cost(stmt.line, scaled)
                    profile.sample_count += 1
            elif isinstance(stmt, Loop):
                trips = resolve_number(stmt.trips, ctx)
                if trips <= 0:
                    continue
                inner = ExecContext(
                    path=ctx.path,
                    rank=ctx.rank,
                    nranks=ctx.nranks,
                    params=ctx.params,
                    rng=ctx.rng,
                    multiplier=ctx.multiplier * trips,
                )
                self._exec_body(stmt.body, node, inner, profile, depth)
            elif isinstance(stmt, Inlined):
                # inlined code runs in the current frame; attribution to the
                # inlined static scope happens during correlation by line.
                self._exec_body(stmt.body, node, ctx, profile, depth)
            elif isinstance(stmt, Call):
                self._exec_call(stmt, node, ctx, profile, depth)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown statement type {type(stmt).__name__}")

    def _exec_call(self, call: Call, node, ctx, profile, depth) -> None:
        count = resolve_number(call.count, ctx)
        site = resolve_costs(call.site_costs, ctx)
        if site:
            scaled = {
                self._mid_of(name): v * ctx.multiplier for name, v in site.items()
            }
            node.add_cost(call.line, scaled)
            profile.sample_count += 1
        if count <= 0:
            return
        callee = self.program.procedure(call.callee)
        frame = Frame(
            proc=callee.name,
            file=self.program.module_of(callee.name).path,
            call_line=call.line,
        )
        child = node.ensure_child(frame)
        inner = ExecContext(
            path=ctx.path + (callee.name,),
            rank=ctx.rank,
            nranks=ctx.nranks,
            params=ctx.params,
            rng=ctx.rng,
            multiplier=ctx.multiplier * count,
        )
        self._exec_proc(callee, child, inner, profile, depth + 1)


def execute(
    program: Program,
    rank: int = 0,
    nranks: int = 1,
    params: dict | None = None,
    seed: int = 12345,
    max_depth: int = 400,
) -> ProfileData:
    """Convenience wrapper: execute *program* and return its profile."""
    return Executor(
        program,
        rank=rank,
        nranks=nranks,
        params=params,
        seed=seed,
        max_depth=max_depth,
    ).run()

"""PFLOTRAN — synthetic model of the subsurface-flow code (Figure 7).

The paper's load-imbalance case study: PFLOTRAN modeling steady-state
groundwater flow in *heterogeneous porous media* on an 850 x 1000 x 80
element grid with 15 chemical species per cell, run on the Cray XT5
partition of Jaguar.  Heterogeneous permeability makes per-subdomain
solver work uneven, so ranks idle at synchronization points; sorting by
total inclusive idleness and drilling down with hot path analysis lands
on the main iteration loop at ``timestepper.F90:384``.

This model reproduces that scenario at laptop scale: each simulated rank
owns ``nx*ny*nz / nranks`` cells; its work is scaled by a spatially
correlated lognormal multiplier (:func:`repro.sim.imbalance
.heterogeneous_media`), and its *idleness* — attributed at the
``MPI_Allreduce`` synchronization inside the Krylov solve, in full
calling context — is ``(max over ranks - own work)`` per BSP step.

Metrics: ``PAPI_TOT_CYC`` plus an ``idleness`` cost in the same units.
"""

from __future__ import annotations

from repro.hpcrun.counters import CYCLES
from repro.sim.imbalance import heterogeneous_media, work_shares
from repro.sim.program import Call, ExecContext, Loop, Module, Procedure, Program, Work

__all__ = ["build", "IDLENESS", "DEFAULT_PARAMS", "rank_work_shares"]

IDLENESS = "idleness"

#: paper problem: 850 x 1000 x 80 cells, 15 species.  The defaults here are
#: scaled down; pass params={"nx": 850, "ny": 1000, "nz": 80} for full size
#: (costs are closed-form, so full scale is equally fast to simulate).
DEFAULT_PARAMS = {
    "nx": 85,
    "ny": 100,
    "nz": 8,
    "species": 15,
    "steps": 10,
    "sigma": 0.4,
    "correlation": 8,
    "seed": 11,
    #: cycles of solver work per cell-species-step on a balanced rank
    "unit_cost": 2.0e-3,
}


_share_cache: dict[tuple, "object"] = {}


def _shares(params: dict, nranks: int):
    """All ranks' work multipliers, memoized (the model is deterministic)."""
    key = (params["sigma"], params["correlation"], params["seed"], nranks)
    shares = _share_cache.get(key)
    if shares is None:
        model = heterogeneous_media(
            sigma=params["sigma"],
            correlation=params["correlation"],
            seed=params["seed"],
        )
        shares = work_shares(model, nranks)
        # normalize to mean 1.0: the decomposition conserves total work,
        # only its distribution is heterogeneous
        shares = shares / shares.mean()
        _share_cache[key] = shares
    return shares


def rank_work_shares(params: dict, nranks: int):
    """Work multipliers for every rank (what the imbalance model yields)."""
    return _shares({**DEFAULT_PARAMS, **params}, nranks)


def _params(ctx: ExecContext) -> dict:
    return {**DEFAULT_PARAMS, **ctx.params}


def _cells_per_rank(p: dict, nranks: int) -> float:
    return p["nx"] * p["ny"] * p["nz"] / nranks


def _step_work(ctx: ExecContext) -> float:
    """Solver cycles this rank spends per time step."""
    p = _params(ctx)
    share = _shares(p, ctx.nranks)[ctx.rank]
    return _cells_per_rank(p, ctx.nranks) * p["species"] * p["unit_cost"] * share


def _step_idleness(ctx: ExecContext) -> float:
    """Cycles this rank idles at the step's synchronization point."""
    p = _params(ctx)
    shares = _shares(p, ctx.nranks)
    gap = float(shares.max() - shares[ctx.rank])
    return _cells_per_rank(p, ctx.nranks) * p["species"] * p["unit_cost"] * gap


def build() -> Program:
    """Construct the PFLOTRAN model."""

    def solve_cost(fraction):
        def cost(ctx: ExecContext) -> dict[str, float]:
            return {CYCLES: fraction * _step_work(ctx)}

        return cost

    def sync_cost(ctx: ExecContext) -> dict[str, float]:
        # collective latency grows ~log2(P): the non-scaling component
        # that scale-and-difference (Section VI-A) isolates in context
        import math

        idle = _step_idleness(ctx)
        collective = 0.02 * _step_work(ctx) * (1.0 + math.log2(max(ctx.nranks, 1)))
        out = {CYCLES: collective}
        if idle > 0:
            out[IDLENESS] = idle
        return out

    pflotran_f90 = Module(
        path="pflotran.F90",
        procedures=[
            Procedure(
                name="pflotran_main",
                line=10,
                end_line=60,
                body=[
                    Work(line=15, costs=lambda ctx: {CYCLES: 0.01 * _step_work(ctx)}),
                    Call(line=30, callee="timestepper_run"),
                ],
            )
        ],
    )
    timestepper_f90 = Module(
        path="timestepper.F90",
        procedures=[
            Procedure(
                name="timestepper_run",
                line=360,
                end_line=430,
                body=[
                    Loop(  # the main iteration loop of Figure 7
                        line=384,
                        end_line=425,
                        trips=lambda ctx: _params(ctx)["steps"],
                        body=[
                            Call(line=390, callee="flow_solve"),
                            Call(line=400, callee="reactive_transport_step"),
                        ],
                    )
                ],
            )
        ],
    )
    flow_f90 = Module(
        path="flow.F90",
        procedures=[
            Procedure(
                name="flow_solve",
                line=100,
                end_line=160,
                body=[Call(line=120, callee="SNESSolve")],
            )
        ],
    )
    petsc = Module(
        path="petscsnes.c",
        procedures=[
            Procedure(
                name="SNESSolve",
                line=200,
                end_line=260,
                body=[
                    Work(line=205, costs=solve_cost(0.03)),
                    Loop(  # Newton iterations
                        line=210,
                        end_line=255,
                        body=[Call(line=220, callee="KSPSolve")],
                    ),
                ],
            ),
            Procedure(
                name="KSPSolve",
                line=300,
                end_line=380,
                body=[
                    Loop(  # Krylov iterations
                        line=310,
                        end_line=375,
                        body=[
                            Call(line=320, callee="MatMult"),
                            Call(line=340, callee="MPI_Allreduce"),
                        ],
                    )
                ],
            ),
            Procedure(
                name="MatMult",
                line=400,
                end_line=440,
                body=[Work(line=410, costs=solve_cost(0.55))],
            ),
        ],
    )
    mpi = Module(
        path="libmpi.so",
        procedures=[
            Procedure(
                name="MPI_Allreduce",
                line=0,
                end_line=0,
                # the synchronization point: idleness accumulates here, in
                # the full calling context under timestepper.F90:384
                body=[Work(line=0, costs=sync_cost)],
            )
        ],
    )
    transport_f90 = Module(
        path="reactive_transport.F90",
        procedures=[
            Procedure(
                name="reactive_transport_step",
                line=50,
                end_line=120,
                body=[
                    Loop(  # per-species kinetics
                        line=60,
                        end_line=110,
                        trips=lambda ctx: _params(ctx)["species"],
                        body=[
                            Work(
                                line=70,
                                costs=lambda ctx: {
                                    CYCLES: 0.39
                                    * _step_work(ctx)
                                    / _params(ctx)["species"]
                                },
                            )
                        ],
                    )
                ],
            )
        ],
    )
    return Program(
        name="pflotran",
        modules=[pflotran_f90, timestepper_f90, flow_f90, petsc, mpi, transport_f90],
        entry="pflotran_main",
        load_module="pflotran.x",
        metrics=[(CYCLES, "cycles"), (IDLENESS, "cycles")],
        params=DEFAULT_PARAMS,
    )

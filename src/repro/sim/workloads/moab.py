"""MOAB — synthetic model of the mesh benchmark (Figures 4 & 5).

The paper profiles ``mbperf_IMesh``, a benchmark over Argonne's MOAB mesh
library, with cycle and L1 data-cache-miss counters, and uses it to
showcase two presentations:

* **Figure 4** (Callers View, L1 misses): the Intel compiler replaced
  ``memset`` calls with its optimized ``_intel_fast_memset.A``; the
  bottom-up view shows that routine called from *two* contexts totalling
  9.7% of all L1 misses — almost all of it (9.6%) from the call by
  ``Sequence_data::create``.
* **Figure 5** (Flat View, cycles + L1 misses): all 18.9% of the cycles
  spent in ``MBCore::get_coords`` sit in one loop, inside which a
  hierarchy of *inlined* code — the ``SequenceManager::find`` operation,
  an inlined red-black-tree search loop from the C++ STL, and the
  ``SequenceCompare`` comparison operator inlined into it — attributes
  19.8% of the execution's L1 misses to the comparison operator.

Cost constants are calibrated so those shares reproduce within the
tolerances asserted by ``tests/sim/test_moab_calibration.py``.
"""

from __future__ import annotations

from repro.hpcrun.counters import CYCLES, FLOPS, L1_DCM, STANDARD_COUNTERS
from repro.sim.program import Call, Inlined, Loop, Module, Procedure, Program, Work

__all__ = ["build", "BASE_CYCLES", "BASE_MISSES"]

BASE_CYCLES = 2.0e9
BASE_MISSES = 5.0e7

#: per-scope (fraction of total cycles, fraction of total L1 misses)
_COSTS = {
    "main":            (0.0050, 0.0050),
    "build_mesh":      (0.0300, 0.0200),
    "create_excl":     (0.0350, 0.0400),
    "memset_create":   (0.0550, 0.0960),   # -> 9.6% of misses via create
    "memset_other":    (0.0010, 0.0010),   # -> 0.1% via the second caller
    "allocate_excl":   (0.0150, 0.0100),
    "testB":           (0.0100, 0.0050),
    "rb_node_chase":   (0.0300, 0.0500),   # pointer chasing in the tree
    "seq_compare":     (0.0600, 0.1980),   # -> 19.8% of misses, inlined
    "find_excl":       (0.0100, 0.0050),
    "coord_copy":      (0.0890, 0.0600),
    "get_connect":     (0.2600, 0.1900),
    "skin_test":       (0.2300, 0.1800),
    "adjacencies":     (0.1700, 0.1450),
}


def _cost(scope: str) -> dict[str, float]:
    cyc_frac, l1_frac = _COSTS[scope]
    cycles = cyc_frac * BASE_CYCLES
    return {
        CYCLES: cycles,
        L1_DCM: l1_frac * BASE_MISSES,
        FLOPS: 0.2 * cycles,  # mesh traversal is not FLOP-heavy
    }


def build() -> Program:
    """Construct the MOAB mesh benchmark model."""
    driver = Module(
        path="mbperf_IMesh.cpp",
        procedures=[
            Procedure(
                name="main",
                line=20,
                end_line=60,
                body=[
                    Work(line=25, costs=_cost("main")),
                    Call(line=30, callee="build_mesh"),
                    Call(line=40, callee="testB"),
                ],
            ),
            Procedure(
                name="build_mesh",
                line=80,
                end_line=140,
                body=[
                    Work(line=85, costs=_cost("build_mesh")),
                    Call(line=100, callee="Sequence_data::create"),
                    Call(line=120, callee="TypeSequenceManager::allocate"),
                ],
            ),
            Procedure(
                name="testB",
                line=160,
                end_line=220,
                body=[
                    Work(line=165, costs=_cost("testB")),
                    Loop(  # query loop over mesh entities
                        line=170,
                        end_line=215,
                        body=[
                            Call(line=180, callee="MBCore::get_coords"),
                            Call(line=190, callee="MBCore::get_connectivity"),
                            Call(line=200, callee="MBCore::get_adjacencies"),
                            Call(line=210, callee="skin_test"),
                        ],
                    ),
                ],
            ),
        ],
    )
    sequence_data = Module(
        path="Sequence_data.cpp",
        procedures=[
            Procedure(
                name="Sequence_data::create",
                line=40,
                end_line=90,
                body=[
                    Work(line=45, costs=_cost("create_excl")),
                    # the Intel compiler replaced this memset call with its
                    # own optimized implementation (Figure 4's finding)
                    Call(line=70, callee="_intel_fast_memset.A"),
                ],
            )
        ],
    )
    type_seq = Module(
        path="TypeSequenceManager.cpp",
        procedures=[
            Procedure(
                name="TypeSequenceManager::allocate",
                line=30,
                end_line=80,
                body=[
                    Work(line=35, costs=_cost("allocate_excl")),
                    Call(line=60, callee="_intel_fast_memset.A"),
                ],
            )
        ],
    )
    libirc = Module(
        path="libirc.so",  # Intel runtime: binary-only code
        procedures=[
            Procedure(
                name="_intel_fast_memset.A",
                line=0,
                end_line=0,
                body=[
                    Work(
                        line=0,
                        costs=lambda ctx: (
                            _cost("memset_create")
                            if "Sequence_data::create" in ctx.path
                            else _cost("memset_other")
                        ),
                    )
                ],
            )
        ],
    )
    mbcore = Module(
        path="MBCore.cpp",
        procedures=[
            Procedure(
                name="MBCore::get_coords",
                line=670,
                end_line=710,
                body=[
                    Loop(  # the highlighted loop of Figure 5: all the cycles
                        line=682,
                        end_line=705,
                        body=[
                            Inlined(
                                line=684,
                                end_line=696,
                                name="SequenceManager::find",
                                body=[
                                    Work(line=685, costs=_cost("find_excl")),
                                    Loop(  # inlined std::_Rb_tree search loop
                                        line=686,
                                        end_line=695,
                                        body=[
                                            Work(line=687, costs=_cost("rb_node_chase")),
                                            Inlined(
                                                line=689,
                                                end_line=693,
                                                name="SequenceCompare::operator()",
                                                body=[
                                                    Work(
                                                        line=690,
                                                        costs=_cost("seq_compare"),
                                                    )
                                                ],
                                            ),
                                        ],
                                    ),
                                ],
                            ),
                            Work(line=698, costs=_cost("coord_copy")),
                        ],
                    )
                ],
            ),
            Procedure(
                name="MBCore::get_connectivity",
                line=800,
                end_line=860,
                body=[
                    Loop(line=810, end_line=850,
                         body=[Work(line=820, costs=_cost("get_connect"))])
                ],
            ),
            Procedure(
                name="MBCore::get_adjacencies",
                line=900,
                end_line=960,
                body=[
                    Loop(line=910, end_line=950,
                         body=[Work(line=920, costs=_cost("adjacencies"))])
                ],
            ),
        ],
    )
    skin = Module(
        path="mb_skin.cpp",
        procedures=[
            Procedure(
                name="skin_test",
                line=50,
                end_line=120,
                body=[
                    Loop(line=60, end_line=110,
                         body=[Work(line=70, costs=_cost("skin_test"))])
                ],
            )
        ],
    )
    return Program(
        name="moab-mbperf",
        modules=[driver, sequence_data, type_seq, libirc, mbcore, skin],
        entry="main",
        load_module="mbperf_IMesh",
        metrics=list(STANDARD_COUNTERS[:3]),
    )

"""The example program of the paper's Figure 1.

Two files::

    file1.c                      file2.c
    1  f() {                     1  // recursive function
    2    g();                    2  g() {
    3  }                         3    if (..) g();
    5  // main routine           4    if (..) h();
    6  m() {                     5  }
    7    f();                    7  h() {
    8    g();                    8    for (..)   // l1
    9  }                         9      for (..) // l2
                                 10       ...    // work
    }

``g`` is context-sensitive: called from ``f`` it recurses once (creating
the nested instance g2, which then calls ``h``); called from ``m`` it does
local work only.  Costs are chosen so that the calling context tree of
Figure 2a is reproduced exactly::

    m (10, 0) -> f (7, 1) -> g1 (6, 1) -> g2 (5, 1) -> h (4, 4) -> l1 (4, 0) -> l2 (4, 4)
              -> g3 (3, 3)

(inclusive, exclusive) per node, for the single metric ``cycles``.
"""

from __future__ import annotations

from repro.sim.program import Call, ExecContext, Loop, Module, Procedure, Program, Work

__all__ = ["build", "METRIC"]

METRIC = "cycles"


def _g_self_cost(ctx: ExecContext) -> dict[str, float]:
    # g3 (called from m) does 3 units of local work; g1/g2 do 1 each.
    return {METRIC: 3.0 if ctx.caller == "m" else 1.0}


def _g_recurses(ctx: ExecContext) -> float:
    # only the instance called from f recurses (g1 -> g2)
    return 1.0 if ctx.caller == "f" else 0.0


def _g_calls_h(ctx: ExecContext) -> float:
    # only the recursive instance (called from g) calls h (g2 -> h)
    return 1.0 if ctx.caller == "g" else 0.0


def build() -> Program:
    """Construct the Figure 1 program model."""
    file1 = Module(
        path="file1.c",
        procedures=[
            Procedure(
                name="f",
                line=1,
                end_line=3,
                body=[
                    Work(line=1, costs={METRIC: 1.0}),
                    Call(line=2, callee="g"),
                ],
            ),
            Procedure(
                name="m",
                line=6,
                end_line=9,
                body=[
                    Call(line=7, callee="f"),
                    Call(line=8, callee="g"),
                ],
            ),
        ],
    )
    file2 = Module(
        path="file2.c",
        procedures=[
            Procedure(
                name="g",
                line=2,
                end_line=5,
                body=[
                    Work(line=2, costs=_g_self_cost),
                    Call(line=3, callee="g", count=_g_recurses),
                    Call(line=4, callee="h", count=_g_calls_h),
                ],
            ),
            Procedure(
                name="h",
                line=7,
                end_line=10,
                body=[
                    Loop(
                        line=8,
                        end_line=10,
                        trips=2,
                        body=[
                            Loop(
                                line=9,
                                end_line=10,
                                trips=2,
                                body=[Work(line=10, costs={METRIC: 1.0})],
                            )
                        ],
                    )
                ],
            ),
        ],
    )
    return Program(
        name="fig1",
        modules=[file1, file2],
        entry="m",
        load_module="fig1.exe",
        metrics=[(METRIC, "cycles")],
    )

"""S3D — synthetic model of the turbulent combustion code (Figures 3 & 6).

S3D (Sandia) solves compressible reacting flow with detailed chemistry;
the paper analyzes it twice:

* **Figure 3** (Calling Context View + hot path, total cycles): a long
  call chain ``main -> ... -> integrate_erk`` where the Runge-Kutta stage
  loop at ``integrate_erk.f90:82`` holds 97.9% of inclusive cycles but
  ~0.0% exclusive — the work is in ``rhsf`` (8.7% exclusive) and its
  descendants, and hot path analysis lands on
  ``chemkin_m_reaction_rate`` with 41.4% of inclusive cycles.
* **Figure 6** (derived metrics on the Flat View): the flux-diffusion
  loop carries the most floating-point waste (13.5% of the program
  total) at only ~6% relative efficiency; the runner-up is a loop in the
  math library's exponential routine running at ~39% efficiency (already
  tight).  Tuning the flux loop (scalarization/fusion/unroll-and-jam)
  made it 2.9x faster — ``build(tuned=True)`` models the tuned binary.

The cost constants below were calibrated so those headline percentages
reproduce within the tolerances asserted by
``tests/sim/test_s3d_calibration.py``; absolute magnitudes are arbitrary
(one "base unit" = ``BASE`` cycles).
"""

from __future__ import annotations

from repro.hpcrun.counters import CYCLES, FLOPS, L1_DCM, STANDARD_COUNTERS
from repro.sim.program import Call, Loop, Module, Procedure, Program, Work

__all__ = ["build", "BASE", "PEAK_FLOPS_PER_CYCLE"]

BASE = 1.0e9
PEAK_FLOPS_PER_CYCLE = 4.0

#: leaf cycle budgets as fractions of BASE, with relative FP efficiency
#: (fraction of peak achieved) and L1 miss intensity (misses per cycle)
_COSTS = {
    # scope                  cycles    eff    l1/cyc
    "main":                 (0.0040,  0.10,  0.001),
    "init":                 (0.0160,  0.10,  0.002),
    "solve_driver":         (0.0005,  0.10,  0.001),
    "integrate_erk":        (0.0005,  0.10,  0.001),
    "loop82":               (0.0005,  0.10,  0.001),
    "rhsf":                 (0.0870,  0.35,  0.004),
    "chemkin_w1":           (0.0620,  0.45,  0.003),
    "chemkin_w2":           (0.0580,  0.45,  0.003),
    "ratt_loop":            (0.0980,  0.50,  0.002),
    "ratx_loop":            (0.0950,  0.50,  0.002),
    "qssa_loop":            (0.0900,  0.50,  0.002),
    "flux_loop":            (0.0820,  0.06,  0.030),   # streaming: cache-bound
    "coeff_excl":           (0.0065,  0.30,  0.003),
    "exp_loop":             (0.1100,  0.39,  0.001),
    "thermchem_loop":       (0.1000,  0.42,  0.004),
    "deriv_l1":             (0.0750,  0.50,  0.006),
    "deriv_l2":             (0.0700,  0.50,  0.006),
}

#: tuning speedup of the flux-diffusion loop measured in the paper
_FLUX_TUNING_SPEEDUP = 2.9


def _cost(scope: str, tuned: bool = False):
    cycles_frac, eff, l1 = _COSTS[scope]
    cycles = cycles_frac * BASE
    flops = eff * PEAK_FLOPS_PER_CYCLE * cycles
    if tuned and scope == "flux_loop":
        # the transformed loop does the same FLOPs in 1/2.9 of the time
        cycles = cycles / _FLUX_TUNING_SPEEDUP
    return {CYCLES: cycles, FLOPS: flops, L1_DCM: l1 * cycles}


def build(tuned: bool = False) -> Program:
    """Construct the S3D model; ``tuned=True`` applies the Figure 6 fix."""
    main_f90 = Module(
        path="main.f90",
        procedures=[
            Procedure(
                name="main",
                line=10,
                end_line=40,
                body=[
                    Work(line=12, costs=_cost("main")),
                    Call(line=15, callee="initialize_field"),
                    Call(line=20, callee="solve_driver"),
                ],
            ),
            Procedure(
                name="initialize_field",
                line=50,
                end_line=70,
                body=[Work(line=55, costs=_cost("init"))],
            ),
        ],
    )
    solve_driver_f90 = Module(
        path="solve_driver.f90",
        procedures=[
            Procedure(
                name="solve_driver",
                line=20,
                end_line=60,
                body=[
                    Work(line=22, costs=_cost("solve_driver")),
                    Loop(  # time-step loop
                        line=30,
                        end_line=55,
                        body=[Call(line=35, callee="integrate_erk")],
                    ),
                ],
            )
        ],
    )
    integrate_erk_f90 = Module(
        path="integrate_erk.f90",
        procedures=[
            Procedure(
                name="integrate_erk",
                line=60,
                end_line=120,
                body=[
                    Work(line=65, costs=_cost("integrate_erk")),
                    Loop(  # the Runge-Kutta stage loop of Figure 3
                        line=82,
                        end_line=110,
                        body=[
                            Work(line=84, costs=_cost("loop82")),
                            Call(line=86, callee="rhsf"),
                            Call(line=95, callee="thermchem_m_calc_temp"),
                            Call(line=100, callee="derivative_m_deriv"),
                        ],
                    ),
                ],
            )
        ],
    )
    rhsf_f90 = Module(
        path="rhsf.f90",
        procedures=[
            Procedure(
                name="rhsf",
                line=100,
                end_line=400,
                body=[
                    Work(line=110, costs=_cost("rhsf")),
                    Call(line=150, callee="chemkin_m_reaction_rate"),
                    Call(line=200, callee="compute_diffusive_flux"),
                    Call(line=250, callee="transport_m_computecoefficients"),
                ],
            )
        ],
    )
    chemkin_f90 = Module(
        path="chemkin_m.f90",
        procedures=[
            Procedure(
                name="chemkin_m_reaction_rate",
                line=500,
                end_line=620,
                # three phase loops of comparable weight: the hot path ends
                # *here*, since no child reaches 50% of the routine's cost
                body=[
                    Loop(
                        line=510,
                        end_line=540,
                        body=[
                            Work(line=512, costs=_cost("chemkin_w1")),
                            Call(line=520, callee="ratt"),
                        ],
                    ),
                    Loop(
                        line=545,
                        end_line=570,
                        body=[
                            Work(line=548, costs=_cost("chemkin_w2")),
                            Call(line=555, callee="ratx"),
                        ],
                    ),
                    Loop(
                        line=575,
                        end_line=600,
                        body=[Call(line=580, callee="qssa")],
                    ),
                ],
            )
        ],
    )
    getrates_f = Module(
        path="getrates.f",
        procedures=[
            Procedure(
                name="ratt",  # forward/reverse rate constants
                line=1,
                end_line=60,
                body=[Loop(line=20, end_line=55,
                           body=[Work(line=25, costs=_cost("ratt_loop"))])],
            ),
            Procedure(
                name="ratx",  # concentration-dependent rates
                line=70,
                end_line=120,
                body=[Loop(line=80, end_line=110,
                           body=[Work(line=85, costs=_cost("ratx_loop"))])],
            ),
            Procedure(
                name="qssa",  # quasi-steady-state species
                line=130,
                end_line=180,
                body=[Loop(line=140, end_line=170,
                           body=[Work(line=145, costs=_cost("qssa_loop"))])],
            ),
        ],
    )
    diffflux_f90 = Module(
        path="diffflux.f90",
        procedures=[
            Procedure(
                name="compute_diffusive_flux",
                line=30,
                end_line=120,
                body=[
                    Loop(  # the flux-diffusion loop of Figure 6: streaming
                        line=45,
                        end_line=90,
                        body=[Work(line=50, costs=_cost("flux_loop", tuned=tuned))],
                    )
                ],
            )
        ],
    )
    transport_f90 = Module(
        path="transport_m.f90",
        procedures=[
            Procedure(
                name="transport_m_computecoefficients",
                line=200,
                end_line=280,
                body=[
                    Work(line=205, costs=_cost("coeff_excl")),
                    Loop(line=220, end_line=260, body=[Call(line=230, callee="exp")]),
                ],
            )
        ],
    )
    libm_c = Module(
        path="e_exp.c",  # the math library's exponential (binary-only source)
        procedures=[
            Procedure(
                name="exp",
                line=1,
                end_line=60,
                body=[
                    Loop(  # polynomial-evaluation loop: tight, 39% of peak
                        line=20,
                        end_line=40,
                        body=[Work(line=25, costs=_cost("exp_loop"))],
                    )
                ],
            )
        ],
    )
    thermchem_f90 = Module(
        path="thermchem_m.f90",
        procedures=[
            Procedure(
                name="thermchem_m_calc_temp",
                line=80,
                end_line=160,
                body=[
                    Loop(line=90, end_line=140,
                         body=[Work(line=95, costs=_cost("thermchem_loop"))])
                ],
            )
        ],
    )
    derivative_f90 = Module(
        path="derivative_m.f90",
        procedures=[
            Procedure(
                name="derivative_m_deriv",
                line=40,
                end_line=160,
                body=[
                    Loop(line=50, end_line=90,
                         body=[Work(line=55, costs=_cost("deriv_l1"))]),
                    Loop(line=100, end_line=150,
                         body=[Work(line=105, costs=_cost("deriv_l2"))]),
                ],
            )
        ],
    )
    return Program(
        name="s3d" + ("-tuned" if tuned else ""),
        modules=[
            main_f90,
            solve_driver_f90,
            integrate_erk_f90,
            rhsf_f90,
            chemkin_f90,
            getrates_f,
            diffflux_f90,
            transport_f90,
            libm_c,
            thermchem_f90,
            derivative_f90,
        ],
        entry="main",
        load_module="s3d.x",
        metrics=list(STANDARD_COUNTERS[:3]),  # cycles, flops, L1 misses
    )

"""Parametric synthetic program families for scaling and stress studies.

Four shape families whose CCT size/shape is controlled precisely:

* :func:`uniform_tree`  — fanout^depth frames; dense, balanced (the
  Section VII scaling subject);
* :func:`deep_chain`    — one call chain of configurable length, for
  navigation-depth and fused-line studies;
* :func:`wide_flat`     — many sibling procedures under one driver, for
  sorting/rendering-width studies;
* :func:`recursive_ladder` — self-recursion of configurable depth under
  several distinct contexts, for exposed-instance stress tests;
* :func:`mutual_ladder` — two procedures recursing into each other, so
  every procedure's instance set interleaves down the chain — the
  worst case for the exposed-instance rule (Section IV-B).
"""

from __future__ import annotations

from repro.sim.program import Call, Loop, Module, Procedure, Program, Work

__all__ = [
    "uniform_tree",
    "deep_chain",
    "wide_flat",
    "recursive_ladder",
    "mutual_ladder",
]

_METRIC = "cycles"


def uniform_tree(fanout: int = 8, depth: int = 3,
                 metric: str = _METRIC) -> Program:
    """A program whose CCT is a uniform tree: fanout^depth leaf frames.

    Procedures ``p<level>_<i>`` each call every procedure of the next
    level, giving ``fanout^level`` frames at each level.
    """
    procs: list[Procedure] = []
    for level in range(depth + 1):
        for i in range(fanout if level > 0 else 1):
            body = [Work(line=2, costs={metric: float(1 + (i % 3))})]
            if level < depth:
                body.extend(
                    Call(line=10 + j, callee=f"p{level + 1}_{j}")
                    for j in range(fanout)
                )
            procs.append(
                Procedure(name=f"p{level}_{i}", line=1,
                          end_line=20 + fanout, body=body)
            )
    return Program(
        name=f"tree-{fanout}x{depth}",
        modules=[Module(path="tree.c", procedures=procs)],
        entry="p0_0",
        metrics=[(metric, "cycles")],
    )


def deep_chain(length: int = 50, with_loops: bool = True,
               metric: str = _METRIC) -> Program:
    """One call chain ``c0 -> c1 -> … -> c<length>``, optionally with a
    loop wrapped around every call site."""
    procs: list[Procedure] = []
    for i in range(length + 1):
        body: list = [Work(line=2, costs={metric: 1.0})]
        if i < length:
            call = Call(line=5, callee=f"c{i + 1}")
            if with_loops:
                body.append(Loop(line=4, end_line=6, body=[call]))
            else:
                body.append(call)
        procs.append(Procedure(name=f"c{i}", line=1, end_line=8, body=body))
    return Program(
        name=f"chain-{length}",
        modules=[Module(path="chain.c", procedures=procs)],
        entry="c0",
        metrics=[(metric, "cycles")],
    )


def wide_flat(width: int = 200, metric: str = _METRIC) -> Program:
    """A driver calling *width* distinct leaf procedures once each."""
    leaves = [
        Procedure(name=f"leaf{i}", line=1, end_line=4,
                  body=[Work(line=2, costs={metric: float(i + 1)})])
        for i in range(width)
    ]
    driver = Procedure(
        name="driver", line=1, end_line=10 + width,
        body=[Call(line=10 + i, callee=f"leaf{i}") for i in range(width)],
    )
    return Program(
        name=f"wide-{width}",
        modules=[
            Module(path="driver.c", procedures=[driver]),
            Module(path="leaves.c", procedures=leaves),
        ],
        entry="driver",
        metrics=[(metric, "cycles")],
    )


def recursive_ladder(depth: int = 10, contexts: int = 3,
                     metric: str = _METRIC) -> Program:
    """Self-recursion *depth* frames deep, entered from several distinct
    call sites — the exposed-instance rule's stress case."""
    rec = Procedure(
        name="rec", line=10, end_line=16,
        body=[
            Work(line=11, costs={metric: 1.0}),
            Call(
                line=12, callee="rec",
                count=lambda ctx, d=depth: 1.0 if ctx.depth_of("rec") < d else 0.0,
            ),
        ],
    )
    main = Procedure(
        name="main", line=1, end_line=2 + contexts,
        body=[Call(line=2 + i, callee="rec") for i in range(contexts)],
    )
    return Program(
        name=f"ladder-{depth}x{contexts}",
        modules=[Module(path="ladder.c", procedures=[main, rec])],
        entry="main",
        metrics=[(metric, "cycles")],
    )


def mutual_ladder(depth: int = 10, contexts: int = 2,
                  metric: str = _METRIC) -> Program:
    """Mutual recursion ``ping -> pong -> ping -> …`` *depth* calls deep,
    entered from several distinct call sites.

    Every ``ping`` instance has a ``ping`` ancestor two frames up (and
    likewise for ``pong``), so each procedure's instance set is a chain of
    nested instances interleaved with the other's — the deep-recursion
    stress case for exposed-instance aggregation.
    """
    def hop(name: str, callee: str, line: int) -> Procedure:
        return Procedure(
            name=name, line=line, end_line=line + 6,
            body=[
                Work(line=line + 1, costs={metric: 1.0}),
                Call(
                    line=line + 2, callee=callee,
                    count=lambda ctx, d=depth: (
                        1.0
                        if ctx.depth_of("ping") + ctx.depth_of("pong") < d
                        else 0.0
                    ),
                ),
            ],
        )

    main = Procedure(
        name="main", line=1, end_line=2 + contexts,
        body=[Call(line=2 + i, callee="ping") for i in range(contexts)],
    )
    return Program(
        name=f"mutual-{depth}x{contexts}",
        modules=[
            Module(
                path="mutual.c",
                procedures=[main, hop("ping", "pong", 10), hop("pong", "ping", 20)],
            )
        ],
        entry="main",
        metrics=[(metric, "cycles")],
    )

"""Calibrated workload models: Figure 1, S3D, MOAB, PFLOTRAN."""

"""SPMD execution of synthetic programs — the parallel-measurement substrate.

Runs one :class:`~repro.sim.program.Program` once per simulated MPI rank
(each rank sees its ``rank``/``nranks`` in the :class:`ExecContext`, so
workloads can model data decomposition and load imbalance), producing the
same set of per-rank call path profiles ``hpcrun`` would write for a real
MPI job.  The profiles then flow through the standard post-mortem
pipeline: per-rank correlation, merging, and statistical summarization.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError
from repro.hpcprof.experiment import Experiment
from repro.hpcrun.profile_data import ProfileData
from repro.hpcstruct.synthstruct import build_structure
from repro.sim.executor import execute, execute_trace
from repro.sim.program import Program

__all__ = ["run_spmd", "spmd_experiment", "trace_spmd"]


def run_spmd(
    program: Program,
    nranks: int,
    params: dict | None = None,
    seed: int = 12345,
) -> list[ProfileData]:
    """Execute *program* on ``nranks`` simulated ranks; per-rank profiles."""
    if nranks < 1:
        raise SimulationError(f"nranks must be >= 1, got {nranks}")
    return [
        execute(program, rank=rank, nranks=nranks, params=params, seed=seed)
        for rank in range(nranks)
    ]


def spmd_experiment(
    program: Program,
    nranks: int,
    params: dict | None = None,
    seed: int = 12345,
    name: str = "",
) -> Experiment:
    """Run SPMD and assemble the merged experiment in one step."""
    profiles = run_spmd(program, nranks, params=params, seed=seed)
    structure = build_structure(program)
    return Experiment.from_profiles(
        profiles, structure, name=name or f"{program.name} x{nranks}"
    )


def trace_spmd(
    program: Program,
    nranks: int,
    params: dict | None = None,
    seed: int = 12345,
    name: str = "",
    time_metric: str | None = None,
    time_scale: float = 1.0,
    trace_slices: int = 1,
):
    """Execute *program* in trace mode on every rank; one
    :class:`~repro.trace.model.TraceSet`.

    Each rank runs its own simulated clock from zero, so rank-dependent
    costs show up directly as skewed timelines (late-rank idleness) and
    the program's sequential statement order shows up as phases.
    ``traces.window_experiment(None, None)`` is the run's untimed
    experiment, exactly.
    """
    from repro.trace.model import TraceSet

    if nranks < 1:
        raise SimulationError(f"nranks must be >= 1, got {nranks}")
    traces = [
        execute_trace(
            program,
            rank=rank,
            nranks=nranks,
            params=params,
            seed=seed,
            time_metric=time_metric,
            time_scale=time_scale,
            trace_slices=trace_slices,
        )
        for rank in range(nranks)
    ]
    structure = build_structure(program)
    return TraceSet(
        traces, structure, name=name or f"{program.name} x{nranks} trace"
    )

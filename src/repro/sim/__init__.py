"""Workload simulation substrate: program models, execution, SPMD."""

"""Thousand-rank synthetic database generation for out-of-core studies.

The out-of-core storage tier (:mod:`repro.core.store`,
:func:`repro.hpcprof.merge.merge_rank_files`) is only interesting at
scales where holding every rank's profile in memory at once stops being
an option.  This module manufactures that scale deterministically: one
synthetic program (a uniform call tree with rank-dependent work costs)
is executed once per rank and each rank's experiment is saved as its own
``.rpdb`` file, exactly the shape a real per-process measurement
substrate would leave behind.

The program's structure is built once and shared across all ranks, so
every rank file carries an identical structure model — the common case
for SPMD codes — while the metric values differ per rank according to a
load-imbalance model (:mod:`repro.sim.imbalance`).  Generation cost is
linear in ``nranks * nodes`` and independent of the merge working-set
budget being exercised downstream.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError
from repro.hpcprof import database
from repro.hpcprof.experiment import Experiment
from repro.hpcstruct.synthstruct import build_structure
from repro.sim import imbalance as imbalance_mod
from repro.sim.executor import execute
from repro.sim.program import Call, Module, Procedure, Program, Work

__all__ = ["scale_program", "generate_rank_files", "IMBALANCE_MODELS"]

#: name -> zero-argument factory producing an ImbalanceModel
IMBALANCE_MODELS = {
    "uniform": imbalance_mod.uniform,
    "linear_skew": imbalance_mod.linear_skew,
    "hotspot": imbalance_mod.hotspot,
    "lognormal_field": imbalance_mod.lognormal_field,
}


def scale_program(fanout: int = 4, depth: int = 3,
                  metric: str = "cycles",
                  imbalance: str = "linear_skew") -> Program:
    """A uniform call tree whose work costs vary with the executing rank.

    Like :func:`repro.sim.workloads.synthetic.uniform_tree` the static
    shape is ``fanout^level`` procedures per level, but every ``Work``
    cost is a callable scaled by an imbalance model over
    ``(ctx.rank, ctx.nranks)`` so different ranks attribute different
    metric values to the *same* calling contexts — which is what makes
    per-rank matrices and summary statistics non-trivial downstream.
    """
    if imbalance not in IMBALANCE_MODELS:
        raise SimulationError(
            f"unknown imbalance model: {imbalance!r} "
            f"(choose from {sorted(IMBALANCE_MODELS)})")
    model = IMBALANCE_MODELS[imbalance]()

    def cost_for(base: float):
        def costs(ctx):
            return {metric: base * model(ctx.rank, ctx.nranks)}

        return costs

    procs: list[Procedure] = []
    for level in range(depth + 1):
        for i in range(fanout if level > 0 else 1):
            body: list = [Work(line=2, costs=cost_for(float(1 + (i % 3))))]
            if level < depth:
                body.extend(
                    Call(line=10 + j, callee=f"p{level + 1}_{j}")
                    for j in range(fanout)
                )
            procs.append(
                Procedure(name=f"p{level}_{i}", line=1,
                          end_line=20 + fanout, body=body)
            )
    return Program(
        name=f"scale-{fanout}x{depth}-{imbalance}",
        modules=[Module(path="scale.c", procedures=procs)],
        entry="p0_0",
        metrics=[(metric, "cycles")],
    )


def generate_rank_files(out_dir: str, nranks: int, *,
                        fanout: int = 4, depth: int = 3,
                        metric: str = "cycles",
                        imbalance: str = "linear_skew",
                        seed: int = 2026,
                        progress=None) -> list[str]:
    """Execute the scale program once per rank; save one ``.rpdb`` each.

    Returns the ordered list of written paths
    (``<out_dir>/rank0000.rpdb`` …).  *progress*, when given, is called
    with ``(rank_index, nranks)`` after each file is written — the CLI
    uses it for a heartbeat on thousand-rank runs.
    """
    if nranks < 1:
        raise SimulationError(f"nranks must be >= 1, got {nranks}")
    program = scale_program(fanout=fanout, depth=depth, metric=metric,
                            imbalance=imbalance)
    structure = build_structure(program)
    os.makedirs(out_dir, exist_ok=True)
    width = max(4, len(str(nranks - 1)))
    paths: list[str] = []
    for rank in range(nranks):
        profile = execute(program, rank=rank, nranks=nranks, seed=seed)
        exp = Experiment.from_profile(profile, structure,
                                      name=f"{program.name}-r{rank}")
        path = os.path.join(out_dir, f"rank{rank:0{width}d}.rpdb")
        database.save(exp, path)
        paths.append(path)
        if progress is not None:
            progress(rank, nranks)
    return paths

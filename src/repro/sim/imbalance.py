"""Load-imbalance models for SPMD workload simulation (Section VI-C).

Load imbalance "is caused by uneven distribution of work that forces some
processes to idle between synchronization points".  A model here is a
deterministic function ``rank -> relative work multiplier`` (mean ≈ 1.0
over ranks), used by SPMD workloads both to scale each rank's work and to
compute per-rank *idleness* under a BSP synchronization model::

    idleness(r) = max_work - work(r)

Every model is a pure function of (rank, nranks) — stochastic models
derive their randomness from a per-rank seeded generator — so any rank
can compute any other rank's share, which is how a simulated rank knows
the global maximum without communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "ImbalanceModel",
    "uniform",
    "linear_skew",
    "hotspot",
    "lognormal_field",
    "heterogeneous_media",
    "work_shares",
    "idleness_shares",
]

#: rank, nranks -> relative work multiplier
ImbalanceModel = Callable[[int, int], float]


def uniform() -> ImbalanceModel:
    """Perfectly balanced work."""

    def model(rank: int, nranks: int) -> float:
        return 1.0

    return model


def linear_skew(alpha: float = 0.5) -> ImbalanceModel:
    """Work rises linearly with rank: 1-alpha at rank 0 to 1+alpha at the top."""
    if not (0.0 <= alpha < 1.0):
        raise SimulationError(f"alpha must be in [0,1), got {alpha}")

    def model(rank: int, nranks: int) -> float:
        if nranks == 1:
            return 1.0
        return 1.0 - alpha + 2.0 * alpha * rank / (nranks - 1)

    return model


def hotspot(count: int = 1, factor: float = 3.0) -> ImbalanceModel:
    """A few overloaded ranks (e.g. boundary subdomains) at ``factor`` x work."""
    if count < 1:
        raise SimulationError("hotspot count must be >= 1")
    if factor <= 0:
        raise SimulationError("hotspot factor must be positive")

    def model(rank: int, nranks: int) -> float:
        return factor if rank < min(count, nranks) else 1.0

    return model


def lognormal_field(sigma: float = 0.3, seed: int = 7) -> ImbalanceModel:
    """Independent lognormal work per rank — amorphous heterogeneity."""
    if sigma < 0:
        raise SimulationError("sigma must be non-negative")

    def model(rank: int, nranks: int) -> float:
        rng = np.random.default_rng(np.random.SeedSequence([seed, rank]))
        return float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))

    return model


def heterogeneous_media(
    sigma: float = 0.4, correlation: int = 8, seed: int = 11
) -> ImbalanceModel:
    """Spatially correlated heterogeneity — the PFLOTRAN scenario.

    Ranks owning neighbouring subdomains of a heterogeneous porous medium
    see correlated permeability, hence correlated work: a smoothed
    lognormal field over the rank axis with the given correlation length.
    """
    if correlation < 1:
        raise SimulationError("correlation length must be >= 1")
    base = lognormal_field(sigma=sigma, seed=seed)

    def model(rank: int, nranks: int) -> float:
        lo = max(0, rank - correlation // 2)
        hi = min(nranks, lo + correlation)
        window = [base(r, nranks) for r in range(lo, hi)]
        return float(np.mean(window))

    return model


# --------------------------------------------------------------------- #
def work_shares(model: ImbalanceModel, nranks: int) -> np.ndarray:
    """All ranks' work multipliers under a model."""
    if nranks < 1:
        raise SimulationError("nranks must be >= 1")
    return np.array([model(rank, nranks) for rank in range(nranks)])


def idleness_shares(model: ImbalanceModel, nranks: int) -> np.ndarray:
    """Per-rank idleness under BSP synchronization: max work - own work."""
    shares = work_shares(model, nranks)
    return shares.max() - shares

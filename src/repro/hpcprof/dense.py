"""Dense (numpy) metric storage — the sparse-vs-dense ablation.

The presentation layer stores per-scope metrics as sparse dicts, which
matches the paper's observation that "performance data is sparse" and
keeps memory proportional to nonzero cells.  For *whole-tree numeric
analysis* — totals, top-k scans, percent normalization, statistical
passes — a dense ``(num_nodes x num_metrics)`` matrix with vectorized
numpy kernels is the classic alternative.  This module provides that
representation plus vectorized equivalents of the hot analysis kernels,
so ``benchmarks/bench_storage.py`` can quantify the trade-off both ways
(time for bulk numerics vs. memory at realistic sparsity).

The dense store is a *projection*: built from an attributed CCT, never
the source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cct import CCT, CCTNode
from repro.core.errors import MetricError

__all__ = ["DenseMetrics", "attribute_dense"]


@dataclass
class DenseMetrics:
    """Dense per-node metric matrices over one CCT.

    ``nodes[i]`` corresponds to row ``i`` of each matrix; ``index`` maps
    node uid → row.  Rows are in preorder, so every parent precedes its
    children — the property the vectorized kernels rely on.
    """

    nodes: list[CCTNode]
    index: dict[int, int]
    parent_rows: np.ndarray          # row of each node's parent (-1 for root)
    raw: np.ndarray                  # (n_nodes, n_metrics)
    inclusive: np.ndarray
    exclusive: np.ndarray

    # ------------------------------------------------------------------ #
    @classmethod
    def from_cct(cls, cct: CCT, num_metrics: int) -> "DenseMetrics":
        if num_metrics < 1:
            raise MetricError("num_metrics must be >= 1")
        nodes = list(cct.walk())
        index = {node.uid: row for row, node in enumerate(nodes)}
        n = len(nodes)
        parent_rows = np.empty(n, dtype=np.int64)
        raw = np.zeros((n, num_metrics))
        inclusive = np.zeros((n, num_metrics))
        exclusive = np.zeros((n, num_metrics))
        for row, node in enumerate(nodes):
            parent_rows[row] = index[node.parent.uid] if node.parent else -1
            for store, matrix in ((node.raw, raw),
                                  (node.inclusive, inclusive),
                                  (node.exclusive, exclusive)):
                for mid, value in store.items():
                    if mid < num_metrics:
                        matrix[row, mid] = value
        return cls(nodes=nodes, index=index, parent_rows=parent_rows,
                   raw=raw, inclusive=inclusive, exclusive=exclusive)

    # ------------------------------------------------------------------ #
    # vectorized kernels
    # ------------------------------------------------------------------ #
    def totals(self) -> np.ndarray:
        """Experiment totals per metric (the root's inclusive row)."""
        return self.inclusive[0].copy()

    def shares(self, mid: int) -> np.ndarray:
        """Every scope's inclusive share of the total, in one pass."""
        total = self.inclusive[0, mid]
        if total == 0.0:
            return np.zeros(len(self.nodes))
        return self.inclusive[:, mid] / total

    def top_k(self, mid: int, k: int = 10, exclusive: bool = True
              ) -> list[tuple[CCTNode, float]]:
        """The k heaviest scopes by one metric — argpartition, not sort."""
        matrix = self.exclusive if exclusive else self.inclusive
        column = matrix[:, mid]
        k = min(k, len(column))
        idx = np.argpartition(column, -k)[-k:]
        idx = idx[np.argsort(column[idx])[::-1]]
        return [(self.nodes[i], float(column[i])) for i in idx]

    def recompute_inclusive(self) -> np.ndarray:
        """Vectorized Eq. 2: bottom-up accumulation over the preorder.

        Walking rows in reverse preorder and adding each row into its
        parent computes every inclusive vector without per-node dict
        traffic; ``np.add.at`` is unnecessary because each row is visited
        exactly once.
        """
        out = self.raw.copy()
        for row in range(len(self.nodes) - 1, 0, -1):
            out[self.parent_rows[row]] += out[row]
        return out

    def memory_bytes(self) -> int:
        """Matrix memory footprint (the dense side of the ablation)."""
        return self.raw.nbytes + self.inclusive.nbytes + self.exclusive.nbytes

    @staticmethod
    def sparse_memory_bytes(cct: CCT) -> int:
        """Approximate footprint of the sparse dict representation."""
        import sys

        total = 0
        for node in cct.walk():
            for store in (node.raw, node.inclusive, node.exclusive):
                total += sys.getsizeof(store)
                total += len(store) * (sys.getsizeof(0) + sys.getsizeof(0.0))
        return total

    def nonzero_fraction(self, which: str = "raw") -> float:
        """How sparse the data actually is (the paper's premise).

        ``raw`` is the honest measure — measurement attributes costs to
        leaves only, so interior scopes' raw rows are zero; ``inclusive``
        densifies by construction (every ancestor of a costed leaf gets a
        value), which is exactly why the sparse-dict representation keys
        per-scope rather than allocating matrices.
        """
        matrix = getattr(self, which)
        return float(np.count_nonzero(matrix)) / matrix.size


def attribute_dense(cct: CCT, num_metrics: int) -> DenseMetrics:
    """Build the dense projection and verify Eq. 2 vectorized.

    Returns the dense store with ``inclusive`` recomputed from ``raw`` by
    the vectorized kernel; used by the ablation bench and as an
    independent cross-check of the sparse attribution (the two paths are
    compared in tests).
    """
    dense = DenseMetrics.from_cct(cct, num_metrics)
    dense.inclusive = dense.recompute_inclusive()
    return dense

"""Dense (numpy) metric storage — now a facade over the columnar engine.

Historically this module was a quarantined benchmark-only ablation; the
underlying store has since been promoted to the production analysis path
as :class:`repro.core.engine.MetricEngine`.  :class:`DenseMetrics`
remains as the ablation-facing API (``benchmarks/bench_storage.py`` and
the sparse-vs-dense tests use it) and adds the memory/sparsity probes
that quantify the trade-off the paper's sparse-dict representation makes.

The dense store is a *projection*: built from an attributed CCT, never
the source of truth.
"""

from __future__ import annotations

import numpy as np

from repro.core.cct import CCT
from repro.core.engine import MetricEngine

__all__ = ["DenseMetrics", "attribute_dense"]


class DenseMetrics(MetricEngine):
    """The ablation-facing view of the columnar engine.

    Inherits the preorder row layout (``nodes``, ``index``,
    ``parent_rows``), the three matrices, and the vectorized kernels
    (``totals`` / ``shares`` / ``top_k`` / ``memory_bytes``); adds the
    sparse-representation probes used to quantify the paper's
    "performance data is sparse" premise.
    """

    @classmethod
    def from_cct(cls, cct: CCT, num_metrics: int) -> "DenseMetrics":
        return cls(cct, num_metrics)

    # ------------------------------------------------------------------ #
    def recompute_inclusive(self) -> np.ndarray:
        """Vectorized Eq. 2 from ``raw``, returned without mutating."""
        inclusive, _exclusive = self.compute_attribution()
        return inclusive

    @staticmethod
    def sparse_memory_bytes(cct: CCT) -> int:
        """Approximate footprint of the sparse dict representation."""
        import sys

        total = 0
        for node in cct.walk():
            for store in (node.raw, node.inclusive, node.exclusive):
                total += sys.getsizeof(store)
                total += len(store) * (sys.getsizeof(0) + sys.getsizeof(0.0))
        return total

    def nonzero_fraction(self, which: str = "raw") -> float:
        """How sparse the data actually is (the paper's premise).

        ``raw`` is the honest measure — measurement attributes costs to
        leaves only, so interior scopes' raw rows are zero; ``inclusive``
        densifies by construction (every ancestor of a costed leaf gets a
        value), which is exactly why the sparse-dict representation keys
        per-scope rather than allocating matrices.
        """
        matrix = getattr(self, which)
        return float(np.count_nonzero(matrix)) / matrix.size


def attribute_dense(cct: CCT, num_metrics: int) -> DenseMetrics:
    """Build the dense projection with ``inclusive``/``exclusive``
    recomputed from ``raw`` by the vectorized kernels; used by the
    ablation bench and as an independent cross-check of the sparse
    attribution (the two paths are compared in tests)."""
    dense = DenseMetrics.from_cct(cct, num_metrics)
    dense.refresh()
    return dense

"""Fault-tolerant experiment-database loading (salvage mode).

Strict loads (:func:`repro.hpcprof.database.load` with the default
``strict=True``) present exactly one failure mode for bad bytes:
:class:`DatabaseError`.  This module adds the recovery story for
imperfect databases at scale — a truncated upload, a flipped bit on
disk — by loading **the largest validated prefix** instead of raising:

* the v2 framed format (:mod:`repro.hpcprof.binio`) carries a CRC32
  per section, so corruption is *localized*: a section whose checksum
  fails is skipped in its entirety (a prefix of corrupted bytes cannot
  be validated, so none of it is trusted) while every later section is
  still recovered through the framing;
* a *truncated* stream keeps the bytes it still has intact, so the cut
  section is prefix-parsed record by record — records are only applied
  once fully parsed, so the recovered CCT is always a well-formed
  subtree (preorder prefix: parents before children);
* metric values referencing metric ids lost with a corrupt metric
  table are dropped column-wise, keeping the nodes and the surviving
  columns;
* the recovered tree is re-attributed (Eqs. 1 and 2), so inclusive and
  exclusive values are consistent on the salvaged subtree by
  construction, then validated by :func:`validate_experiment` — the
  same check a clean load passes.

Every salvage returns an :class:`Experiment` tagged with a structured
:class:`LoadReport` (``experiment.load_report``) accounting for bytes
lost, nodes dropped, and sections skipped.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTKind
from repro.errors import DatabaseError
from repro.core.metrics import MetricKind, MetricTable
from repro.hpcprof import binio
from repro.hpcprof.binio import (
    MALFORMED_EXCEPTIONS,
    SEC_CCT,
    SEC_END,
    SEC_METRICS,
    SEC_NAME,
    SEC_STRINGS,
    SEC_STRUCTURE,
    SECTION_NAMES,
    _FRAME_HEADER,
    _Reader,
)
from repro.hpcprof.experiment import Experiment
from repro.hpcstruct.model import StructureModel

__all__ = [
    "LoadReport",
    "probe_bytes",
    "salvage_load",
    "salvage_loads",
    "validate_experiment",
]

_SECTION_ORDER = (SEC_NAME, SEC_STRINGS, SEC_METRICS, SEC_STRUCTURE, SEC_CCT)


@dataclass
class LoadReport:
    """Structured account of what a (salvage) load recovered and lost."""

    origin: str
    mode: str
    version: int = 0
    #: True only when the stream parsed end to end with every check passing
    clean: bool = True
    bytes_total: int = 0
    bytes_recovered: int = 0
    bytes_lost: int = 0
    #: sections whose payload was entirely discarded (checksum failure,
    #: unreachable after an earlier unframed failure, or missing)
    sections_skipped: list[str] = field(default_factory=list)
    #: sections recovered as a record prefix of a cut payload
    sections_truncated: list[str] = field(default_factory=list)
    #: CCT node counts: declared is None for v1 streams (no count field)
    nodes_declared: int | None = None
    nodes_recovered: int = 0
    nodes_dropped: int | None = None
    structure_nodes_recovered: int = 0
    metrics_recovered: int = 0
    strings_recovered: int = 0
    #: metric values dropped because their column's descriptor was lost
    values_dropped: int = 0
    errors: list[str] = field(default_factory=list)

    def finalize(self) -> None:
        self.bytes_lost = max(0, self.bytes_total - self.bytes_recovered)
        if self.nodes_declared is not None:
            self.nodes_dropped = max(0, self.nodes_declared - self.nodes_recovered)
        if (self.bytes_lost or self.sections_skipped
                or self.sections_truncated or self.errors
                or self.values_dropped):
            self.clean = False

    def to_payload(self) -> dict:
        """A JSON-safe rendering (what the server attaches to responses)."""
        return {
            "origin": self.origin,
            "mode": self.mode,
            "version": self.version,
            "clean": self.clean,
            "bytes": {
                "total": self.bytes_total,
                "recovered": self.bytes_recovered,
                "lost": self.bytes_lost,
            },
            "nodes": {
                "declared": self.nodes_declared,
                "recovered": self.nodes_recovered,
                "dropped": self.nodes_dropped,
            },
            "sections_skipped": list(self.sections_skipped),
            "sections_truncated": list(self.sections_truncated),
            "structure_nodes_recovered": self.structure_nodes_recovered,
            "metrics_recovered": self.metrics_recovered,
            "strings_recovered": self.strings_recovered,
            "values_dropped": self.values_dropped,
            "errors": list(self.errors),
        }

    def summary(self) -> str:
        if self.clean:
            return f"{self.origin}: clean load ({self.bytes_total} bytes)"
        bits = [
            f"{self.origin}: salvaged {self.nodes_recovered} scopes",
            f"{self.bytes_lost} bytes lost",
        ]
        if self.nodes_dropped:
            bits.append(f"{self.nodes_dropped} scopes dropped")
        if self.sections_skipped:
            bits.append("skipped: " + ", ".join(self.sections_skipped))
        if self.sections_truncated:
            bits.append("truncated: " + ", ".join(self.sections_truncated))
        return "; ".join(bits)


# --------------------------------------------------------------------- #
# validation (shared by clean loads in tests and every salvage load)
# --------------------------------------------------------------------- #
def validate_experiment(exp: Experiment, tol: float = 1e-6) -> None:
    """Check the invariants every loadable experiment must satisfy.

    Raises :class:`DatabaseError` on the first violation.  Checked:

    * parent/child links are mutually consistent and the tree is acyclic
      (each node visited exactly once from the root);
    * every metric id on any node exists in the metric table;
    * Eq. 2 — each scope's inclusive value equals its raw value plus the
      sum of its children's inclusive values (raw metrics);
    * Eq. 1 — each scope's exclusive value follows the hybrid rule:
      statements and call sites carry their own raw cost, loops add the
      raw cost of their direct statement/call-site children, and frames
      carry the within-frame raw subtotal (raw metrics).
    """
    metrics = exp.metrics
    nmetrics = len(metrics)
    raw_mids = {d.mid for d in metrics if d.kind is MetricKind.RAW}
    seen: set[int] = set()

    def pick(values: dict, mids: set[int]) -> dict:
        return {m: v for m, v in values.items() if m in mids}

    def close(got: dict, expect: dict, node, eq: str) -> None:
        for mid in set(got) | set(expect):
            g, e = got.get(mid, 0.0), expect.get(mid, 0.0)
            if abs(g - e) > tol * max(1.0, abs(e)):
                raise DatabaseError(
                    f"Eq. {eq} violated at {node.name!r} for metric {mid}: "
                    f"{g} != {e}"
                )

    within: dict[int, dict] = {}  # uid -> within-frame raw subtotal
    for node in exp.cct.root.walk_postorder():
        if node.uid in seen:
            raise DatabaseError(f"cycle in CCT at {node.name!r}")
        seen.add(node.uid)
        for child in node.children:
            if child.parent is not node:
                raise DatabaseError(f"broken parent link under {node.name!r}")
        for values in (node.raw, node.inclusive, node.exclusive):
            for mid in values:
                if not 0 <= mid < nmetrics:
                    raise DatabaseError(
                        f"scope {node.name!r} references unknown metric {mid}"
                    )
        # Eq. 2: inclusive = raw + children's inclusive
        expect = dict(pick(node.raw, raw_mids))
        for child in node.children:
            for mid, v in pick(child.inclusive, raw_mids).items():
                expect[mid] = expect.get(mid, 0.0) + v
        close(pick(node.inclusive, raw_mids), expect, node, "2")
        # within-frame raw subtotal (the Eq. 1 frame rule carrier)
        sub = dict(pick(node.raw, raw_mids))
        for child in node.children:
            if child.kind is not CCTKind.FRAME:
                for mid, v in within.pop(child.uid, {}).items():
                    sub[mid] = sub.get(mid, 0.0) + v
        # Eq. 1: the hybrid exclusive rule, per scope kind
        if node.kind in (CCTKind.STATEMENT, CCTKind.CALL_SITE):
            expect = pick(node.raw, raw_mids)
        elif node.kind is CCTKind.LOOP:
            expect = dict(pick(node.raw, raw_mids))
            for child in node.children:
                if child.kind in (CCTKind.STATEMENT, CCTKind.CALL_SITE):
                    for mid, v in pick(child.raw, raw_mids).items():
                        expect[mid] = expect.get(mid, 0.0) + v
        elif node.kind is CCTKind.FRAME:
            expect = sub
        else:  # ROOT
            expect = pick(node.raw, raw_mids)
        close(pick(node.exclusive, raw_mids), expect, node, "1")
        if node.kind is not CCTKind.FRAME:
            within[node.uid] = sub


# --------------------------------------------------------------------- #
# salvage loading
# --------------------------------------------------------------------- #
def salvage_loads(data: bytes, origin: str = "<bytes>") -> Experiment:
    """Recover the largest validated prefix of a binary database.

    Returns an :class:`Experiment` tagged with ``.load_report``; raises
    :class:`DatabaseError` only when the input is not recognizably a
    binary experiment database at all (bad magic / unknown version).
    """
    version = binio.read_header(data)
    report = LoadReport(origin=origin, mode="salvage", version=version,
                        bytes_total=len(data))
    if version == 1:
        exp = _salvage_v1(data, report)
    else:
        exp = _salvage_v2(data, report)
    report.finalize()
    exp.load_report = report
    return exp


def probe_bytes(data: bytes, origin: str = "<bytes>") -> LoadReport:
    """Admission check: what would a salvage load of *data* recover?

    Runs the full salvage pipeline and returns only its
    :class:`LoadReport` — ``report.clean`` is True iff a strict load
    would accept *data* byte-for-byte.  The corpus ingestion path uses
    this as its upload gatekeeper: clean payloads are stored verbatim,
    dirty ones are refused or (opt-in) re-serialized from the salvage.
    Raises :class:`DatabaseError` only for data that is not a binary
    experiment database at all.
    """
    return salvage_loads(data, origin=origin).load_report


def salvage_load(path: str) -> Experiment:
    """File-path convenience wrapper over :func:`salvage_loads`."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise DatabaseError(f"cannot read database {path}: {exc}") from exc
    return salvage_loads(data, origin=path)


def _salvage_strings(reader: _Reader, report: LoadReport) -> list[str]:
    """Recover a prefix of the string table."""
    strings: list[str] = []
    try:
        (nstrings,) = reader.unpack("<I")
        reader.check_count(nstrings, 4, "string")
        for _ in range(nstrings):
            strings.append(reader.read_str())
    except (DatabaseError, *MALFORMED_EXCEPTIONS) as exc:
        report.errors.append(f"strings: {exc!r}")
    return strings


def _salvage_metrics(
    reader: _Reader, strings: list[str], report: LoadReport
) -> MetricTable:
    """Recover a prefix of the metric table (ids stay dense)."""
    metrics = MetricTable()
    try:
        (nmetrics,) = reader.unpack("<I")
        reader.check_count(nmetrics, struct.calcsize("<IIIIdBB"), "metric")
        for _ in range(nmetrics):
            binio.read_one_metric(reader, strings, metrics)
    except (DatabaseError, *MALFORMED_EXCEPTIONS) as exc:
        report.errors.append(f"metrics: {exc!r}")
    return metrics


def _drop_unknown_columns(cct: CCT, stored, metrics: MetricTable,
                          report: LoadReport):
    """Drop metric values whose descriptor did not survive the load."""
    nmetrics = len(metrics)
    for node in cct.walk():
        bad = [mid for mid in node.raw if not 0 <= mid < nmetrics]
        for mid in bad:
            del node.raw[mid]
        report.values_dropped += len(bad)
    kept_stored = []
    for node, summaries in stored:
        kept = [
            (flavor, mid, value)
            for flavor, mid, value in summaries
            if 0 <= mid < nmetrics
            and metrics.by_id(mid).kind is MetricKind.SUMMARY
        ]
        report.values_dropped += len(summaries) - len(kept)
        if kept:
            kept_stored.append((node, kept))
    return kept_stored


def _finish_experiment(
    name: str,
    metrics: MetricTable,
    model: StructureModel,
    cct: CCT,
    stored,
    report: LoadReport,
) -> Experiment:
    """Attribute, overlay summaries, validate; degrade to empty on failure."""
    stored = _drop_unknown_columns(cct, stored, metrics, report)
    attribute(cct)
    binio.apply_summaries(cct, stored)
    exp = Experiment(name, metrics, model, cct)
    try:
        validate_experiment(exp)
    except DatabaseError as exc:  # pragma: no cover - defensive fallback
        report.errors.append(f"validation: {exc}")
        report.nodes_recovered = 1
        empty = CCT()
        attribute(empty)
        exp = Experiment(name, metrics, model, empty)
    return exp


def _salvage_v1(data: bytes, report: LoadReport) -> Experiment:
    """Salvage an unframed v1 stream.

    Without framing, a failure at byte N makes everything after N
    unlocatable, so the pipeline runs stage by stage and the first
    failure ends the recovery; only the final reachable stage can be
    partial.
    """
    reader = _Reader(data, pos=6)
    name = "recovered"
    strings: list[str] = []
    metrics = MetricTable()
    model = StructureModel()
    by_id: list = []
    cct = CCT()
    stored: list = []

    stage = "name"
    try:
        name = reader.read_str()
        stage = "strings"
        strings = binio.read_strings(reader)
        report.strings_recovered = len(strings)
        stage = "metrics"
        metrics = binio.read_metrics(reader, strings)
        report.metrics_recovered = len(metrics)
        stage = "structure"
        stage_errors: list[str] = []
        model, by_id = binio.read_structure(reader, strings,
                                            errors=stage_errors)
        report.structure_nodes_recovered = len(by_id)
        if stage_errors:
            raise DatabaseError(stage_errors[0])
        stage = "cct"
        stage_errors = []
        cct, stored = binio.read_cct(reader, by_id, errors=stage_errors)
        if stage_errors:
            report.errors.extend(stage_errors)
            report.sections_truncated.append("cct")
    except (DatabaseError, *MALFORMED_EXCEPTIONS) as exc:
        report.errors.append(f"{stage}: {exc!r}")
        order = ["name", "strings", "metrics", "structure", "cct"]
        cut = order.index(stage)
        report.sections_truncated.append(stage)
        report.sections_skipped.extend(order[cut + 1:])

    report.strings_recovered = len(strings)
    report.metrics_recovered = len(metrics)
    report.structure_nodes_recovered = len(by_id)
    report.nodes_recovered = len(cct)
    report.bytes_recovered = reader.pos
    return _finish_experiment(name, metrics, model, cct, stored, report)


def _iter_frames_tolerant(data: bytes, report: LoadReport):
    """Yield ``(section id, payload bytes, crc ok, truncated)`` frames.

    Tolerates a truncated tail and (thanks to the length fields) skips
    over sections it cannot identify.  Every step advances the cursor,
    so the walk always terminates.
    """
    pos = 6
    total = len(data)
    while pos < total:
        if pos + _FRAME_HEADER.size > total:
            report.errors.append(
                f"frame header truncated at byte {pos}"
            )
            report.bytes_recovered = max(report.bytes_recovered, pos)
            return
        section_id, length, crc = _FRAME_HEADER.unpack_from(data, pos)
        payload_at = pos + _FRAME_HEADER.size
        avail = total - payload_at
        if section_id == SEC_END and length == 0:
            report.bytes_recovered = max(report.bytes_recovered, payload_at)
            yield SEC_END, b"", True, False
            return
        truncated = length > avail
        end = payload_at + min(length, avail)
        payload = data[payload_at:end]
        crc_ok = (not truncated) and zlib.crc32(payload) == crc
        yield section_id, payload, crc_ok, truncated
        if truncated:
            report.errors.append(
                f"section {SECTION_NAMES.get(section_id, section_id)} "
                f"cut short ({avail} of {length} bytes present)"
            )
            return
        pos = end
    report.errors.append("missing end frame")


def _salvage_v2(data: bytes, report: LoadReport) -> Experiment:
    """Salvage a framed v2 stream section by section."""
    payloads: dict[int, tuple[bytes, bool, bool]] = {}
    for section_id, payload, crc_ok, truncated in _iter_frames_tolerant(
        data, report
    ):
        if section_id == SEC_END:
            break
        if section_id not in SECTION_NAMES or section_id in payloads:
            report.errors.append(f"unidentified section id {section_id}")
            continue
        payloads[section_id] = (payload, crc_ok, truncated)

    recovered_bytes = 6
    name = "recovered"
    strings: list[str] = []
    metrics = MetricTable()
    model = StructureModel()
    by_id: list = []
    cct = CCT()
    stored: list = []
    declared_cct: int | None = None

    for sid in _SECTION_ORDER:
        label = SECTION_NAMES[sid]
        entry = payloads.get(sid)
        if entry is None:
            report.sections_skipped.append(label)
            continue
        payload, crc_ok, truncated = entry
        if not crc_ok and not truncated:
            # a corrupt payload of full length: none of it can be
            # trusted, so skip it and keep walking the frames
            report.errors.append(f"checksum mismatch in {label} section")
            report.sections_skipped.append(label)
            recovered_bytes += _FRAME_HEADER.size  # frame located, body lost
            continue
        reader = _Reader(payload)
        before = len(report.errors)
        if sid == SEC_NAME:
            try:
                name = reader.read_str()
            except (DatabaseError, *MALFORMED_EXCEPTIONS) as exc:
                report.errors.append(f"name: {exc!r}")
        elif sid == SEC_STRINGS:
            strings = _salvage_strings(reader, report)
            report.strings_recovered = len(strings)
        elif sid == SEC_METRICS:
            metrics = _salvage_metrics(reader, strings, report)
            report.metrics_recovered = len(metrics)
        elif sid == SEC_STRUCTURE:
            try:
                (_declared,) = reader.unpack("<I")
            except DatabaseError as exc:
                report.errors.append(f"structure: {exc!r}")
            else:
                stage_errors: list[str] = []
                model, by_id = binio.read_structure(reader, strings,
                                                    errors=stage_errors)
                report.errors.extend(stage_errors)
            report.structure_nodes_recovered = len(by_id)
        elif sid == SEC_CCT:
            try:
                (declared_cct,) = reader.unpack("<I")
            except DatabaseError as exc:
                report.errors.append(f"cct: {exc!r}")
            else:
                stage_errors = []
                cct, stored = binio.read_cct(reader, by_id,
                                             errors=stage_errors)
                report.errors.extend(stage_errors)
        salvaged_fully = len(report.errors) == before and not truncated
        if salvaged_fully:
            recovered_bytes += _FRAME_HEADER.size + len(payload)
        else:
            report.sections_truncated.append(label)
            recovered_bytes += _FRAME_HEADER.size + reader.pos

    report.nodes_declared = declared_cct
    report.nodes_recovered = len(cct)
    report.bytes_recovered = max(report.bytes_recovered, recovered_bytes)
    return _finish_experiment(name, metrics, model, cct, stored, report)

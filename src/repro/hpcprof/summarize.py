"""Statistical summarization of per-rank metrics (Sections IV-A & VII).

For large parallel executions it is not scalable to keep every process's
metric values in memory; HPCToolkit instead summarizes per-scope values
across ranks into a handful of statistics — mean, min, max, standard
deviation — computed scalably from *mergeable partial moments* and
assembled in a final *finalization* step.

:class:`Moments` is the mergeable accumulator (count / mean / M2 in
Welford form plus min/max).  Merging two accumulators is exact,
associative and commutative, which is what makes the reduction tree over
thousands of ranks work; the property-based tests verify all three
claims.

:func:`summarize_ranks` registers four summary metric columns per input
metric on a combined CCT, replacing O(#ranks) storage with O(1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.cct import CCT
from repro.core.errors import MetricError
from repro.core.metrics import MetricKind, MetricTable
from repro.hpcprof.merge import collect_rank_vectors

__all__ = [
    "Moments",
    "SummaryIds",
    "summarize_ranks",
    "partial_summary",
    "reduce_partials",
    "finalize_partials",
    "imbalance_factor",
]


@dataclass
class Moments:
    """Mergeable running statistics over a stream of values."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    # ------------------------------------------------------------------ #
    def add(self, x: float) -> None:
        """Welford online update with one value."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)
        self.minimum = min(self.minimum, x)
        self.maximum = max(self.maximum, x)

    def add_many(self, values: Iterable[float]) -> None:
        for x in values:
            self.add(x)

    def merge(self, other: "Moments") -> "Moments":
        """Exact parallel combination (Chan et al.) — the finalization step."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        n = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / n
        self.mean = (self.count * self.mean + other.count * other.mean) / n
        self.count = n
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    # ------------------------------------------------------------------ #
    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 values)."""
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def total(self) -> float:
        return self.mean * self.count

    @classmethod
    def of(cls, values: Iterable[float]) -> "Moments":
        m = cls()
        m.add_many(values)
        return m

    @classmethod
    def zeros(cls, count: int) -> "Moments":
        """Moments of *count* zero observations (sparse-scope filler)."""
        if count <= 0:
            return cls()
        return cls(count=count, mean=0.0, m2=0.0, minimum=0.0, maximum=0.0)


@dataclass(frozen=True)
class SummaryIds:
    """Metric ids of the four summary columns derived from one metric."""

    mean: int
    minimum: int
    maximum: int
    stddev: int

    def all(self) -> tuple[int, int, int, int]:
        return (self.mean, self.minimum, self.maximum, self.stddev)


def summarize_ranks(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    metrics: MetricTable,
    mid: int,
) -> SummaryIds:
    """Attach mean/min/max/stddev columns for metric *mid* across ranks.

    Statistics are computed over the per-rank *inclusive* values of every
    scope (with 0 for ranks where the scope is absent), written into the
    scopes' inclusive vectors, and likewise for exclusive values.  The
    combined tree must have been produced by merging *rank_ccts*.
    """
    if not rank_ccts:
        raise MetricError("need at least one rank profile to summarize")
    base = metrics.by_id(mid)
    ids = SummaryIds(
        mean=metrics.add(f"{base.name} (mean)", unit=base.unit,
                         kind=MetricKind.SUMMARY, show_percent=False).mid,
        minimum=metrics.add(f"{base.name} (min)", unit=base.unit,
                            kind=MetricKind.SUMMARY, show_percent=False).mid,
        maximum=metrics.add(f"{base.name} (max)", unit=base.unit,
                            kind=MetricKind.SUMMARY, show_percent=False).mid,
        stddev=metrics.add(f"{base.name} (stddev)", unit=base.unit,
                           kind=MetricKind.SUMMARY, show_percent=False).mid,
    )
    nodes = {node.uid: node for node in combined.walk()}
    for flavor in ("inclusive", "exclusive"):
        vectors = collect_rank_vectors(
            combined, rank_ccts, mid, inclusive=(flavor == "inclusive")
        )
        for uid, vec in vectors.items():
            store = getattr(nodes[uid], flavor)
            store[ids.mean] = float(np.mean(vec))
            store[ids.minimum] = float(np.min(vec))
            store[ids.maximum] = float(np.max(vec))
            store[ids.stddev] = float(np.std(vec))
    return ids


# --------------------------------------------------------------------- #
# scalable finalization: partial moments + reduction tree
# --------------------------------------------------------------------- #
#: per-scope partial summary: (#ranks covered, {node uid: Moments})
PartialSummary = tuple[int, dict[int, "Moments"]]


def partial_summary(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    mid: int,
    rank_offset: int = 0,
    inclusive: bool = True,
) -> PartialSummary:
    """Intermediate summary over one *slice* of the ranks.

    In the paper's design, summarization happens scalably: workers
    compute mergeable intermediate values over subsets of ranks, and the
    finalization step assembles them.  A partial records how many ranks
    it covers and per-scope moments over those ranks' values — scopes a
    rank never touched contribute implicit zeros, reconciled at
    finalization via :meth:`Moments.zeros`.
    """
    vectors = collect_rank_vectors(combined, rank_ccts, mid, inclusive=inclusive)
    out: dict[int, Moments] = {}
    nranks = len(rank_ccts)
    for uid, vec in vectors.items():
        out[uid] = Moments.of(vec)  # vec already includes this slice's zeros
    del rank_offset  # kept in the signature for call-site readability
    return (nranks, out)


def reduce_partials(a: PartialSummary, b: PartialSummary) -> PartialSummary:
    """Combine two partial summaries — associative and commutative."""
    count_a, parts_a = a
    count_b, parts_b = b
    merged: dict[int, Moments] = {}
    for uid in set(parts_a) | set(parts_b):
        ma = parts_a.get(uid)
        mb = parts_b.get(uid)
        m = Moments()
        m.merge(ma if ma is not None else Moments.zeros(count_a))
        m.merge(mb if mb is not None else Moments.zeros(count_b))
        merged[uid] = m
    return (count_a + count_b, merged)


def finalize_partials(
    combined: CCT,
    partial: PartialSummary,
    metrics: MetricTable,
    ids: SummaryIds,
    inclusive: bool = True,
) -> None:
    """Write a reduced partial's statistics into the combined tree."""
    nranks, parts = partial
    flavor = "inclusive" if inclusive else "exclusive"
    nodes = {node.uid: node for node in combined.walk()}
    for uid, moments in parts.items():
        filled = Moments()
        filled.merge(moments)
        filled.merge(Moments.zeros(nranks - moments.count))
        store = getattr(nodes[uid], flavor)
        store[ids.mean] = filled.mean
        store[ids.minimum] = filled.minimum
        store[ids.maximum] = filled.maximum
        store[ids.stddev] = filled.stddev


def imbalance_factor(vector: np.ndarray) -> float:
    """Classic load-imbalance factor: max / mean (1.0 = perfectly balanced)."""
    mean = float(np.mean(vector))
    if mean == 0.0:
        return 1.0
    return float(np.max(vector)) / mean

"""Statistical summarization of per-rank metrics (Sections IV-A & VII).

For large parallel executions it is not scalable to keep every process's
metric values in memory; HPCToolkit instead summarizes per-scope values
across ranks into a handful of statistics — mean, min, max, standard
deviation — computed scalably from *mergeable partial moments* and
assembled in a final *finalization* step.

:class:`Moments` is the mergeable accumulator (count / mean / M2 in
Welford form plus min/max).  Merging two accumulators is exact,
associative and commutative, which is what makes the reduction tree over
thousands of ranks work; the property-based tests verify all three
claims.

:func:`summarize_ranks` registers four summary metric columns per input
metric on a combined CCT, replacing O(#ranks) storage with O(1).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.cct import CCT
from repro.errors import MetricError
from repro.core.metrics import MetricKind, MetricTable
from repro.hpcprof.merge import collect_rank_matrix, collect_rank_vectors

__all__ = [
    "Moments",
    "SummaryIds",
    "summarize_ranks",
    "summarize_ranks_exact",
    "register_summary_ids",
    "apply_summary_stats",
    "rank_moments",
    "partial_summary",
    "reduce_partials",
    "finalize_partials",
    "imbalance_factor",
]

#: ranks per worker chunk in the parallel reduction (chosen so 64 ranks
#: split into a 4-leaf tree; the merge is exact, so the value only
#: affects scheduling granularity, never results)
CHUNK_RANKS = 16


@dataclass
class Moments:
    """Mergeable running statistics over a stream of values."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    # ------------------------------------------------------------------ #
    def add(self, x: float) -> None:
        """Welford online update with one value."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)
        self.minimum = min(self.minimum, x)
        self.maximum = max(self.maximum, x)

    def add_many(self, values: Iterable[float]) -> None:
        for x in values:
            self.add(x)

    def merge(self, other: "Moments") -> "Moments":
        """Exact parallel combination (Chan et al.) — the finalization step."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        n = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / n
        self.mean = (self.count * self.mean + other.count * other.mean) / n
        self.count = n
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    # ------------------------------------------------------------------ #
    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 values)."""
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def total(self) -> float:
        return self.mean * self.count

    @classmethod
    def of(cls, values: Iterable[float]) -> "Moments":
        m = cls()
        m.add_many(values)
        return m

    @classmethod
    def zeros(cls, count: int) -> "Moments":
        """Moments of *count* zero observations (sparse-scope filler)."""
        if count <= 0:
            return cls()
        return cls(count=count, mean=0.0, m2=0.0, minimum=0.0, maximum=0.0)


@dataclass(frozen=True)
class SummaryIds:
    """Metric ids of the four summary columns derived from one metric."""

    mean: int
    minimum: int
    maximum: int
    stddev: int

    def all(self) -> tuple[int, int, int, int]:
        return (self.mean, self.minimum, self.maximum, self.stddev)


def summarize_ranks(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    metrics: MetricTable,
    mid: int,
    max_workers: int | None = None,
) -> SummaryIds:
    """Attach mean/min/max/stddev columns for metric *mid* across ranks.

    Statistics are computed over the per-rank *inclusive* values of every
    scope (with 0 for ranks where the scope is absent), written into the
    scopes' inclusive vectors, and likewise for exclusive values.  The
    combined tree must have been produced by merging *rank_ccts*.

    The per-rank values are collected as one columnar ``(scopes x ranks)``
    matrix per flavour (:func:`~repro.hpcprof.merge.collect_rank_matrix`)
    and reduced with vectorized axis kernels.  With ``max_workers > 1``
    the reduction instead runs through :func:`rank_moments`' process-pool
    reduction tree over rank chunks — the moments merge is exact, and the
    chunk boundaries and merge-tree shape are fixed, so the parallel
    result is bit-identical to the serial one (a property the tests
    assert for 64 ranks).
    """
    if not rank_ccts:
        raise MetricError("need at least one rank profile to summarize")
    ids = register_summary_ids(metrics, mid)
    for flavor in ("inclusive", "exclusive"):
        nodes, matrix = collect_rank_matrix(
            combined, rank_ccts, mid, inclusive=(flavor == "inclusive")
        )
        if not nodes:
            continue
        if max_workers is not None:
            count, mean, m2, minimum, maximum = rank_moments(
                matrix, max_workers=max_workers
            )
            variance = m2 / count if count > 1 else np.zeros(len(nodes))
            stddev = np.sqrt(np.maximum(variance, 0.0))
        else:
            mean = matrix.mean(axis=1)
            minimum = matrix.min(axis=1)
            maximum = matrix.max(axis=1)
            stddev = matrix.std(axis=1)
        columns = (
            (ids.mean, mean.tolist()),
            (ids.minimum, minimum.tolist()),
            (ids.maximum, maximum.tolist()),
            (ids.stddev, stddev.tolist()),
        )
        for row, node in enumerate(nodes):
            store = getattr(node, flavor)
            for summary_mid, values in columns:
                store[summary_mid] = values[row]
    combined.invalidate_caches()  # node values changed under any projection
    return ids


def register_summary_ids(metrics: MetricTable, mid: int) -> SummaryIds:
    """Register the four summary descriptors for one base metric.

    Shared by every summarization path — the eager one above, the exact
    in-memory reference, the out-of-core merge, and the store's
    on-demand summaries — so the descriptor names, order, and resulting
    ids are identical no matter which path ran.
    """
    base = metrics.by_id(mid)
    return SummaryIds(
        mean=metrics.add(f"{base.name} (mean)", unit=base.unit,
                         kind=MetricKind.SUMMARY, show_percent=False).mid,
        minimum=metrics.add(f"{base.name} (min)", unit=base.unit,
                            kind=MetricKind.SUMMARY, show_percent=False).mid,
        maximum=metrics.add(f"{base.name} (max)", unit=base.unit,
                            kind=MetricKind.SUMMARY, show_percent=False).mid,
        stddev=metrics.add(f"{base.name} (stddev)", unit=base.unit,
                           kind=MetricKind.SUMMARY, show_percent=False).mid,
    )


def apply_summary_stats(nodes, flavor: str, ids: SummaryIds,
                        stats: "_RowStats", mask) -> None:
    """Write one flavor's ``(count, mean, m2, min, max)`` into the tree.

    ``nodes`` is the combined tree in preorder; ``mask`` selects the
    scopes with a nonzero value in at least one rank (the same sparse
    semantics as :func:`~repro.hpcprof.merge.collect_rank_matrix` — a
    scope no rank ever touched gets no summary entries).
    """
    count, mean, m2, minimum, maximum = stats
    if count > 1:
        variance = m2 / count
    else:
        variance = np.zeros_like(mean)
    stddev = np.sqrt(np.maximum(variance, 0.0))
    for row in np.flatnonzero(mask):
        store = getattr(nodes[row], flavor)
        store[ids.mean] = float(mean[row])
        store[ids.minimum] = float(minimum[row])
        store[ids.maximum] = float(maximum[row])
        store[ids.stddev] = float(stddev[row])


def summarize_ranks_exact(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    metrics: MetricTable,
    mid: int,
) -> SummaryIds:
    """Summary columns by the *sequential* Welford recurrence.

    Same columns as :func:`summarize_ranks`, but computed by feeding the
    rank values through one Welford accumulator in rank order (a single
    :func:`_welford_chunk` over all ranks) instead of numpy's pairwise
    ``mean``/``std``.  This is the bit-exactness contract shared with
    the out-of-core merge, which replays the identical update sequence
    one rank at a time — so an in-memory merge summarized through this
    function and a bounded-memory merge of the same rank files produce
    byte-identical databases.
    """
    if not rank_ccts:
        raise MetricError("need at least one rank profile to summarize")
    ids = register_summary_ids(metrics, mid)
    all_nodes = list(combined.walk())
    rows = {node.uid: row for row, node in enumerate(all_nodes)}
    for flavor in ("inclusive", "exclusive"):
        kept, matrix = collect_rank_matrix(
            combined, rank_ccts, mid, inclusive=(flavor == "inclusive")
        )
        if not kept:
            continue
        stats = _welford_chunk(matrix)
        mask = np.zeros(len(all_nodes), dtype=bool)
        mask[[rows[node.uid] for node in kept]] = True
        # scatter the kept-row stats back to dense rows for the writer
        dense = tuple(
            _scatter(vec, [rows[n.uid] for n in kept], len(all_nodes))
            for vec in stats[1:]
        )
        apply_summary_stats(
            all_nodes, flavor, ids, (stats[0], *dense), mask
        )
    combined.invalidate_caches()
    return ids


def _scatter(values: np.ndarray, rows, n: int) -> np.ndarray:
    out = np.zeros(n)
    out[rows] = values
    return out


# --------------------------------------------------------------------- #
# chunked Welford + process-pool reduction tree
# --------------------------------------------------------------------- #
#: per-row statistics of one rank chunk: (count, mean, m2, min, max);
#: count is a plain int, the rest are per-row vectors
_RowStats = tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _welford_chunk(matrix: np.ndarray) -> _RowStats:
    """Per-row Welford moments over one chunk of rank columns.

    Module-level (hence picklable) worker for the process pool.  The
    column loop performs, element-wise per row, exactly the update
    sequence of :meth:`Moments.add`, so each row's result is bit-identical
    to feeding that row's values through a scalar accumulator in order.
    """
    n, m = matrix.shape
    mean = np.zeros(n)
    m2 = np.zeros(n)
    minimum = np.full(n, math.inf)
    maximum = np.full(n, -math.inf)
    for j in range(m):
        x = matrix[:, j]
        delta = x - mean
        mean = mean + delta / (j + 1)
        m2 = m2 + delta * (x - mean)
        minimum = np.minimum(minimum, x)
        maximum = np.maximum(maximum, x)
    return (m, mean, m2, minimum, maximum)


def _merge_stats(a: _RowStats, b: _RowStats) -> _RowStats:
    """Vectorized :meth:`Moments.merge` — same formulas, same FP order."""
    count_a, mean_a, m2_a, min_a, max_a = a
    count_b, mean_b, m2_b, min_b, max_b = b
    if count_b == 0:
        return a
    if count_a == 0:
        return b
    n = count_a + count_b
    delta = mean_b - mean_a
    m2 = m2_a + m2_b + delta * delta * count_a * count_b / n
    mean = (count_a * mean_a + count_b * mean_b) / n
    return (n, mean, m2, np.minimum(min_a, min_b), np.maximum(max_a, max_b))


def _reduce_tree(stats: list[_RowStats]) -> _RowStats:
    """Pairwise reduction in fixed order — the finalization step's shape.

    The tree's shape depends only on the chunk count, never on worker
    scheduling, so parallel and serial runs reduce identically.
    """
    while len(stats) > 1:
        merged = [
            _merge_stats(stats[i], stats[i + 1])
            for i in range(0, len(stats) - 1, 2)
        ]
        if len(stats) % 2:
            merged.append(stats[-1])
        stats = merged
    return stats[0]


def rank_moments(
    matrix: np.ndarray,
    max_workers: int | None = None,
    chunk_ranks: int = CHUNK_RANKS,
) -> _RowStats:
    """Per-row moments of a ``(scopes x ranks)`` matrix, chunked by rank.

    Rank columns are split into fixed chunks; each chunk's per-row Welford
    partials are computed by :func:`_welford_chunk` — in a
    ``concurrent.futures`` process pool when ``max_workers > 1``, inline
    otherwise — and combined through the fixed pairwise merge tree.  Since
    chunking and tree shape are independent of the execution mode, the
    returned ``(count, mean, m2, min, max)`` is bit-identical for any
    worker count.
    """
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise MetricError("rank_moments needs a (scopes x ranks) matrix")
    nranks = matrix.shape[1]
    chunks = [
        matrix[:, lo : lo + chunk_ranks] for lo in range(0, nranks, chunk_ranks)
    ]
    if max_workers is not None and max_workers > 1 and len(chunks) > 1:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            stats = list(pool.map(_welford_chunk, chunks))
    else:
        stats = [_welford_chunk(chunk) for chunk in chunks]
    return _reduce_tree(stats)


# --------------------------------------------------------------------- #
# scalable finalization: partial moments + reduction tree
# --------------------------------------------------------------------- #
#: per-scope partial summary: (#ranks covered, {node uid: Moments})
PartialSummary = tuple[int, dict[int, "Moments"]]


def partial_summary(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    mid: int,
    rank_offset: int = 0,
    inclusive: bool = True,
) -> PartialSummary:
    """Intermediate summary over one *slice* of the ranks.

    In the paper's design, summarization happens scalably: workers
    compute mergeable intermediate values over subsets of ranks, and the
    finalization step assembles them.  A partial records how many ranks
    it covers and per-scope moments over those ranks' values — scopes a
    rank never touched contribute implicit zeros, reconciled at
    finalization via :meth:`Moments.zeros`.
    """
    vectors = collect_rank_vectors(combined, rank_ccts, mid, inclusive=inclusive)
    out: dict[int, Moments] = {}
    nranks = len(rank_ccts)
    for uid, vec in vectors.items():
        out[uid] = Moments.of(vec)  # vec already includes this slice's zeros
    del rank_offset  # kept in the signature for call-site readability
    return (nranks, out)


def reduce_partials(a: PartialSummary, b: PartialSummary) -> PartialSummary:
    """Combine two partial summaries — associative and commutative."""
    count_a, parts_a = a
    count_b, parts_b = b
    merged: dict[int, Moments] = {}
    for uid in set(parts_a) | set(parts_b):
        ma = parts_a.get(uid)
        mb = parts_b.get(uid)
        m = Moments()
        m.merge(ma if ma is not None else Moments.zeros(count_a))
        m.merge(mb if mb is not None else Moments.zeros(count_b))
        merged[uid] = m
    return (count_a + count_b, merged)


def finalize_partials(
    combined: CCT,
    partial: PartialSummary,
    metrics: MetricTable,
    ids: SummaryIds,
    inclusive: bool = True,
) -> None:
    """Write a reduced partial's statistics into the combined tree."""
    nranks, parts = partial
    flavor = "inclusive" if inclusive else "exclusive"
    nodes = {node.uid: node for node in combined.walk()}
    for uid, moments in parts.items():
        filled = Moments()
        filled.merge(moments)
        filled.merge(Moments.zeros(nranks - moments.count))
        store = getattr(nodes[uid], flavor)
        store[ids.mean] = filled.mean
        store[ids.minimum] = filled.minimum
        store[ids.maximum] = filled.maximum
        store[ids.stddev] = filled.stddev


def imbalance_factor(vector: np.ndarray) -> float:
    """Classic load-imbalance factor: max / mean (1.0 = perfectly balanced)."""
    mean = float(np.mean(vector))
    if mean == 0.0:
        return 1.0
    return float(np.max(vector)) / mean

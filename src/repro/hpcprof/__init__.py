"""Post-mortem analysis: correlation, merging, summarization, databases."""

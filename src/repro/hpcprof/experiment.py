"""The experiment database object — what ``hpcviewer`` opens.

An :class:`Experiment` bundles the metric table, the static structure
model, the canonical CCT, and (for parallel runs) the per-rank CCTs, and
offers the high-level operations of the paper:

* construct any of the three views;
* define derived metrics by formula;
* run hot path analysis;
* summarize per-rank metrics.

This is the primary entry point of the library's public API::

    from repro import Experiment
    exp = Experiment.from_program(my_synthetic_program)
    view = exp.calling_context_view()
    result = exp.hot_path("cycles")
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.attribution import attribute
from repro.core.callers import CallersView
from repro.core.cct import CCT, CCTNode
from repro.core.ccview import CallingContextView
from repro.core.derived import define_derived
from repro.errors import MetricError, ViewError
from repro.core.flat import FlatView
from repro.core.hotpath import DEFAULT_THRESHOLD, HotPathResult, hot_path
from repro.core.metrics import MetricDescriptor, MetricFlavor, MetricSpec, MetricTable
from repro.core.views import View, ViewNode
from repro.hpcprof.correlate import Correlator
from repro.hpcprof.merge import collect_rank_vectors, merge_ccts
from repro.hpcprof.summarize import SummaryIds, summarize_ranks
from repro.hpcrun.profile_data import ProfileData
from repro.hpcstruct.model import StructureModel

__all__ = ["Experiment"]


class Experiment:
    """One measured (or simulated) execution, ready for presentation."""

    def __init__(
        self,
        name: str,
        metrics: MetricTable,
        structure: StructureModel,
        cct: CCT,
        rank_ccts: Sequence[CCT] | None = None,
    ) -> None:
        self.name = name
        self.metrics = metrics
        self.structure = structure
        self.cct = cct
        #: per-rank trees, retained for parallel runs (None for serial)
        self.rank_ccts: list[CCT] | None = list(rank_ccts) if rank_ccts else None
        self._summaries: dict[int, SummaryIds] = {}

    @property
    def engine(self):
        """The columnar :class:`~repro.core.engine.MetricEngine` over the
        combined CCT, rebuilt transparently after mutation or metric-table
        growth; ``None`` for metric-less experiments.  Views built by this
        experiment carry it so totals, sorting, and hot-path descent read
        from the matrices instead of per-node dicts."""
        from repro.core.engine import engine_for

        return engine_for(self.cct, len(self.metrics))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_profile(
        cls,
        profile: ProfileData,
        structure: StructureModel,
        name: str = "",
    ) -> "Experiment":
        """Correlate one profile into an experiment (serial run)."""
        correlator = Correlator(structure)
        correlator.add_profile(profile)
        attribute(correlator.cct)
        return cls(
            name or profile.program or "experiment",
            profile.metrics,
            structure,
            correlator.cct,
        )

    @classmethod
    def from_profiles(
        cls,
        profiles: Sequence[ProfileData],
        structure: StructureModel,
        name: str = "",
    ) -> "Experiment":
        """Correlate per-rank profiles and merge them (parallel run).

        Each rank gets its own CCT (retained for per-rank analyses such as
        load-imbalance charts); the experiment's main tree is their union.
        """
        if not profiles:
            raise MetricError("need at least one profile")
        rank_ccts: list[CCT] = []
        for profile in profiles:
            correlator = Correlator(structure)
            correlator.add_profile(profile)
            attribute(correlator.cct)
            rank_ccts.append(correlator.cct)
        combined = merge_ccts(rank_ccts)
        return cls(
            name or profiles[0].program or "experiment",
            profiles[0].metrics,
            structure,
            combined,
            rank_ccts=rank_ccts,
        )

    @classmethod
    def from_sampler(
        cls,
        sampler,
        structure: StructureModel,
        name: str = "",
    ) -> "Experiment":
        """Build an experiment from a finished :class:`SamplingProfiler`.

        In all-threads mode each thread's profile becomes one correlated
        tree (retained like MPI ranks, so per-thread analyses work);
        otherwise this is :meth:`from_profile` on the single profile.
        """
        if getattr(sampler, "all_threads", False) and sampler.thread_profiles:
            profiles = [
                sampler.thread_profiles[tid]
                for tid in sorted(sampler.thread_profiles)
            ]
            if len(profiles) == 1:
                return cls.from_profile(profiles[0], structure, name)
            return cls.from_profiles(profiles, structure, name or "sampled")
        return cls.from_profile(sampler.profile, structure, name)

    @classmethod
    def from_program(
        cls,
        program,
        nranks: int = 1,
        params: dict | None = None,
        seed: int = 12345,
        name: str = "",
    ) -> "Experiment":
        """Simulate a synthetic program (optionally SPMD) and present it."""
        from repro.hpcstruct.synthstruct import build_structure
        from repro.sim.executor import execute

        structure = build_structure(program)
        profiles = [
            execute(program, rank=rank, nranks=nranks, params=params, seed=seed)
            for rank in range(nranks)
        ]
        if nranks == 1:
            return cls.from_profile(profiles[0], structure, name or program.name)
        return cls.from_profiles(profiles, structure, name or program.name)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def calling_context_view(self, fused: bool = True) -> CallingContextView:
        return CallingContextView(
            self.cct, self.metrics, fused=fused, engine=self.engine
        )

    def callers_view(self, eager: bool = False) -> CallersView:
        return CallersView(self.cct, self.metrics, eager=eager, engine=self.engine)

    def flat_view(self, fused: bool = True, show_load_modules: bool = False) -> FlatView:
        return FlatView(
            self.cct,
            self.metrics,
            fused=fused,
            show_load_modules=show_load_modules,
            engine=self.engine,
        )

    def views(self) -> tuple[CallingContextView, CallersView, FlatView]:
        """All three complementary views (Section III)."""
        return (self.calling_context_view(), self.callers_view(), self.flat_view())

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def metric_id(self, name: str) -> int:
        return self.metrics.by_name(name).mid

    def spec(
        self, name: str, flavor: MetricFlavor = MetricFlavor.INCLUSIVE
    ) -> MetricSpec:
        return MetricSpec(self.metric_id(name), flavor)

    def add_derived_metric(
        self, name: str, formula: str, unit: str = "", description: str = ""
    ) -> MetricDescriptor:
        """Define a spreadsheet-like derived metric (Section V-D)."""
        return define_derived(
            self.metrics, name, formula, unit=unit, description=description
        )

    def total(self, name: str) -> float:
        """Experiment-aggregate inclusive total of a metric."""
        return self.cct.root.inclusive.get(self.metric_id(name), 0.0)

    # ------------------------------------------------------------------ #
    # analyses
    # ------------------------------------------------------------------ #
    def hot_path(
        self,
        metric: str,
        view: View | None = None,
        start: ViewNode | None = None,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> HotPathResult:
        """Hot path analysis (Section V-C) on a view (default: CC view)."""
        view = view or self.calling_context_view()
        return hot_path(view, self.spec(metric), start=start, threshold=threshold)

    def summarize(self, metric: str, max_workers: int | None = None) -> SummaryIds:
        """Attach mean/min/max/stddev columns over ranks (Section VII).

        ``max_workers > 1`` reduces the per-rank moments through a process
        pool (see :func:`repro.hpcprof.summarize.rank_moments`); the
        result is bit-identical to the serial reduction.
        """
        if not self.rank_ccts:
            raise ViewError("summarize() requires a parallel experiment")
        mid = self.metric_id(metric)
        ids = self._summaries.get(mid)
        if ids is None:
            ids = summarize_ranks(
                self.cct, self.rank_ccts, self.metrics, mid, max_workers=max_workers
            )
            self._summaries[mid] = ids
        return ids

    def rank_vector(self, node_or_uid, metric: str) -> np.ndarray:
        """Per-rank inclusive values of a scope (Figure 7's input data)."""
        if not self.rank_ccts:
            raise ViewError("rank_vector() requires a parallel experiment")
        mid = self.metric_id(metric)
        uid = node_or_uid if isinstance(node_or_uid, int) else None
        if uid is None:
            node = node_or_uid
            if isinstance(node, ViewNode):
                cct_nodes = [n for n in node.cct_nodes if isinstance(n, CCTNode)]
                if not cct_nodes:
                    raise ViewError(f"row {node.name!r} maps to no CCT scope")
                uids = {n.uid for n in cct_nodes}
            else:
                uids = {node.uid}
        else:
            uids = {uid}
        vectors = collect_rank_vectors(self.cct, self.rank_ccts, mid)
        out = np.zeros(len(self.rank_ccts))
        for u in uids:
            if u in vectors:
                out += vectors[u]
        return out

    @property
    def nranks(self) -> int:
        return len(self.rank_ccts) if self.rank_ccts else 1

    def rank_experiment(self, rank: int) -> "Experiment":
        """A single rank's tree as its own experiment (drill into one
        process after the merged view localized the imbalance)."""
        if not self.rank_ccts:
            raise ViewError("rank_experiment() requires a parallel experiment")
        if not (0 <= rank < len(self.rank_ccts)):
            raise ViewError(
                f"rank {rank} out of range [0, {len(self.rank_ccts)})"
            )
        return Experiment(
            f"{self.name} [rank {rank}]",
            self.metrics,
            self.structure,
            self.rank_ccts[rank],
        )

    def describe(self) -> str:
        """A one-screen summary: scope counts, metrics, totals, top scopes."""
        from repro.core.cct import CCTKind
        from repro.viewer.format import format_value

        kind_counts: dict[str, int] = {}
        for node in self.cct.walk():
            kind_counts[node.kind.value] = kind_counts.get(node.kind.value, 0) + 1
        lines = [
            f"experiment {self.name!r}: {len(self.cct)} scopes, "
            f"{self.nranks} rank(s)",
            "  scopes: " + ", ".join(
                f"{k}={v}" for k, v in sorted(kind_counts.items())
            ),
            "  metrics:",
        ]
        for desc in self.metrics:
            total = self.cct.root.inclusive.get(desc.mid, 0.0)
            total_text = format_value(total) or "0"
            lines.append(
                f"    [{desc.mid}] {desc.name} ({desc.kind.value}): "
                f"total {total_text} {desc.unit}".rstrip()
            )
        by_proc = self.cct.frames_by_procedure()
        if by_proc and len(self.metrics):
            from repro.core.attribution import exposed_sum

            mid = 0
            top = sorted(
                ((proc.name, exposed_sum(frames).get(mid, 0.0))
                 for proc, frames in by_proc.items()),
                key=lambda item: -item[1],
            )[:5]
            lines.append(f"  top procedures by {self.metrics.by_id(mid).name}:")
            total = self.cct.root.inclusive.get(mid, 0.0) or 1.0
            for name, value in top:
                lines.append(
                    f"    {name:<40} {format_value(value):>10} "
                    f"({100 * value / total:.1f}%)"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Experiment {self.name!r}: {len(self.cct)} scopes, "
            f"{len(self.metrics)} metrics, {self.nranks} rank(s)>"
        )

"""Experiment database I/O with format dispatch.

``save`` / ``load`` pick the serializer from the file extension:
``.xml`` for the human-readable XML schema, ``.rpdb`` (or anything else)
for the compact binary format (framed v2 by default; see
:mod:`repro.hpcprof.binio`).

``load`` / ``loads`` take a ``strict`` flag (default ``True``).  Strict
loads convert every malformed-input failure — including files that
vanish between a check and the open — to :class:`DatabaseError`.
``strict=False`` switches to salvage mode
(:mod:`repro.hpcprof.recovery`): the largest validated prefix of a
corrupted or truncated binary database is recovered and returned as an
:class:`Experiment` tagged with a :class:`~repro.hpcprof.recovery.LoadReport`
(``experiment.load_report``) instead of raising.  Salvage applies to the
binary format only; XML databases always parse strictly.
"""

from __future__ import annotations

import os

from repro.errors import DatabaseError
from repro.hpcprof import binio, xmlio
from repro.hpcprof.experiment import Experiment

__all__ = ["save", "load", "loads", "XML_EXTENSION", "BINARY_EXTENSION"]

XML_EXTENSION = ".xml"
BINARY_EXTENSION = ".rpdb"


def save(experiment: Experiment, path: str) -> int:
    """Serialize *experiment* to *path*; returns the byte size written."""
    ext = os.path.splitext(path)[1].lower()
    if ext == XML_EXTENSION:
        data = xmlio.dumps_xml(experiment)
    else:
        data = binio.dumps_binary(experiment)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def loads(data: bytes, origin: str = "<bytes>", strict: bool = True) -> Experiment:
    """Deserialize an experiment, sniffing the format from the content.

    *origin* only labels error messages (a path, a URL, a session id);
    the analysis server loads uploaded/streamed databases through this
    without touching the filesystem.  ``strict=False`` salvages what a
    corrupted/truncated binary database still holds (see module doc).
    """
    if data[:4] == b"RPDB":
        if strict:
            return binio.loads_binary(data)
        from repro.hpcprof import recovery

        return recovery.salvage_loads(data, origin=origin)
    if data.lstrip()[:1] == b"<":
        return xmlio.loads_xml(data)
    raise DatabaseError(f"{origin}: unrecognized database format")


def load(path: str, strict: bool = True) -> Experiment:
    """Deserialize an experiment from a file, sniffing the format.

    The open/read is what gets checked — not a racy ``os.path.exists``
    probe — so a path deleted (or swapped for a directory, or made
    unreadable) between any check and the open still surfaces as
    :class:`DatabaseError` naming the path, never a raw ``OSError``
    traceback through a caller such as the analysis server.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        raise DatabaseError(f"no such database: {path}") from None
    except IsADirectoryError:
        raise DatabaseError(f"database path is a directory: {path}") from None
    except PermissionError:
        raise DatabaseError(f"database is not readable: {path}") from None
    except OSError as exc:
        raise DatabaseError(f"cannot read database {path}: {exc}") from None
    return loads(data, origin=path, strict=strict)

"""Experiment database I/O with format dispatch.

``save`` / ``load`` pick the serializer from the file extension:
``.xml`` for the human-readable XML schema, ``.rpdb`` (or anything else)
for the compact binary format (framed v2 by default; see
:mod:`repro.hpcprof.binio`).

``load`` / ``loads`` take a ``strict`` flag (default ``True``).  Strict
loads convert every malformed-input failure — including files that
vanish between a check and the open — to :class:`DatabaseError`.
``strict=False`` switches to salvage mode
(:mod:`repro.hpcprof.recovery`): the largest validated prefix of a
corrupted or truncated binary database is recovered and returned as an
:class:`Experiment` tagged with a :class:`~repro.hpcprof.recovery.LoadReport`
(``experiment.load_report``) instead of raising.  Salvage applies to the
binary format only; XML databases always parse strictly.
"""

from __future__ import annotations

import os

from repro.errors import DatabaseError
from repro.hpcprof import binio, xmlio
from repro.hpcprof.experiment import Experiment

__all__ = ["save", "load", "loads", "XML_EXTENSION", "BINARY_EXTENSION",
           "STORE_EXTENSION"]

XML_EXTENSION = ".xml"
BINARY_EXTENSION = ".rpdb"
STORE_EXTENSION = ".rpstore"


def save(experiment: Experiment, path: str) -> int:
    """Serialize *experiment* to *path*; returns the byte size written.

    A ``.rpstore`` path builds an out-of-core column store directory
    (:func:`repro.core.store.create_store`) instead of a single file.
    """
    ext = os.path.splitext(path)[1].lower()
    if ext == STORE_EXTENSION:
        from repro.core.store import create_store

        store_exp = create_store(experiment, path, overwrite=True)
        size = store_exp.store.size_bytes()
        store_exp.close()
        return size
    if ext == XML_EXTENSION:
        data = xmlio.dumps_xml(experiment)
    else:
        data = binio.dumps_binary(experiment)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def loads(data: bytes, origin: str = "<bytes>", strict: bool = True) -> Experiment:
    """Deserialize an experiment, sniffing the format from the content.

    *origin* only labels error messages (a path, a URL, a session id);
    the analysis server loads uploaded/streamed databases through this
    without touching the filesystem.  ``strict=False`` salvages what a
    corrupted/truncated binary database still holds (see module doc).
    """
    if data[:4] == b"RPDB":
        if strict:
            return binio.loads_binary(data)
        from repro.hpcprof import recovery

        return recovery.salvage_loads(data, origin=origin)
    if data.lstrip()[:1] == b"<":
        return xmlio.loads_xml(data)
    raise DatabaseError(f"{origin}: unrecognized database format")


def load(path: str, strict: bool = True, out_of_core: bool = False) -> Experiment:
    """Deserialize an experiment from a file, sniffing the format.

    The open/read is what gets checked — not a racy ``os.path.exists``
    probe — so a path deleted (or swapped for a directory, or made
    unreadable) between any check and the open still surfaces as
    :class:`DatabaseError` naming the path, never a raw ``OSError``
    traceback through a caller such as the analysis server.

    A *directory* path is dispatched to the out-of-core column store
    (:mod:`repro.core.store`): ``load("merged.rpstore")`` returns a
    :class:`~repro.core.store.StoreExperiment` whose engine matrices
    and rank data stay memory-mapped.  ``out_of_core=True`` additionally
    routes strict binary *file* loads through the mmap streaming reader
    (:func:`repro.hpcprof.binio.read_binary_streaming`) so the raw bytes
    are never fully resident either; the decoded experiment is
    identical to the eager path.
    """
    if os.path.isdir(path):
        from repro.core.store import is_store_path, open_store

        if is_store_path(path):
            return open_store(path)
        raise DatabaseError(f"database path is a directory: {path}")
    if out_of_core and strict:
        try:
            with open(path, "rb") as fh:
                magic = fh.read(4)
        except OSError:
            magic = b""  # fall through: the eager path raises canonically
        if magic == b"RPDB":
            return binio.read_binary_streaming(path)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        raise DatabaseError(f"no such database: {path}") from None
    except IsADirectoryError:
        raise DatabaseError(f"database path is a directory: {path}") from None
    except PermissionError:
        raise DatabaseError(f"database is not readable: {path}") from None
    except OSError as exc:
        raise DatabaseError(f"cannot read database {path}: {exc}") from None
    return loads(data, origin=path, strict=strict)

"""Experiment database I/O with format dispatch.

``save`` / ``load`` pick the serializer from the file extension:
``.xml`` for the human-readable XML schema, ``.rpdb`` (or anything else)
for the compact binary format.
"""

from __future__ import annotations

import os

from repro.core.errors import DatabaseError
from repro.hpcprof import binio, xmlio
from repro.hpcprof.experiment import Experiment

__all__ = ["save", "load", "loads", "XML_EXTENSION", "BINARY_EXTENSION"]

XML_EXTENSION = ".xml"
BINARY_EXTENSION = ".rpdb"


def save(experiment: Experiment, path: str) -> int:
    """Serialize *experiment* to *path*; returns the byte size written."""
    ext = os.path.splitext(path)[1].lower()
    if ext == XML_EXTENSION:
        data = xmlio.dumps_xml(experiment)
    else:
        data = binio.dumps_binary(experiment)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def loads(data: bytes, origin: str = "<bytes>") -> Experiment:
    """Deserialize an experiment, sniffing the format from the content.

    *origin* only labels error messages (a path, a URL, a session id);
    the analysis server loads uploaded/streamed databases through this
    without touching the filesystem.
    """
    if data[:4] == b"RPDB":
        return binio.loads_binary(data)
    if data.lstrip()[:1] == b"<":
        return xmlio.loads_xml(data)
    raise DatabaseError(f"{origin}: unrecognized database format")


def load(path: str) -> Experiment:
    """Deserialize an experiment from a file, sniffing the format."""
    if not os.path.exists(path):
        raise DatabaseError(f"no such database: {path}")
    with open(path, "rb") as fh:
        data = fh.read()
    return loads(data, origin=path)

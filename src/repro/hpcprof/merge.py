"""Merging canonical CCTs across threads, ranks and experiments.

Per-rank profiles are correlated into per-rank CCTs (sharing one static
structure model); this module unions them into a single canonical CCT —
scope identity is the path of node keys — and supports two cross-
experiment analyses from the paper:

* :func:`collect_rank_vectors` — per-node vectors of one metric across all
  ranks, the raw material for load-imbalance presentation (Figure 7) and
  for statistical summarization (:mod:`repro.hpcprof.summarize`);
* :func:`scale_and_difference` — the derived scaling-loss metric of
  Section VI-A: scale the profile of a small run and subtract it from a
  large run, attributing scaling loss to individual contexts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTNode
from repro.errors import MetricError
from repro.core.metrics import MetricTable, add_into

__all__ = [
    "merge_ccts",
    "collect_rank_matrix",
    "collect_rank_vectors",
    "scale_and_difference",
]


def _graft(dst: CCTNode, src: CCTNode) -> None:
    """Union *src*'s subtree into *dst*, summing raw costs.

    Iterative (explicit stack), so chains deeper than the interpreter
    recursion limit graft correctly.
    """
    stack = [(dst, src)]
    while stack:
        dnode, snode = stack.pop()
        add_into(dnode.raw, snode.raw)
        for child in snode.children:
            mine = dnode._child_index.get(child.key)
            if mine is None:
                mine = CCTNode(
                    child.kind, struct=child.struct, line=child.line, parent=dnode
                )
            stack.append((mine, child))


def merge_ccts(ccts: Sequence[CCT], attribute_result: bool = True) -> CCT:
    """Union CCTs (sharing one structure model) into a new tree.

    Raw costs sum; the result is re-attributed unless disabled.  Merging
    is associative and commutative up to child order — a property the
    test suite checks — because scope identity is structural.
    """
    out = CCT()
    for cct in ccts:
        _graft(out.root, cct.root)
    if attribute_result:
        attribute(out)
    return out


def _walk_aligned(combined: CCTNode, rank_root: CCTNode, rank: int, sink) -> None:
    """Visit nodes of one rank tree aligned to the combined tree by key.

    Iterative, for the same deep-chain reason as :func:`_graft`.
    """
    stack = [(combined, rank_root)]
    while stack:
        cnode, rnode = stack.pop()
        sink(cnode, rnode, rank)
        for child in rnode.children:
            mine = cnode._child_index.get(child.key)
            if mine is not None:
                stack.append((mine, child))


def collect_rank_matrix(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    mid: int,
    inclusive: bool = True,
) -> tuple[list[CCTNode], np.ndarray]:
    """Columnar per-rank values of one metric: ``(nodes, matrix)``.

    ``matrix`` is ``(len(nodes), nranks)`` float64 with one row per
    combined-tree scope that is nonzero in at least one rank (row *i*
    belongs to ``nodes[i]``); ranks in which a scope never appeared
    contribute 0 (sparse semantics).  This is the raw material for
    load-imbalance presentation (Figure 7) and for the vectorized
    statistical summarization in :mod:`repro.hpcprof.summarize`.
    """
    nranks = len(rank_ccts)
    nodes = list(combined.walk())
    index = {node.uid: row for row, node in enumerate(nodes)}
    matrix = np.zeros((len(nodes), nranks))

    def sink(cnode: CCTNode, rnode: CCTNode, rank: int) -> None:
        values = rnode.inclusive if inclusive else rnode.exclusive
        value = values.get(mid, 0.0)
        if value != 0.0:
            matrix[index[cnode.uid], rank] += value

    for rank, cct in enumerate(rank_ccts):
        _walk_aligned(combined.root, cct.root, rank, sink)

    mask = np.any(matrix != 0.0, axis=1)
    kept = [node for node, keep in zip(nodes, mask.tolist()) if keep]
    return kept, matrix[mask]


def collect_rank_vectors(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    mid: int,
    inclusive: bool = True,
) -> dict[int, np.ndarray]:
    """Per-node vectors of one metric across ranks.

    Dict facade over :func:`collect_rank_matrix`: returns
    ``{combined-node uid: array of length nranks}`` for every scope that
    is nonzero in at least one rank.
    """
    nodes, matrix = collect_rank_matrix(combined, rank_ccts, mid, inclusive)
    return {node.uid: matrix[row] for row, node in enumerate(nodes)}


def structural_key(node: CCTNode) -> tuple:
    """Identity of a scope that survives across structure models.

    ``CCTNode.key`` embeds structure-node uids, which only align when two
    trees share one :class:`StructureModel`; cross-experiment analyses
    (scale-and-difference between separate runs) need identity by *what*
    the scope is — kind, static scope signature, and line.
    """
    if node.struct is None:
        sig = None
    else:
        sig = (
            node.struct.kind.value,
            node.struct.name,
            node.struct.location.file,
            node.struct.location.line,
        )
    return (node.kind.value, sig, node.line)


def scale_and_difference(
    base: CCT,
    scaled_run: CCT,
    metrics: MetricTable,
    mid: int,
    factor: float,
    name: str = "scaling loss",
) -> int:
    """Attribute scaling loss to contexts (Section VI-A; Coarfa et al.).

    Registers a new raw metric on *metrics* whose per-scope raw value is
    ``raw_scaled - factor * raw_base``: the cost the larger run incurred
    beyond perfect scaling of the smaller one.  Writes values into
    *scaled_run* (matching scopes by structural identity, so the two runs
    may come from independently built structure models; scopes absent
    from the base run contribute their full cost as loss) and
    re-attributes.  Returns the new metric id.
    """
    if factor <= 0:
        raise MetricError(f"scaling factor must be positive, got {factor}")
    loss = metrics.add(name, unit=metrics.by_id(mid).unit, description=(
        f"scaling loss = {metrics.by_id(mid).name} - {factor} x base run"
    ))

    base_raw: dict[tuple, float] = {}

    stack: list[tuple[CCTNode, tuple]] = [(base.root, ())]
    while stack:
        node, path = stack.pop()
        key = path + (structural_key(node),)
        if mid in node.raw:
            base_raw[key] = base_raw.get(key, 0.0) + node.raw[mid]
        stack.extend((child, key) for child in node.children)

    stack = [(scaled_run.root, ())]
    while stack:
        node, path = stack.pop()
        key = path + (structural_key(node),)
        expected = factor * base_raw.pop(key, 0.0)
        measured = node.raw.get(mid, 0.0)
        delta = measured - expected
        if delta != 0.0:
            node.raw[loss.mid] = delta
        stack.extend((child, key) for child in node.children)

    attribute(scaled_run)
    return loss.mid

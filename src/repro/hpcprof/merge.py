"""Merging canonical CCTs across threads, ranks and experiments.

Per-rank profiles are correlated into per-rank CCTs (sharing one static
structure model); this module unions them into a single canonical CCT —
scope identity is the path of node keys — and supports two cross-
experiment analyses from the paper:

* :func:`collect_rank_vectors` — per-node vectors of one metric across all
  ranks, the raw material for load-imbalance presentation (Figure 7) and
  for statistical summarization (:mod:`repro.hpcprof.summarize`);
* :func:`scale_and_difference` — the derived scaling-loss metric of
  Section VI-A: scale the profile of a small run and subtract it from a
  large run, attributing scaling loss to individual contexts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTNode
from repro.errors import DatabaseError, MetricError
from repro.core.metrics import MetricKind, MetricTable, add_into
from repro.hpcstruct.model import StructKind, StructureModel, StructureNode

__all__ = [
    "merge_ccts",
    "collect_rank_matrix",
    "collect_rank_vectors",
    "scale_and_difference",
    "map_structure",
    "remap_cct",
    "merge_experiments",
    "merge_rank_files",
    "MergeReport",
    "DEFAULT_WORKING_SET",
]


def _graft(dst: CCTNode, src: CCTNode) -> None:
    """Union *src*'s subtree into *dst*, summing raw costs.

    Iterative (explicit stack), so chains deeper than the interpreter
    recursion limit graft correctly.
    """
    stack = [(dst, src)]
    while stack:
        dnode, snode = stack.pop()
        add_into(dnode.raw, snode.raw)
        for child in snode.children:
            mine = dnode._child_index.get(child.key)
            if mine is None:
                mine = CCTNode(
                    child.kind, struct=child.struct, line=child.line, parent=dnode
                )
            stack.append((mine, child))


def merge_ccts(ccts: Sequence[CCT], attribute_result: bool = True) -> CCT:
    """Union CCTs (sharing one structure model) into a new tree.

    Raw costs sum; the result is re-attributed unless disabled.  Merging
    is associative and commutative up to child order — a property the
    test suite checks — because scope identity is structural.
    """
    out = CCT()
    for cct in ccts:
        _graft(out.root, cct.root)
    if attribute_result:
        attribute(out)
    return out


def _walk_aligned(combined: CCTNode, rank_root: CCTNode, rank: int, sink) -> None:
    """Visit nodes of one rank tree aligned to the combined tree by key.

    Iterative, for the same deep-chain reason as :func:`_graft`.
    """
    stack = [(combined, rank_root)]
    while stack:
        cnode, rnode = stack.pop()
        sink(cnode, rnode, rank)
        for child in rnode.children:
            mine = cnode._child_index.get(child.key)
            if mine is not None:
                stack.append((mine, child))


def collect_rank_matrix(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    mid: int,
    inclusive: bool = True,
) -> tuple[list[CCTNode], np.ndarray]:
    """Columnar per-rank values of one metric: ``(nodes, matrix)``.

    ``matrix`` is ``(len(nodes), nranks)`` float64 with one row per
    combined-tree scope that is nonzero in at least one rank (row *i*
    belongs to ``nodes[i]``); ranks in which a scope never appeared
    contribute 0 (sparse semantics).  This is the raw material for
    load-imbalance presentation (Figure 7) and for the vectorized
    statistical summarization in :mod:`repro.hpcprof.summarize`.
    """
    nranks = len(rank_ccts)
    nodes = list(combined.walk())
    index = {node.uid: row for row, node in enumerate(nodes)}
    matrix = np.zeros((len(nodes), nranks))

    def sink(cnode: CCTNode, rnode: CCTNode, rank: int) -> None:
        values = rnode.inclusive if inclusive else rnode.exclusive
        value = values.get(mid, 0.0)
        if value != 0.0:
            matrix[index[cnode.uid], rank] += value

    for rank, cct in enumerate(rank_ccts):
        _walk_aligned(combined.root, cct.root, rank, sink)

    mask = np.any(matrix != 0.0, axis=1)
    kept = [node for node, keep in zip(nodes, mask.tolist()) if keep]
    return kept, matrix[mask]


def collect_rank_vectors(
    combined: CCT,
    rank_ccts: Sequence[CCT],
    mid: int,
    inclusive: bool = True,
) -> dict[int, np.ndarray]:
    """Per-node vectors of one metric across ranks.

    Dict facade over :func:`collect_rank_matrix`: returns
    ``{combined-node uid: array of length nranks}`` for every scope that
    is nonzero in at least one rank.
    """
    nodes, matrix = collect_rank_matrix(combined, rank_ccts, mid, inclusive)
    return {node.uid: matrix[row] for row, node in enumerate(nodes)}


def structural_key(node: CCTNode) -> tuple:
    """Identity of a scope that survives across structure models.

    ``CCTNode.key`` embeds structure-node uids, which only align when two
    trees share one :class:`StructureModel`; cross-experiment analyses
    (scale-and-difference between separate runs) need identity by *what*
    the scope is — kind, static scope signature, and line.
    """
    if node.struct is None:
        sig = None
    else:
        sig = (
            node.struct.kind.value,
            node.struct.name,
            node.struct.location.file,
            node.struct.location.line,
        )
    return (node.kind.value, sig, node.line)


def scale_and_difference(
    base: CCT,
    scaled_run: CCT,
    metrics: MetricTable,
    mid: int,
    factor: float,
    name: str = "scaling loss",
) -> int:
    """Attribute scaling loss to contexts (Section VI-A; Coarfa et al.).

    Registers a new raw metric on *metrics* whose per-scope raw value is
    ``raw_scaled - factor * raw_base``: the cost the larger run incurred
    beyond perfect scaling of the smaller one.  Writes values into
    *scaled_run* (matching scopes by structural identity, so the two runs
    may come from independently built structure models; scopes absent
    from the base run contribute their full cost as loss) and
    re-attributes.  Returns the new metric id.
    """
    if factor <= 0:
        raise MetricError(f"scaling factor must be positive, got {factor}")
    loss = metrics.add(name, unit=metrics.by_id(mid).unit, description=(
        f"scaling loss = {metrics.by_id(mid).name} - {factor} x base run"
    ))

    base_raw: dict[tuple, float] = {}

    stack: list[tuple[CCTNode, tuple]] = [(base.root, ())]
    while stack:
        node, path = stack.pop()
        key = path + (structural_key(node),)
        if mid in node.raw:
            base_raw[key] = base_raw.get(key, 0.0) + node.raw[mid]
        stack.extend((child, key) for child in node.children)

    stack = [(scaled_run.root, ())]
    while stack:
        node, path = stack.pop()
        key = path + (structural_key(node),)
        expected = factor * base_raw.pop(key, 0.0)
        measured = node.raw.get(mid, 0.0)
        delta = measured - expected
        if delta != 0.0:
            node.raw[loss.mid] = delta
        stack.extend((child, key) for child in node.children)

    attribute(scaled_run)
    return loss.mid


# --------------------------------------------------------------------- #
# cross-model merging (independently loaded rank databases)
# --------------------------------------------------------------------- #
def map_structure(
    canonical: StructureModel, other: StructureModel
) -> dict[int, StructureNode]:
    """Graft *other*'s scopes into *canonical*; return uid -> canonical node.

    ``CCTNode.key`` embeds structure-node uids, which only align when two
    trees share one model — so CCTs from independently loaded databases
    cannot be grafted directly.  This computes the bridge: every scope of
    *other* is united into *canonical* by its structural key (kind, name,
    file, line) and mapped to the canonical node, after which the CCTs
    can be merged as if they had shared a model all along.  Idempotent:
    re-mapping an already-united model creates nothing new.
    """
    mapping: dict[int, StructureNode] = {other.root.uid: canonical.root}
    stack: list[tuple[StructureNode, StructureNode]] = [
        (canonical.root, other.root)
    ]
    while stack:
        dst, src = stack.pop()
        for child in src.children:
            mine = dst.child_by_key(child.key)
            if mine is None:
                mine = StructureNode(
                    child.kind, child.name, child.location, parent=dst
                )
                mine.calls = child.calls
                if child.kind is StructKind.PROCEDURE:
                    canonical._register_procedure(mine)
            mapping[child.uid] = mine
            stack.append((mine, child))
    return mapping


def remap_cct(cct: CCT, mapping: dict[int, StructureNode]) -> CCT:
    """A fresh copy of *cct* whose struct references go through *mapping*.

    Children keep their order and all three metric dicts are copied, so
    the remapped tree is value-identical to the original — it merely
    lives in the canonical structure model.
    """
    out = CCT()
    for attr in ("raw", "inclusive", "exclusive"):
        getattr(out.root, attr).update(getattr(cct.root, attr))
    stack: list[tuple[CCTNode, CCTNode]] = [(out.root, cct.root)]
    while stack:
        dnode, snode = stack.pop()
        for child in snode.children:
            struct = (
                mapping[child.struct.uid] if child.struct is not None else None
            )
            mine = CCTNode(
                child.kind, struct=struct, line=child.line, parent=dnode
            )
            for attr in ("raw", "inclusive", "exclusive"):
                getattr(mine, attr).update(getattr(child, attr))
            stack.append((mine, child))
    return out


def _graft_mapped(
    dst: CCTNode, src: CCTNode, mapping: dict[int, StructureNode]
) -> None:
    """:func:`_graft`, but matching scopes through a structure mapping.

    Node creation happens in child order (the descent stack order does
    not affect attachment order), and raw sums accumulate in the same
    traversal order as ``merge_ccts`` over remapped trees — the property
    that makes the streaming merge bit-identical to the in-memory one.
    """
    stack = [(dst, src)]
    while stack:
        dnode, snode = stack.pop()
        add_into(dnode.raw, snode.raw)
        for child in snode.children:
            struct = (
                mapping[child.struct.uid] if child.struct is not None else None
            )
            key = (
                child.kind.value,
                struct.uid if struct is not None else 0,
                child.line,
            )
            mine = dnode._child_index.get(key)
            if mine is None:
                mine = CCTNode(
                    child.kind, struct=struct, line=child.line, parent=dnode
                )
            stack.append((mine, child))


def _walk_aligned_mapped(
    combined: CCTNode,
    rank_root: CCTNode,
    mapping: dict[int, StructureNode],
    sink,
) -> None:
    """:func:`_walk_aligned` across models, aligning by mapped keys."""
    stack = [(combined, rank_root)]
    while stack:
        cnode, rnode = stack.pop()
        sink(cnode, rnode)
        for child in rnode.children:
            struct = (
                mapping[child.struct.uid] if child.struct is not None else None
            )
            key = (
                child.kind.value,
                struct.uid if struct is not None else 0,
                child.line,
            )
            mine = cnode._child_index.get(key)
            if mine is not None:
                stack.append((mine, child))


def _metric_signature(metrics: MetricTable) -> tuple:
    """What must agree for two databases to merge: the RAW columns."""
    return tuple(
        (d.mid, d.name, d.unit, d.kind.value)
        for d in metrics
        if d.kind is MetricKind.RAW
    )


def _summary_mids(metrics: MetricTable, summarize) -> list[int]:
    """Resolve a ``summarize=`` argument to a sorted list of RAW mids."""
    raw = [d.mid for d in metrics if d.kind is MetricKind.RAW]
    if summarize == "all":
        return raw
    if not summarize:
        return []
    out = set()
    for name in summarize:
        mid = metrics.by_name(name).mid
        if mid not in raw:
            raise MetricError(f"cannot summarize non-raw metric {name!r}")
        out.add(mid)
    return sorted(out)


def merge_experiments(
    experiments: Sequence,
    name: str | None = None,
    summarize=(),
):
    """Union independently loaded experiments into one (in memory).

    The first experiment's structure model becomes canonical; every
    other model is united into it by structural key, each input tree is
    remapped and retained as one rank tree, and the combined CCT is
    their re-attributed union.  *summarize* (metric names, or ``"all"``)
    attaches mean/min/max/stddev columns via the exact sequential
    Welford path (:func:`~repro.hpcprof.summarize.summarize_ranks_exact`)
    — the in-memory reference the bounded-memory
    :func:`merge_rank_files` is bit-identical to.
    """
    from repro.hpcprof.experiment import Experiment
    from repro.hpcprof.summarize import summarize_ranks_exact

    if not experiments:
        raise MetricError("need at least one experiment to merge")
    first = experiments[0]
    signature = _metric_signature(first.metrics)
    canonical = first.structure
    rank_ccts: list[CCT] = []
    for exp in experiments:
        if _metric_signature(exp.metrics) != signature:
            raise MetricError(
                f"metric tables differ: {first.name!r} vs {exp.name!r}"
            )
        mapping = map_structure(canonical, exp.structure)
        sources = exp.rank_ccts if exp.rank_ccts else [exp.cct]
        rank_ccts.extend(remap_cct(cct, mapping) for cct in sources)
    combined = merge_ccts(rank_ccts)
    merged = Experiment(
        name or first.name, first.metrics, canonical, combined,
        rank_ccts=rank_ccts,
    )
    for mid in _summary_mids(first.metrics, summarize):
        merged._summaries[mid] = summarize_ranks_exact(
            combined, rank_ccts, first.metrics, mid
        )
    return merged


# --------------------------------------------------------------------- #
# bounded-memory merge of rank databases into a column store
# --------------------------------------------------------------------- #
#: default working-set budget for :func:`merge_rank_files` (bytes)
DEFAULT_WORKING_SET = 256 * 1024 * 1024

#: rough resident bytes per combined-tree CCT node (object + dicts)
_NODE_COST = 700

#: decoded-experiment expansion over on-disk bytes (python object cost)
_DECODE_EXPANSION = 12


@dataclass(frozen=True)
class MergeReport:
    """What :func:`merge_rank_files` did, and how big it got."""

    out_path: str
    nranks: int
    nnodes: int
    num_metrics: int
    summarized: tuple[int, ...]
    working_set_bytes: int
    peak_estimate_bytes: int
    skeleton_bytes: int
    store_bytes: int

    def summary(self) -> str:
        return (
            f"merged {self.nranks} rank database(s) -> {self.out_path}: "
            f"{self.nnodes} scopes, {self.num_metrics} metrics, "
            f"{len(self.summarized)} summarized, "
            f"store {self.store_bytes / 1024:.1f} KiB, "
            f"peak working set ~{self.peak_estimate_bytes / 1048576:.1f} MiB "
            f"(budget {self.working_set_bytes / 1048576:.0f} MiB)"
        )


def _load_rank(path: str, strict: bool = True):
    """Load one rank database, streaming when the format allows it.

    Binary databases go through the mmap streaming reader (byte working
    set = one section); XML and salvage loads fall back to the eager
    path, still bounded to one file at a time.
    """
    from repro.hpcprof import binio, database

    if strict:
        try:
            with open(path, "rb") as fh:
                magic = fh.read(4)
        except OSError:
            magic = b""  # let database.load raise its canonical error
        if magic == b"RPDB":
            return binio.read_binary_streaming(path)
    return database.load(path, strict=strict)


def _budget_check(estimate: int, budget: int, stage: str) -> None:
    if estimate > budget:
        raise DatabaseError(
            f"working-set budget exceeded during {stage}: need about "
            f"{estimate / 1048576:.1f} MiB, budget is "
            f"{budget / 1048576:.1f} MiB (raise working_set_bytes)"
        )


def merge_rank_files(
    paths: Sequence[str],
    out_path: str,
    *,
    name: str | None = None,
    working_set_bytes: int = DEFAULT_WORKING_SET,
    summarize="all",
    strict: bool = True,
    overwrite: bool = False,
) -> MergeReport:
    """Fold N single-rank databases into one mmap-backed column store.

    Two streaming passes, neither of which ever holds more than one
    decoded rank plus the combined skeleton and O(scopes x metrics)
    accumulators (checked against *working_set_bytes*):

    1. **graft** — each database is loaded (streaming reader), its
       structure united into the canonical model, and its CCT grafted
       into the combined tree in rank order; then one Eq. 1/2
       attribution pass over the union.
    2. **measure** — each database is re-streamed; its per-scope values
       become one contiguous row of the on-disk ``(nranks x nnodes)``
       rank matrices, and the summary accumulators advance by the exact
       Welford recurrence.

    The result is bit-identical to ``merge_experiments(...,
    summarize=...)`` over the same files — the differential suite pins
    raw sums, attribution, summary columns, and rendered tables.
    """
    from repro.core.store import StoreWriter, open_store

    paths = list(paths)
    if not paths:
        raise DatabaseError("need at least one rank database to merge")

    writer = StoreWriter(out_path, overwrite=overwrite)
    combined = CCT()
    canonical: StructureModel | None = None
    metrics: MetricTable | None = None
    signature: tuple | None = None
    merged_name = name
    max_file = 0
    peak = 0

    # pass 1: graft every rank tree into the combined skeleton
    for path in paths:
        exp = _load_rank(path, strict=strict)
        if exp.rank_ccts:
            raise DatabaseError(
                f"{path}: merge inputs must be single-rank databases "
                f"(this one holds {len(exp.rank_ccts)} rank trees)"
            )
        if metrics is None:
            metrics = exp.metrics
            signature = _metric_signature(metrics)
            canonical = exp.structure
            if merged_name is None:
                merged_name = exp.name
        elif _metric_signature(exp.metrics) != signature:
            raise DatabaseError(
                f"{path}: metric table differs from {paths[0]}"
            )
        mapping = map_structure(canonical, exp.structure)
        _graft_mapped(combined.root, exp.cct.root, mapping)
        max_file = max(max_file, os.path.getsize(path))
        estimate = len(combined) * _NODE_COST + max_file * _DECODE_EXPANSION
        peak = max(peak, estimate)
        _budget_check(estimate, working_set_bytes, "graft")
    attribute(combined)

    # pass 2: stream ranks again for matrices + exact Welford summaries
    nodes = list(combined.walk())
    index = {node.uid: row for row, node in enumerate(nodes)}
    n = len(nodes)
    nranks = len(paths)
    mids = [d.mid for d in metrics if d.kind is MetricKind.RAW]
    summary_mids = _summary_mids(
        metrics, summarize
    ) if summarize else []
    flavors = ("inclusive", "exclusive")

    maps = {
        (mid, flavor): writer.create_rank_matrix(mid, flavor, nranks, n)
        for mid in mids
        for flavor in flavors
    }
    cols = {key: np.zeros(n) for key in maps}
    acc = {
        (mid, flavor): [
            np.zeros(n),                    # mean
            np.zeros(n),                    # m2
            np.full(n, np.inf),             # min
            np.full(n, -np.inf),            # max
            np.zeros(n, dtype=bool),        # nonzero mask
        ]
        for mid in summary_mids
        for flavor in flavors
    }
    accumulator_bytes = (len(maps) + 5 * len(acc)) * n * 8
    estimate = (
        n * _NODE_COST + max_file * _DECODE_EXPANSION + accumulator_bytes
    )
    peak = max(peak, estimate)
    _budget_check(estimate, working_set_bytes, "measure")

    for r, path in enumerate(paths):
        exp = _load_rank(path, strict=strict)
        mapping = map_structure(canonical, exp.structure)
        for buf in cols.values():
            buf[:] = 0.0

        def sink(cnode, rnode):
            row = index[cnode.uid]
            for mid in mids:
                value = rnode.inclusive.get(mid, 0.0)
                if value != 0.0:
                    cols[(mid, "inclusive")][row] += value
                value = rnode.exclusive.get(mid, 0.0)
                if value != 0.0:
                    cols[(mid, "exclusive")][row] += value

        _walk_aligned_mapped(combined.root, exp.cct.root, mapping, sink)
        for key, mm in maps.items():
            x = cols[key]
            mm[r, :] = x
            stats = acc.get(key)
            if stats is not None:
                mean, m2, minimum, maximum, nonzero = stats
                # element-wise identical to _welford_chunk's column step
                delta = x - mean
                mean += delta / (r + 1)
                m2 += delta * (x - mean)
                np.minimum(minimum, x, out=minimum)
                np.maximum(maximum, x, out=maximum)
                nonzero |= x != 0.0

    for mm in maps.values():
        mm.flush()
    maps.clear()

    # finalize: register + write summary columns, then seal the store
    from repro.hpcprof.experiment import Experiment
    from repro.hpcprof.summarize import (
        apply_summary_stats,
        register_summary_ids,
    )

    summaries = {}
    for mid in summary_mids:
        ids = register_summary_ids(metrics, mid)
        summaries[mid] = ids
        for flavor in flavors:
            mean, m2, minimum, maximum, nonzero = acc[(mid, flavor)]
            apply_summary_stats(
                nodes, flavor, ids, (nranks, mean, m2, minimum, maximum),
                nonzero,
            )
    if summaries:
        combined.invalidate_caches()

    merged = Experiment(merged_name or "merged", metrics, canonical, combined)
    skeleton_bytes = writer.write_skeleton(merged)
    writer.write_matrices(merged.engine)
    writer.finish(
        name=merged.name,
        nnodes=n,
        num_metrics=len(metrics),
        nranks=nranks,
        rank_mids=mids,
        summaries=summaries,
        extra={
            "skeleton_bytes": skeleton_bytes,
            "working_set_bytes": working_set_bytes,
            "peak_estimate_bytes": peak,
        },
    )
    store_bytes = open_store(out_path).store.size_bytes()
    return MergeReport(
        out_path=out_path,
        nranks=nranks,
        nnodes=n,
        num_metrics=len(metrics),
        summarized=tuple(summary_mids),
        working_set_bytes=working_set_bytes,
        peak_estimate_bytes=peak,
        skeleton_bytes=skeleton_bytes,
        store_bytes=store_bytes,
    )

"""N-way structural alignment of experiments into a union CCT.

Where :mod:`repro.hpcprof.merge` unions the *ranks of one execution*
into a single profile, this module aligns *separate executions* — an
ensemble of runs of the same program (nightly builds, configuration
sweeps, scaling studies) — into one supergraph:

* every member's scopes are united into a fresh canonical
  :class:`~repro.hpcstruct.model.StructureModel` by structural key
  (kind, name, file, line), so members built from independently loaded
  databases align by *what* each scope is, tolerant of missing or extra
  subtrees (the union simply contains them all);
* the union CCT's raw values are the member sums (re-attributed through
  Eq. 1/2, so the union renders like any experiment);
* each member's per-scope values become one row of a columnar
  ``(n_members x n_union_nodes)`` matrix per (metric, flavor) — the
  raw material for ensemble statistics, pairwise diffs, and regression
  detection in :mod:`repro.core.ensemble`.

Members may be in-memory :class:`~repro.hpcprof.experiment.Experiment`
objects or paths (``.xml`` / ``.rpdb`` / ``.rpstore``).  Paths are
streamed one at a time through two passes — graft, then measure — so a
hundred-profile ensemble never holds more than one decoded member plus
the union skeleton and the matrices, checked against the same
working-set budget as :func:`~repro.hpcprof.merge.merge_rank_files`.
Member experiments are never mutated: the canonical model and the union
tree are built fresh, and structure grafting only grows the canonical
side.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTNode
from repro.core.metrics import MetricKind, MetricTable
from repro.errors import MetricError
from repro.hpcprof.merge import (
    DEFAULT_WORKING_SET,
    _DECODE_EXPANSION,
    _NODE_COST,
    _budget_check,
    _graft_mapped,
    _metric_signature,
    _walk_aligned_mapped,
    map_structure,
)
from repro.hpcstruct.model import StructureModel

__all__ = [
    "Alignment",
    "AlignmentReport",
    "FLAVORS",
    "align_members",
]

#: per-node value projections collected for every RAW metric
FLAVORS = ("raw", "inclusive", "exclusive")


@dataclass(frozen=True)
class AlignmentReport:
    """What :func:`align_members` built, and how big it got."""

    n_members: int
    nnodes: int
    num_metrics: int
    matrix_bytes: int
    working_set_bytes: int
    peak_estimate_bytes: int

    def summary(self) -> str:
        return (
            f"aligned {self.n_members} experiment(s): "
            f"{self.nnodes} union scopes, {self.num_metrics} raw metric(s), "
            f"matrices {self.matrix_bytes / 1024:.1f} KiB, "
            f"peak working set ~{self.peak_estimate_bytes / 1048576:.1f} MiB "
            f"(budget {self.working_set_bytes / 1048576:.0f} MiB)"
        )

    def to_payload(self) -> dict:
        return {
            "n_members": self.n_members,
            "union_scopes": self.nnodes,
            "raw_metrics": self.num_metrics,
            "matrix_bytes": self.matrix_bytes,
            "working_set_bytes": self.working_set_bytes,
            "peak_estimate_bytes": self.peak_estimate_bytes,
        }


class Alignment:
    """The union of N experiments plus their columnar value matrices.

    * ``union`` — an :class:`~repro.hpcprof.experiment.Experiment` over
      the union CCT (raw values = member sums, re-attributed), with its
      own metric table — attaching columns to it never touches a member;
    * ``nodes`` — the union tree in preorder (row order of every
      matrix; row 0 is the root);
    * ``matrices[(mid, flavor)]`` — float64 ``(n_members, nnodes)``,
      one row per member in input order, with 0 where a member lacks
      the scope (sparse semantics);
    * ``pristine_metrics`` — the member metric table as aligned, before
      any ensemble columns; diff experiments are built from copies of
      it so diff tables never carry stats columns.
    """

    def __init__(
        self,
        names: list[str],
        union,
        nodes: list[CCTNode],
        mids: list[int],
        matrices: dict[tuple[int, str], np.ndarray],
        pristine_metrics: MetricTable,
        report: AlignmentReport,
    ) -> None:
        self.names = names
        self.union = union
        self.nodes = nodes
        self.rows = {node.uid: row for row, node in enumerate(nodes)}
        self.mids = mids
        self.matrices = matrices
        self.pristine_metrics = pristine_metrics
        self.report = report

    @property
    def n_members(self) -> int:
        return len(self.names)

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    def matrix(self, mid: int, flavor: str = "inclusive") -> np.ndarray:
        """The ``(n_members, nnodes)`` matrix of one metric projection.

        The returned array is the alignment's own storage — treat it as
        read-only.
        """
        if flavor not in FLAVORS:
            raise MetricError(
                f"unknown flavor {flavor!r} (have: {', '.join(FLAVORS)})"
            )
        try:
            return self.matrices[(mid, flavor)]
        except KeyError:
            raise MetricError(
                f"metric id {mid} is not a raw metric of this alignment"
            ) from None


def _load_member(source, strict: bool = True):
    """Resolve one member into ``(experiment, release, file_bytes)``.

    Strings are paths — ``.rpstore`` directories open as mmap-backed
    store experiments (released after use), ``RPDB`` files go through
    the streaming reader when strict, and anything else (XML, salvage
    loads) through the eager loader; everything else is taken to be an
    in-memory experiment and passed through untouched.  Unlike the rank
    merge, multi-rank members are welcome: alignment reads the combined
    tree, whatever produced it.
    """
    if not isinstance(source, (str, os.PathLike)):
        return source, None, 0
    path = os.fspath(source)
    from repro.core.store import is_store_path, open_store

    if is_store_path(path):
        # alignment owns this short-lived store outright, so *close* it
        # rather than merely releasing caches: release leaves the dup'd
        # mmap fds alive until the CCT's parent/child reference cycles
        # are garbage-collected, and a close/eviction sweep must not
        # depend on GC timing to give file descriptors back
        exp = open_store(path)
        return exp, exp.close, 0
    from repro.hpcprof import binio, database

    if strict:
        try:
            with open(path, "rb") as fh:
                magic = fh.read(4)
        except OSError:
            magic = b""  # let database.load raise its canonical error
        if magic == b"RPDB":
            return (
                binio.read_binary_streaming(path), None,
                os.path.getsize(path),
            )
    exp = database.load(path, strict=strict)
    size = os.path.getsize(path) if os.path.isfile(path) else 0
    return exp, None, size


def align_members(
    members: Sequence,
    *,
    name: str = "ensemble",
    working_set_bytes: int = DEFAULT_WORKING_SET,
    strict: bool = True,
) -> Alignment:
    """Align N experiments (objects or paths) into one :class:`Alignment`.

    Two streaming passes over the member list, mirroring
    :func:`~repro.hpcprof.merge.merge_rank_files`:

    1. **graft** — each member's structure is united into a fresh
       canonical model and its CCT grafted into the union tree (raw
       sums), then one Eq. 1/2 attribution pass;
    2. **measure** — each member is walked again aligned to the union;
       its per-scope raw/inclusive/exclusive values fill one row of the
       per-metric matrices.

    Path members are decoded one at a time in each pass, so the working
    set is one member plus the union skeleton and the matrices —
    checked against *working_set_bytes*, failing loudly when exceeded.
    All members must carry the same RAW metric signature
    (:class:`~repro.errors.MetricError` otherwise).
    """
    from repro.hpcprof.experiment import Experiment

    members = list(members)
    if len(members) < 2:
        raise MetricError(
            f"need at least two experiments to align, got {len(members)}"
        )

    canonical = StructureModel(name)
    union = CCT()
    metrics: MetricTable | None = None
    signature: tuple | None = None
    names: list[str] = []
    max_file = 0
    peak = 0

    # pass 1: graft every member into the union skeleton
    for i, source in enumerate(members):
        exp, release, nbytes = _load_member(source, strict=strict)
        try:
            if metrics is None:
                metrics = exp.metrics.copy()
                signature = _metric_signature(metrics)
            elif _metric_signature(exp.metrics) != signature:
                raise MetricError(
                    f"cannot align member {i} ({exp.name!r}): metric table "
                    f"differs from member 0 ({names[0]!r})"
                )
            names.append(exp.name or f"member-{i}")
            mapping = map_structure(canonical, exp.structure)
            _graft_mapped(union.root, exp.cct.root, mapping)
        finally:
            if release is not None:
                release()
        max_file = max(max_file, nbytes)
        estimate = len(union) * _NODE_COST + max_file * _DECODE_EXPANSION
        peak = max(peak, estimate)
        _budget_check(estimate, working_set_bytes, "align")
    attribute(union)

    # pass 2: stream members again, filling one matrix row each
    nodes = list(union.walk())
    rows = {node.uid: row for row, node in enumerate(nodes)}
    n = len(nodes)
    mids = [d.mid for d in metrics if d.kind is MetricKind.RAW]
    matrices = {
        (mid, flavor): np.zeros((len(members), n))
        for mid in mids
        for flavor in FLAVORS
    }
    matrix_bytes = len(matrices) * len(members) * n * 8
    estimate = n * _NODE_COST + max_file * _DECODE_EXPANSION + matrix_bytes
    peak = max(peak, estimate)
    _budget_check(estimate, working_set_bytes, "measure")

    for i, source in enumerate(members):
        exp, release, _ = _load_member(source, strict=strict)
        try:
            mapping = map_structure(canonical, exp.structure)

            def sink(cnode, rnode, i=i):
                row = rows[cnode.uid]
                for mid in mids:
                    for flavor in FLAVORS:
                        value = getattr(rnode, flavor).get(mid, 0.0)
                        if value != 0.0:
                            matrices[(mid, flavor)][i, row] += value

            _walk_aligned_mapped(union.root, exp.cct.root, mapping, sink)
        finally:
            if release is not None:
                release()

    union_exp = Experiment(name, metrics, canonical, union)
    report = AlignmentReport(
        n_members=len(members),
        nnodes=n,
        num_metrics=len(mids),
        matrix_bytes=matrix_bytes,
        working_set_bytes=working_set_bytes,
        peak_estimate_bytes=peak,
    )
    return Alignment(
        names=names,
        union=union_exp,
        nodes=nodes,
        mids=mids,
        matrices=matrices,
        pristine_metrics=metrics.copy(),
        report=report,
    )

"""XML experiment-database serialization.

HPCToolkit's experiment databases are XML documents correlating the
metric table, the static structure and the canonical CCT; this module
implements an equivalent schema::

    <CallPathExperiment version="1.0" name="...">
      <MetricTable>
        <Metric i="0" n="cycles" u="cycles" p="1.0" k="raw" f="" d="" pct="1"/>
      </MetricTable>
      <Structure>
        <S i="3" k="file" n="file1.c" f="file1.c" l="0" e="0" c="">...</S>
      </Structure>
      <CCT>
        <N k="procedure-frame" s="3" l="0">
          <M i="0" v="10.0"/>          <!-- raw values -->
          <MI i="4" v="2.5"/>          <!-- stored summary values -->
          ...
        </N>
      </CCT>
    </CallPathExperiment>

Raw metric values are stored per scope; inclusive/exclusive values of
*measured* metrics are recomputed by attribution on load, while values of
``summary`` metrics (which cannot be recomputed from one tree) are stored
explicitly.  The paper's ongoing-work section motivates replacing XML
with "a more compact binary format" — :mod:`repro.hpcprof.binio` — and
``benchmarks/bench_database.py`` quantifies the gap.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import IO

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTKind, CCTNode
from repro.errors import CorrelationError, DatabaseError, StructureError
from repro.core.metrics import MetricKind, MetricTable
from repro.hpcprof.experiment import Experiment
from repro.hpcstruct.model import (
    SourceLocation,
    StructKind,
    StructureModel,
    StructureNode,
)

__all__ = ["write_xml", "read_xml", "dumps_xml", "loads_xml"]

_FORMAT_VERSION = "1.0"


# --------------------------------------------------------------------- #
# writing
# --------------------------------------------------------------------- #
def _metric_table_element(metrics: MetricTable) -> ET.Element:
    table = ET.Element("MetricTable")
    for desc in metrics:
        ET.SubElement(
            table,
            "Metric",
            i=str(desc.mid),
            n=desc.name,
            u=desc.unit,
            p=repr(desc.period),
            k=desc.kind.value,
            f=desc.formula,
            d=desc.description,
            pct="1" if desc.show_percent else "0",
        )
    return table


def _structure_element(node: StructureNode, ids: dict[int, int]) -> ET.Element:
    ids[node.uid] = len(ids)
    elem = ET.Element(
        "S",
        i=str(ids[node.uid]),
        k=node.kind.value,
        n=node.name,
        f=node.location.file,
        l=str(node.location.line),
        e=str(node.location.end_line),
        c=";".join(f"{line}:{callee}" for line, callee in node.calls),
    )
    for child in node.children:
        elem.append(_structure_element(child, ids))
    return elem


def _cct_element(node: CCTNode, struct_ids: dict[int, int], metrics: MetricTable) -> ET.Element:
    elem = ET.Element(
        "N",
        k=node.kind.value,
        s=str(struct_ids.get(node.struct.uid, -1)) if node.struct is not None else "-1",
        l=str(node.line),
    )
    for mid, value in sorted(node.raw.items()):
        if metrics.by_id(mid).kind is MetricKind.RAW:
            ET.SubElement(elem, "M", i=str(mid), v=repr(value))
    for tag, store in (("MI", node.inclusive), ("ME", node.exclusive)):
        for mid, value in sorted(store.items()):
            if metrics.by_id(mid).kind is MetricKind.SUMMARY:
                ET.SubElement(elem, tag, i=str(mid), v=repr(value))
    for child in node.children:
        elem.append(_cct_element(child, struct_ids, metrics))
    return elem


def dumps_xml(experiment: Experiment) -> bytes:
    """Serialize an experiment to XML bytes."""
    root = ET.Element(
        "CallPathExperiment", version=_FORMAT_VERSION, name=experiment.name
    )
    root.append(_metric_table_element(experiment.metrics))
    struct_elem = ET.Element("Structure")
    ids: dict[int, int] = {}
    struct_elem.append(_structure_element(experiment.structure.root, ids))
    root.append(struct_elem)
    cct_elem = ET.Element("CCT")
    cct_elem.append(_cct_element(experiment.cct.root, ids, experiment.metrics))
    root.append(cct_elem)
    return ET.tostring(root, encoding="utf-8", xml_declaration=True)


def write_xml(experiment: Experiment, path: str) -> None:
    with open(path, "wb") as fh:
        fh.write(dumps_xml(experiment))


# --------------------------------------------------------------------- #
# reading
# --------------------------------------------------------------------- #
def _read_metric_table(elem: ET.Element) -> MetricTable:
    metrics = MetricTable()
    rows = sorted(elem.findall("Metric"), key=lambda m: int(m.get("i")))
    for i, m in enumerate(rows):
        if int(m.get("i")) != i:
            raise DatabaseError("metric ids must be dense and ordered")
        metrics.add(
            m.get("n"),
            unit=m.get("u", ""),
            period=float(m.get("p", "1.0")),
            kind=MetricKind(m.get("k", "raw")),
            formula=m.get("f", ""),
            description=m.get("d", ""),
            show_percent=m.get("pct", "1") == "1",
        )
    return metrics


def _read_structure(elem: ET.Element, model: StructureModel) -> dict[int, StructureNode]:
    by_id: dict[int, StructureNode] = {}

    def build(selem: ET.Element, parent: StructureNode | None) -> StructureNode:
        kind = StructKind(selem.get("k"))
        if kind is StructKind.ROOT:
            node = model.root
            node.name = selem.get("n", node.name)
        else:
            node = StructureNode(
                kind,
                name=selem.get("n", ""),
                location=SourceLocation(
                    file=selem.get("f", ""),
                    line=int(selem.get("l", "0")),
                    end_line=int(selem.get("e", "0")),
                ),
                parent=parent,
            )
        calls = selem.get("c", "")
        if calls:
            pairs = []
            for item in calls.split(";"):
                line, _, callee = item.partition(":")
                pairs.append((int(line), callee))
            node.calls = tuple(pairs)
        if kind is StructKind.PROCEDURE:
            model._register_procedure(node)
        by_id[int(selem.get("i"))] = node
        for child in selem:
            build(child, node)
        return node

    roots = list(elem)
    if len(roots) != 1:
        raise DatabaseError("Structure section must contain exactly one root")
    build(roots[0], None)
    return by_id


def _read_cct(elem: ET.Element, structs: dict[int, StructureNode]) -> CCT:
    cct = CCT()

    def build(nelem: ET.Element, parent: CCTNode | None) -> CCTNode:
        kind = CCTKind(nelem.get("k"))
        if kind is CCTKind.ROOT:
            node = cct.root
        else:
            sid = int(nelem.get("s", "-1"))
            struct = structs.get(sid)
            node = CCTNode(
                kind, struct=struct, line=int(nelem.get("l", "0")), parent=parent
            )
        for child in nelem:
            if child.tag == "M":
                node.raw[int(child.get("i"))] = float(child.get("v"))
            elif child.tag == "MI":
                node.inclusive[int(child.get("i"))] = float(child.get("v"))
            elif child.tag == "ME":
                node.exclusive[int(child.get("i"))] = float(child.get("v"))
            else:
                build(child, node)
        return node

    roots = list(elem)
    if len(roots) != 1:
        raise DatabaseError("CCT section must contain exactly one root")
    build(roots[0], None)
    return cct


def loads_xml(data: bytes) -> Experiment:
    """Deserialize from XML bytes; all malformed input -> DatabaseError.

    Missing attributes, bad enum values, dangling structure references
    and the like must surface as DatabaseError, never as raw
    TypeError/KeyError from element access (verified by fuzz tests).
    """
    try:
        return _loads_xml(data)
    except DatabaseError:
        raise
    except (TypeError, KeyError, ValueError, AttributeError, IndexError,
            RecursionError,
            StructureError, CorrelationError) as exc:
        raise DatabaseError(f"malformed experiment XML: {exc!r}") from exc


def _loads_xml(data: bytes) -> Experiment:
    try:
        root = ET.fromstring(data)
    except ET.ParseError as exc:
        raise DatabaseError(f"malformed experiment XML: {exc}") from exc
    if root.tag != "CallPathExperiment":
        raise DatabaseError(f"not an experiment database (root {root.tag!r})")
    metrics = _read_metric_table(root.find("MetricTable"))
    model = StructureModel()
    structs = _read_structure(root.find("Structure"), model)
    cct = _read_cct(root.find("CCT"), structs)

    # stash stored summary values, recompute measured attribution, restore
    stored: list[tuple[CCTNode, dict, dict]] = []
    for node in cct.walk():
        if node.inclusive or node.exclusive:
            stored.append((node, dict(node.inclusive), dict(node.exclusive)))
    attribute(cct)
    for node, incl, excl in stored:
        node.inclusive.update(incl)
        node.exclusive.update(excl)
    return Experiment(root.get("name", "experiment"), metrics, model, cct)


def read_xml(path: str) -> Experiment:
    with open(path, "rb") as fh:
        return loads_xml(fh.read())

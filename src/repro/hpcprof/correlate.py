"""Correlation of dynamic call path profiles with static structure.

This is the ``hpcprof`` substrate's core step: fuse the measured call-path
trie (:class:`~repro.hpcrun.profile_data.ProfileData`) with the program's
static structure (:class:`~repro.hpcstruct.model.StructureModel`) into the
*canonical calling context tree* the presentation layer consumes.

Fusion rules (Section III-A, III-D of the paper):

* each dynamic frame becomes a ``FRAME`` scope linked to its static
  procedure;
* the call site that created a frame is nested inside the loop chain that
  statically encloses the call line in the *caller* — this is how the
  Calling Context View interleaves loops with call chains ("the call chain
  presented includes both dynamic context and the loop nests surrounding
  these procedure calls");
* a leaf sample is attributed to a ``STATEMENT`` scope nested inside the
  loop/inlining chain enclosing its line — or to the ``CALL_SITE`` scope at
  that line when the line is a known call site (cost at the call
  instruction itself);
* procedures unknown to the structure model (binary-only runtime code,
  e.g. libc or interpreter internals) are attached to a synthetic
  ``<unknown>`` load module, mirroring hpcviewer's plain-black entries
  "with no associated source code".
"""

from __future__ import annotations

from repro.core.cct import CCT, CCTNode
from repro.errors import CorrelationError
from repro.hpcrun.profile_data import Frame, ProfileData
from repro.hpcstruct.model import StructKind, StructureModel, StructureNode

__all__ = ["Correlator", "correlate"]

_UNKNOWN_MODULE = "<unknown load module>"


class Correlator:
    """Stateful correlator: one structure model, possibly many profiles.

    Correlating several profiles against the same ``Correlator`` merges
    them into a single CCT with summed raw costs (the multi-thread /
    multi-rank union).  For per-rank analysis, correlate each profile into
    its own CCT and combine with :mod:`repro.hpcprof.merge`.
    """

    def __init__(self, structure: StructureModel) -> None:
        self.structure = structure
        self.cct = CCT()
        self._proc_cache: dict[tuple[str, str], StructureNode] = {}
        self._call_lines: dict[int, set[int]] = {}

    # ------------------------------------------------------------------ #
    def add_profile(self, profile: ProfileData) -> None:
        """Fuse one profile's call paths into the CCT."""
        for frames, leaf_line, costs in profile.paths():
            node = self._insert_path(frames)
            self._attribute_leaf(node, leaf_line, costs)
        self.cct.invalidate_caches()  # shape and raw values changed

    # ------------------------------------------------------------------ #
    def _resolve_proc(self, frame: Frame) -> StructureNode:
        key = (frame.file, frame.proc)
        proc = self._proc_cache.get(key)
        if proc is not None:
            return proc
        proc = self.structure.find_procedure(frame.proc, frame.file or None)
        if proc is None:
            # binary-only code: synthesize structure under <unknown>
            lm = self.structure.add_load_module(_UNKNOWN_MODULE)
            file_scope = self.structure.add_file(lm, frame.file or "<unknown file>")
            proc = self.structure.add_procedure(file_scope, frame.proc, 0)
        self._proc_cache[key] = proc
        return proc

    def _call_line_set(self, proc: StructureNode) -> set[int]:
        lines = self._call_lines.get(proc.uid)
        if lines is None:
            lines = {line for line, _callee in proc.calls} if proc.calls else set()
            self._call_lines[proc.uid] = lines
        return lines

    def _descend_loops(self, node: CCTNode, proc: StructureNode, line: int) -> CCTNode:
        """Create/visit the CCT loop chain enclosing *line* within *proc*."""
        for scope in StructureModel.scope_chain_for_line(proc, line):
            node = node.ensure_loop(scope)
        return node

    def _insert_path(self, frames: list[Frame]) -> CCTNode:
        """Insert a dynamic call path; return the innermost frame scope."""
        if not frames:
            raise CorrelationError("empty call path")
        entry_proc = self._resolve_proc(frames[0])
        node = self.cct.root.ensure_frame(entry_proc)
        caller_proc = entry_proc
        for frame in frames[1:]:
            callee_proc = self._resolve_proc(frame)
            anchor = self._descend_loops(node, caller_proc, frame.call_line)
            site = anchor.ensure_call_site(frame.call_line, struct=caller_proc)
            node = site.ensure_frame(callee_proc)
            caller_proc = callee_proc
        return node

    def _attribute_leaf(self, frame_node: CCTNode, line: int, costs) -> None:
        proc = frame_node.struct
        anchor = self._descend_loops(frame_node, proc, line)
        if line in self._call_line_set(proc):
            leaf = anchor.ensure_call_site(line, struct=proc)
        else:
            leaf = anchor.ensure_statement(line, struct=proc)
        leaf.add_raw(dict(costs))


def correlate(profile: ProfileData, structure: StructureModel) -> CCT:
    """Correlate a single profile, returning its canonical CCT."""
    correlator = Correlator(structure)
    correlator.add_profile(profile)
    return correlator.cct

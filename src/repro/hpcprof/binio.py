"""Compact binary experiment-database format.

The paper's ongoing work includes "replacing our XML format for profiles
with a more compact binary format"; this module implements it.  Two
on-disk versions exist (all integers little-endian):

**v1 (legacy, unframed)** — magic ``RPDB``, u16 version, then the
payload sections concatenated with no framing:

* header: length-prefixed experiment name;
* string table: u32 count, then length-prefixed UTF-8 strings — every
  name/file/formula is stored once and referenced by index;
* metric table: u32 count, then per metric: name/unit/formula/description
  string refs, f64 period, u8 kind, u8 show_percent;
* structure tree: preorder records ``(u8 kind, u32 name, u32 file,
  u32 line, u32 end_line, u16 ncalls [u32 line, u32 callee]..., u32
  nchildren)`` — node ids are implicit preorder positions;
* CCT: preorder records ``(u8 kind, u32 struct_id+1, u32 line, u16 nraw
  [u32 mid, f64]..., u16 nsummary [u8 flavor, u32 mid, f64]..., u32
  nchildren)``.

**v2 (framed, default)** — the same record encodings, but each section
is wrapped in a checksummed frame ``(u8 section id, u32 payload length,
u32 crc32(payload))`` and the structure/CCT payloads lead with a u32
total node count.  The framing is what makes fault-tolerant ingestion
possible (see :mod:`repro.hpcprof.recovery`): a flipped bit is caught
by the section CRC instead of surfacing as a misparse, a corrupt middle
section can be skipped without losing the sections after it, and the
declared node counts let a salvage load report exactly how much of a
truncated tree it recovered.  A zero-length ``END`` frame terminates
the stream so truncation after the last section is detectable.

Readers and writers are iterative (explicit stacks), so arbitrarily
deep call chains — e.g. the 5000-frame recursion regressions — survive
a round trip without tripping the interpreter recursion limit.

Varint-free and mmap-friendly; the size/speed advantage over XML is
quantified by ``benchmarks/bench_database.py`` and the checksum
overhead by ``benchmarks/run_server_bench.py``.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import zlib

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTKind, CCTNode
from repro.errors import (
    CorrelationError,
    DatabaseError,
    MetricError,
    StructureError,
)
from repro.core.metrics import MetricKind, MetricTable
from repro.hpcprof.experiment import Experiment
from repro.hpcstruct.model import (
    SourceLocation,
    StructKind,
    StructureModel,
    StructureNode,
)

__all__ = [
    "write_binary",
    "read_binary",
    "read_binary_streaming",
    "dumps_binary",
    "loads_binary",
    "StreamingDatabase",
    "FORMAT_VERSION",
    "section_frames",
]

_MAGIC = b"RPDB"
_V1 = 1
_V2 = 2
FORMAT_VERSION = _V2

# v2 section ids, in stream order
SEC_NAME = 1
SEC_STRINGS = 2
SEC_METRICS = 3
SEC_STRUCTURE = 4
SEC_CCT = 5
SEC_END = 0xFF

SECTION_NAMES = {
    SEC_NAME: "name",
    SEC_STRINGS: "strings",
    SEC_METRICS: "metrics",
    SEC_STRUCTURE: "structure",
    SEC_CCT: "cct",
    SEC_END: "end",
}

_FRAME_HEADER = struct.Struct("<BII")  # section id, payload length, crc32

_STRUCT_KINDS = list(StructKind)
_CCT_KINDS = list(CCTKind)
_METRIC_KINDS = list(MetricKind)

#: exceptions that single-byte corruption can surface as, converted to
#: DatabaseError at the loads_binary boundary so the loader presents
#: exactly one failure mode for bad bytes
MALFORMED_EXCEPTIONS = (
    IndexError,
    KeyError,
    ValueError,
    OverflowError,
    MemoryError,
    UnicodeDecodeError,
    RecursionError,
    struct.error,
    StructureError,
    CorrelationError,
    MetricError,
)


class _StringTable:
    def __init__(self) -> None:
        self.strings: list[str] = []
        self._index: dict[str, int] = {}

    def ref(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = len(self.strings)
            self.strings.append(s)
            self._index[s] = idx
        return idx


def _pack_str(buf: io.BytesIO, s: str) -> None:
    raw = s.encode("utf-8")
    buf.write(struct.pack("<I", len(raw)))
    buf.write(raw)


class _Reader:
    """A bounds-checked cursor over one buffer (or a slice of one)."""

    def __init__(self, data: bytes, pos: int = 0, end: int | None = None) -> None:
        self.data = data
        self.pos = pos
        self.end = len(data) if end is None else end

    @property
    def remaining(self) -> int:
        return self.end - self.pos

    def unpack(self, fmt: str):
        size = struct.calcsize(fmt)
        if self.pos + size > self.end:
            raise DatabaseError("truncated binary database")
        out = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return out

    def read_str(self) -> str:
        (length,) = self.unpack("<I")
        if self.pos + length > self.end:
            raise DatabaseError("truncated string in binary database")
        raw = self.data[self.pos : self.pos + length]
        self.pos += length
        return raw.decode("utf-8")

    def check_count(self, count: int, min_record: int, what: str) -> None:
        """Reject a hostile count field before looping on it."""
        if count * min_record > self.remaining:
            raise DatabaseError(
                f"implausible {what} count {count} for "
                f"{self.remaining} remaining bytes"
            )


# --------------------------------------------------------------------- #
# section writers (shared by v1 and v2: identical record encodings)
# --------------------------------------------------------------------- #
def _dump_metrics(body: io.BytesIO, metrics: MetricTable, strings: _StringTable) -> None:
    body.write(struct.pack("<I", len(metrics)))
    for desc in metrics:
        body.write(
            struct.pack(
                "<IIIIdBB",
                strings.ref(desc.name),
                strings.ref(desc.unit),
                strings.ref(desc.formula),
                strings.ref(desc.description),
                desc.period,
                _METRIC_KINDS.index(desc.kind),
                1 if desc.show_percent else 0,
            )
        )


def _dump_structure(
    body: io.BytesIO, root: StructureNode, strings: _StringTable
) -> dict[int, int]:
    """Write the structure tree preorder; returns uid -> implicit id."""
    struct_ids: dict[int, int] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        struct_ids[node.uid] = len(struct_ids)
        body.write(
            struct.pack(
                "<BIIII",
                _STRUCT_KINDS.index(node.kind),
                strings.ref(node.name),
                strings.ref(node.location.file),
                node.location.line,
                node.location.end_line,
            )
        )
        body.write(struct.pack("<H", len(node.calls)))
        for line, callee in node.calls:
            body.write(struct.pack("<II", line, strings.ref(callee)))
        body.write(struct.pack("<I", len(node.children)))
        stack.extend(reversed(node.children))
    return struct_ids


def _dump_cct(
    body: io.BytesIO,
    root: CCTNode,
    metrics: MetricTable,
    struct_ids: dict[int, int],
) -> int:
    """Write the CCT preorder; returns the number of nodes written."""
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        count += 1
        sid = struct_ids.get(node.struct.uid, -1) if node.struct is not None else -1
        raw_items = [
            (mid, v)
            for mid, v in sorted(node.raw.items())
            if metrics.by_id(mid).kind is MetricKind.RAW
        ]
        summary_items = [
            (0, mid, v)
            for mid, v in sorted(node.inclusive.items())
            if metrics.by_id(mid).kind is MetricKind.SUMMARY
        ] + [
            (1, mid, v)
            for mid, v in sorted(node.exclusive.items())
            if metrics.by_id(mid).kind is MetricKind.SUMMARY
        ]
        body.write(
            struct.pack(
                "<BIIHH",
                _CCT_KINDS.index(node.kind),
                sid + 1,
                node.line,
                len(raw_items),
                len(summary_items),
            )
        )
        for mid, value in raw_items:
            body.write(struct.pack("<Id", mid, value))
        for flavor, mid, value in summary_items:
            body.write(struct.pack("<BId", flavor, mid, value))
        body.write(struct.pack("<I", len(node.children)))
        stack.extend(reversed(node.children))
    return count


def dumps_binary(experiment: Experiment, version: int = FORMAT_VERSION) -> bytes:
    """Serialize to the framed v2 format (or legacy v1 on request)."""
    if version not in (_V1, _V2):
        raise DatabaseError(f"cannot write binary database version {version}")
    strings = _StringTable()

    metrics_body = io.BytesIO()
    _dump_metrics(metrics_body, experiment.metrics, strings)

    struct_body = io.BytesIO()
    struct_ids = _dump_structure(struct_body, experiment.structure.root, strings)

    cct_body = io.BytesIO()
    node_count = _dump_cct(
        cct_body, experiment.cct.root, experiment.metrics, struct_ids
    )

    # the string table is complete only after every section interned into it
    strings_body = io.BytesIO()
    strings_body.write(struct.pack("<I", len(strings.strings)))
    for s in strings.strings:
        _pack_str(strings_body, s)

    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(struct.pack("<H", version))
    if version == _V1:
        _pack_str(out, experiment.name)
        out.write(strings_body.getvalue())
        out.write(metrics_body.getvalue())
        out.write(struct_body.getvalue())
        out.write(cct_body.getvalue())
        return out.getvalue()

    name_body = io.BytesIO()
    _pack_str(name_body, experiment.name)

    def frame(section_id: int, payload: bytes) -> None:
        out.write(_FRAME_HEADER.pack(section_id, len(payload),
                                     zlib.crc32(payload)))
        out.write(payload)

    frame(SEC_NAME, name_body.getvalue())
    frame(SEC_STRINGS, strings_body.getvalue())
    frame(SEC_METRICS, metrics_body.getvalue())
    frame(SEC_STRUCTURE,
          struct.pack("<I", len(struct_ids)) + struct_body.getvalue())
    frame(SEC_CCT, struct.pack("<I", node_count) + cct_body.getvalue())
    frame(SEC_END, b"")
    return out.getvalue()


def write_binary(experiment: Experiment, path: str,
                 version: int = FORMAT_VERSION) -> None:
    with open(path, "wb") as fh:
        fh.write(dumps_binary(experiment, version=version))


# --------------------------------------------------------------------- #
# section readers (shared by the strict loader and the salvage loader)
# --------------------------------------------------------------------- #
def read_strings(reader: _Reader) -> list[str]:
    (nstrings,) = reader.unpack("<I")
    reader.check_count(nstrings, 4, "string")
    return [reader.read_str() for _ in range(nstrings)]


def read_metrics(reader: _Reader, strings: list[str]) -> MetricTable:
    metrics = MetricTable()
    (nmetrics,) = reader.unpack("<I")
    reader.check_count(nmetrics, struct.calcsize("<IIIIdBB"), "metric")
    for _ in range(nmetrics):
        read_one_metric(reader, strings, metrics)
    return metrics


def read_one_metric(
    reader: _Reader, strings: list[str], metrics: MetricTable
) -> None:
    sname, sunit, sformula, sdesc, period, kind_idx, pct = reader.unpack(
        "<IIIIdBB"
    )
    metrics.add(
        strings[sname],
        unit=strings[sunit],
        period=period,
        kind=_METRIC_KINDS[kind_idx],
        formula=strings[sformula],
        description=strings[sdesc],
        show_percent=bool(pct),
    )


def read_structure(
    reader: _Reader,
    strings: list[str],
    *,
    errors: list[str] | None = None,
) -> tuple[StructureModel, list[StructureNode]]:
    """Read the preorder structure stream iteratively.

    When *errors* is given the reader runs in salvage mode: the first
    malformed record stops the parse with a message appended to *errors*
    and the clean prefix read so far is returned.  Records are parsed
    completely before any node is constructed, so the prefix never
    contains a half-read scope.
    """
    model = StructureModel()
    by_id: list[StructureNode] = []

    def read_one(parent: StructureNode | None) -> tuple[StructureNode, int]:
        kind_idx, sname, sfile, line, end_line = reader.unpack("<BIIII")
        kind = _STRUCT_KINDS[kind_idx]
        name = strings[sname]
        file = strings[sfile]
        (ncalls,) = reader.unpack("<H")
        reader.check_count(ncalls, 8, "call-edge")
        calls = []
        for _ in range(ncalls):
            cline, callee = reader.unpack("<II")
            calls.append((cline, strings[callee]))
        (nchildren,) = reader.unpack("<I")
        reader.check_count(nchildren, 23, "structure child")
        # record fully parsed — only now mutate the model
        if kind is StructKind.ROOT:
            if parent is not None:
                raise DatabaseError("structure root below the root")
            node = model.root
            node.name = name
        else:
            if parent is None:
                raise DatabaseError("structure stream does not start at a root")
            node = StructureNode(
                kind,
                name=name,
                location=SourceLocation(file=file, line=line, end_line=end_line),
                parent=parent,
            )
        node.calls = tuple(calls)
        if kind is StructKind.PROCEDURE:
            model._register_procedure(node)
        by_id.append(node)
        return node, nchildren

    # stack of [node, remaining children to read]
    stack: list[list] = []
    try:
        root, nchildren = read_one(None)
        stack.append([root, nchildren])
        while stack:
            top = stack[-1]
            if top[1] == 0:
                stack.pop()
                continue
            top[1] -= 1
            child, n = read_one(top[0])
            stack.append([child, n])
    except (DatabaseError, *MALFORMED_EXCEPTIONS) as exc:
        if errors is None:
            raise
        errors.append(f"structure: {exc!r}")
    return model, by_id


def read_cct(
    reader: _Reader,
    by_id: list[StructureNode],
    *,
    errors: list[str] | None = None,
) -> tuple[CCT, list[tuple[CCTNode, list[tuple[int, int, float]]]]]:
    """Read the preorder CCT stream iteratively.

    Returns the tree plus the stored summary overlays ``(node, [(flavor,
    mid, value), ...])``; the caller re-applies them after attribution so
    stored summary columns survive the Eq. 1/2 recomputation.  *errors*
    enables salvage mode exactly as in :func:`read_structure`: records
    are parsed completely before the node is attached, and the first
    malformed record ends the recovered prefix.
    """
    cct = CCT()
    stored: list[tuple[CCTNode, list[tuple[int, int, float]]]] = []

    def read_one(parent: CCTNode | None) -> tuple[CCTNode, int]:
        kind_idx, sid, line, nraw, nsummary = reader.unpack("<BIIHH")
        kind = _CCT_KINDS[kind_idx]
        if kind is not CCTKind.ROOT and sid > len(by_id):
            raise DatabaseError(f"CCT references unknown structure id {sid}")
        reader.check_count(nraw, 12, "raw metric")
        raw: dict[int, float] = {}
        for _ in range(nraw):
            mid, value = reader.unpack("<Id")
            raw[mid] = value
        summaries = []
        reader.check_count(nsummary, 13, "summary metric")
        for _ in range(nsummary):
            flavor, mid, value = reader.unpack("<BId")
            summaries.append((flavor, mid, value))
        (nchildren,) = reader.unpack("<I")
        reader.check_count(nchildren, 17, "CCT child")
        # record fully parsed — only now attach the node to the tree
        if kind is CCTKind.ROOT:
            if parent is not None:
                raise DatabaseError("CCT root below the root")
            node = cct.root
        else:
            if parent is None:
                raise DatabaseError("CCT stream does not start at a root")
            struct_ref = by_id[sid - 1] if sid > 0 else None
            node = CCTNode(kind, struct=struct_ref, line=line, parent=parent)
        node.raw.update(raw)
        if summaries:
            stored.append((node, summaries))
        return node, nchildren

    stack: list[list] = []
    try:
        root, nchildren = read_one(None)
        stack.append([root, nchildren])
        while stack:
            top = stack[-1]
            if top[1] == 0:
                stack.pop()
                continue
            top[1] -= 1
            child, n = read_one(top[0])
            stack.append([child, n])
    except (DatabaseError, *MALFORMED_EXCEPTIONS) as exc:
        if errors is None:
            raise
        errors.append(f"cct: {exc!r}")
    return cct, stored


def apply_summaries(
    cct: CCT,
    stored: list[tuple[CCTNode, list[tuple[int, int, float]]]],
) -> None:
    """Overlay stored summary values after :func:`attribute` ran."""
    for node, summaries in stored:
        for flavor, mid, value in summaries:
            store = node.inclusive if flavor == 0 else node.exclusive
            store[mid] = value
    if stored:
        cct.invalidate_caches()


# --------------------------------------------------------------------- #
# reading
# --------------------------------------------------------------------- #
def loads_binary(data: bytes, verify_checksums: bool = True) -> Experiment:
    """Deserialize, converting any malformed-input failure to DatabaseError.

    Fuzzing showed single-byte corruption can surface as IndexError (bad
    string/struct references), ValueError (bad enum ordinals), Unicode
    errors, RecursionError (corrupted child counts), or MetricError (a
    flipped byte in a descriptor field failing validation); a loader must
    present exactly one failure mode for bad bytes.

    *verify_checksums* (v2 only) can be switched off to measure the CRC
    cost in isolation — production callers always leave it on.
    """
    try:
        return _loads_binary(data, verify_checksums=verify_checksums)
    except DatabaseError:
        raise
    except MALFORMED_EXCEPTIONS as exc:
        raise DatabaseError(f"malformed binary database: {exc!r}") from exc


def read_header(data: bytes) -> int:
    """Check the magic and return the format version."""
    if data[:4] != _MAGIC:
        raise DatabaseError("not a binary experiment database (bad magic)")
    if len(data) < 6:
        raise DatabaseError("truncated binary database")
    (version,) = struct.unpack_from("<H", data, 4)
    if version not in (_V1, _V2):
        raise DatabaseError(f"unsupported binary database version {version}")
    return version


def section_frames(data: bytes) -> list[tuple[int, int, int, int]]:
    """The v2 frame layout: ``(section id, header offset, payload offset,
    end offset)`` per section, in stream order.

    The fault-injection harness uses this to truncate a database at
    every frame boundary; it does not verify checksums.
    """
    if read_header(data) != _V2:
        raise DatabaseError("section_frames requires a framed v2 database")
    frames = []
    pos = 6
    while pos < len(data):
        if pos + _FRAME_HEADER.size > len(data):
            raise DatabaseError("truncated section header")
        section_id, length, _crc = _FRAME_HEADER.unpack_from(data, pos)
        payload_at = pos + _FRAME_HEADER.size
        if payload_at + length > len(data):
            raise DatabaseError("truncated section payload")
        frames.append((section_id, pos, payload_at, payload_at + length))
        pos = payload_at + length
        if section_id == SEC_END:
            break
    return frames


def _decode_v1(reader: _Reader) -> Experiment:
    """Decode the unframed v1 payload from a positioned reader."""
    name = reader.read_str()
    strings = read_strings(reader)
    metrics = read_metrics(reader, strings)
    model, by_id = read_structure(reader, strings)
    cct, stored = read_cct(reader, by_id)
    return _finish_experiment(name, metrics, model, cct, stored)


def _decode_v2(sections) -> Experiment:
    """Decode framed v2 sections; *sections* maps section id → _Reader.

    Works for both eager slicing (:func:`_read_v2_sections`) and the
    lazy, CRC-on-demand access of :class:`StreamingDatabase` — anything
    with a ``__getitem__`` yielding positioned readers.
    """
    name = sections[SEC_NAME].read_str()
    strings = read_strings(sections[SEC_STRINGS])
    metrics = read_metrics(sections[SEC_METRICS], strings)
    struct_reader = sections[SEC_STRUCTURE]
    (declared_struct,) = struct_reader.unpack("<I")
    model, by_id = read_structure(struct_reader, strings)
    if len(by_id) != declared_struct:
        raise DatabaseError(
            f"structure section declares {declared_struct} nodes, "
            f"parsed {len(by_id)}"
        )
    cct_reader = sections[SEC_CCT]
    (declared_cct,) = cct_reader.unpack("<I")
    cct, stored = read_cct(cct_reader, by_id)
    if len(cct) != declared_cct:
        raise DatabaseError(
            f"CCT section declares {declared_cct} nodes, parsed {len(cct)}"
        )
    return _finish_experiment(name, metrics, model, cct, stored)


def _finish_experiment(name, metrics, model, cct, stored) -> Experiment:
    _check_metric_refs(cct, stored, metrics)
    attribute(cct)
    apply_summaries(cct, stored)
    return Experiment(name, metrics, model, cct)


def _loads_binary(data: bytes, verify_checksums: bool = True) -> Experiment:
    version = read_header(data)
    if version == _V1:
        return _decode_v1(_Reader(data, pos=6))
    return _decode_v2(_read_v2_sections(data, verify_checksums))


def _check_metric_refs(cct: CCT, stored, metrics: MetricTable) -> None:
    """Every metric id the tree references must exist in the table."""
    nmetrics = len(metrics)
    for node in cct.walk():
        for mid in node.raw:
            if not 0 <= mid < nmetrics:
                raise DatabaseError(f"CCT references unknown metric id {mid}")
    for _node, summaries in stored:
        for _flavor, mid, _value in summaries:
            if not 0 <= mid < nmetrics:
                raise DatabaseError(f"CCT references unknown metric id {mid}")


def _read_v2_sections(data: bytes, verify_checksums: bool) -> dict[int, _Reader]:
    """Slice a framed stream into per-section readers, verifying CRCs."""
    sections: dict[int, _Reader] = {}
    saw_end = False
    for section_id, _header_at, payload_at, end in section_frames(data):
        if section_id == SEC_END:
            saw_end = True
            break
        if section_id in sections or section_id not in SECTION_NAMES:
            raise DatabaseError(f"unexpected section id {section_id}")
        if verify_checksums:
            (_sid, _length, crc) = _FRAME_HEADER.unpack_from(
                data, _header_at
            )
            actual = zlib.crc32(data[payload_at:end])
            if actual != crc:
                name = SECTION_NAMES[section_id]
                raise DatabaseError(
                    f"checksum mismatch in {name} section "
                    f"(stored {crc:#010x}, computed {actual:#010x})"
                )
        sections[section_id] = _Reader(data, pos=payload_at, end=end)
    if not saw_end:
        raise DatabaseError("truncated binary database (missing end frame)")
    missing = [
        SECTION_NAMES[sid]
        for sid in (SEC_NAME, SEC_STRINGS, SEC_METRICS, SEC_STRUCTURE, SEC_CCT)
        if sid not in sections
    ]
    if missing:
        raise DatabaseError(f"missing sections: {', '.join(missing)}")
    return sections


def read_binary(path: str) -> Experiment:
    with open(path, "rb") as fh:
        return loads_binary(fh.read())


# --------------------------------------------------------------------- #
# streaming (out-of-core) reading
# --------------------------------------------------------------------- #
class _LazySections:
    """Section-id → reader adapter over a :class:`StreamingDatabase`."""

    __slots__ = ("_db",)

    def __init__(self, db: "StreamingDatabase") -> None:
        self._db = db

    def __getitem__(self, section_id: int) -> _Reader:
        return self._db.section(section_id)


class StreamingDatabase:
    """An open binary database decoded section-by-section on demand.

    The eager loader (:func:`loads_binary`) needs the whole byte string
    in memory before the first record is parsed; for large databases
    that doubles the peak footprint (bytes + decoded tree) and pays the
    read cost even for callers that only want the header or one
    section.  This class instead memory-maps the file: only the frame
    headers are touched at open time, each section's CRC is verified
    the first time that section is read, and the OS pages payload bytes
    in (and out) as the decode cursor moves — the working set is one
    section, not the file.

    Legacy v1 streams (unframed) are supported too: the mapping is
    still lazy, but there is no per-section independence — sections
    decode sequentially on the first :meth:`experiment` call.

    Use as a context manager; decoded experiments own no mapping state
    and stay valid after :meth:`close`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._fh = open(path, "rb")
        except FileNotFoundError:
            raise DatabaseError(f"no such database: {path}") from None
        except IsADirectoryError:
            raise DatabaseError(
                f"database path is a directory: {path}"
            ) from None
        except PermissionError:
            raise DatabaseError(f"database is not readable: {path}") from None
        except OSError as exc:
            raise DatabaseError(f"cannot read database {path}: {exc}") from None
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty or unmappable file
            self._fh.close()
            raise DatabaseError(f"truncated binary database: {path}") from None
        try:
            self.version = read_header(self._mm)
            self._frames: dict[int, tuple[int, int, int]] = {}
            if self.version == _V2:
                for sid, header_at, payload_at, end in section_frames(self._mm):
                    if sid == SEC_END:
                        break
                    if sid in self._frames or sid not in SECTION_NAMES:
                        raise DatabaseError(f"unexpected section id {sid}")
                    self._frames[sid] = (header_at, payload_at, end)
        except Exception:
            self.close()
            raise
        self._verified: set[int] = set()

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "StreamingDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the mapping; previously decoded objects stay valid."""
        mm, self._mm = getattr(self, "_mm", None), None
        if mm is not None:
            mm.close()
        fh, self._fh = getattr(self, "_fh", None), None
        if fh is not None:
            fh.close()

    @property
    def closed(self) -> bool:
        return self._mm is None

    @property
    def size_bytes(self) -> int:
        return os.path.getsize(self.path)

    # ------------------------------------------------------------------ #
    def section(self, section_id: int) -> _Reader:
        """A positioned reader over one v2 section, CRC-checked once."""
        if self._mm is None:
            raise DatabaseError(f"database {self.path} is closed")
        if self.version != _V2:
            raise DatabaseError(
                "per-section access requires a framed v2 database"
            )
        frame = self._frames.get(section_id)
        if frame is None:
            name = SECTION_NAMES.get(section_id, str(section_id))
            raise DatabaseError(f"missing sections: {name}")
        header_at, payload_at, end = frame
        if section_id not in self._verified:
            (_sid, _length, crc) = _FRAME_HEADER.unpack_from(self._mm, header_at)
            actual = zlib.crc32(self._mm[payload_at:end])
            if actual != crc:
                name = SECTION_NAMES[section_id]
                raise DatabaseError(
                    f"checksum mismatch in {name} section "
                    f"(stored {crc:#010x}, computed {actual:#010x})"
                )
            self._verified.add(section_id)
        return _Reader(self._mm, pos=payload_at, end=end)

    def name(self) -> str:
        """The experiment name, decoding only the header section."""
        if self.version == _V1:
            return _Reader(self._mm, pos=6).read_str()
        return self.section(SEC_NAME).read_str()

    def experiment(self) -> Experiment:
        """Decode the full experiment (strict semantics, one section at
        a time), converting malformed input to :class:`DatabaseError`
        exactly like :func:`loads_binary`."""
        if self._mm is None:
            raise DatabaseError(f"database {self.path} is closed")
        try:
            if self.version == _V1:
                return _decode_v1(_Reader(self._mm, pos=6))
            return _decode_v2(_LazySections(self))
        except DatabaseError:
            raise
        except MALFORMED_EXCEPTIONS as exc:
            raise DatabaseError(f"malformed binary database: {exc!r}") from exc


def read_binary_streaming(path: str) -> Experiment:
    """Load a binary database through the mmap-backed streaming reader.

    Strict-mode equivalent of :func:`read_binary` with a bounded byte
    working set; the decoded :class:`Experiment` is identical.
    """
    with StreamingDatabase(path) as db:
        return db.experiment()

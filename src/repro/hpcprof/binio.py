"""Compact binary experiment-database format.

The paper's ongoing work includes "replacing our XML format for profiles
with a more compact binary format"; this module implements it.  Layout
(all integers little-endian):

* header: magic ``RPDB``, u16 version, length-prefixed experiment name;
* string table: u32 count, then length-prefixed UTF-8 strings — every
  name/file/formula is stored once and referenced by index;
* metric table: u32 count, then per metric: name/unit/formula/description
  string refs, f64 period, u8 kind, u8 show_percent;
* structure tree: preorder records ``(u8 kind, u32 name, u32 file,
  u32 line, u32 end_line, u16 ncalls [u32 line, u32 callee]..., u32
  nchildren)`` — node ids are implicit preorder positions;
* CCT: preorder records ``(u8 kind, u32 struct_id+1, u32 line, u16 nraw
  [u32 mid, f64]..., u16 nsummary [u8 flavor, u32 mid, f64]..., u32
  nchildren)``.

Varint-free and mmap-friendly; the size/speed advantage over XML is
quantified by ``benchmarks/bench_database.py``.
"""

from __future__ import annotations

import io
import struct

from repro.core.attribution import attribute
from repro.core.cct import CCT, CCTKind, CCTNode
from repro.core.errors import (
    CorrelationError,
    DatabaseError,
    MetricError,
    StructureError,
)
from repro.core.metrics import MetricKind, MetricTable
from repro.hpcprof.experiment import Experiment
from repro.hpcstruct.model import (
    SourceLocation,
    StructKind,
    StructureModel,
    StructureNode,
)

__all__ = ["write_binary", "read_binary", "dumps_binary", "loads_binary"]

_MAGIC = b"RPDB"
_VERSION = 1

_STRUCT_KINDS = list(StructKind)
_CCT_KINDS = list(CCTKind)
_METRIC_KINDS = list(MetricKind)


class _StringTable:
    def __init__(self) -> None:
        self.strings: list[str] = []
        self._index: dict[str, int] = {}

    def ref(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = len(self.strings)
            self.strings.append(s)
            self._index[s] = idx
        return idx


def _pack_str(buf: io.BytesIO, s: str) -> None:
    raw = s.encode("utf-8")
    buf.write(struct.pack("<I", len(raw)))
    buf.write(raw)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def unpack(self, fmt: str):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise DatabaseError("truncated binary database")
        out = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return out

    def read_str(self) -> str:
        (length,) = self.unpack("<I")
        if self.pos + length > len(self.data):
            raise DatabaseError("truncated string in binary database")
        raw = self.data[self.pos : self.pos + length]
        self.pos += length
        return raw.decode("utf-8")


# --------------------------------------------------------------------- #
# writing
# --------------------------------------------------------------------- #
def dumps_binary(experiment: Experiment) -> bytes:
    strings = _StringTable()
    body = io.BytesIO()

    # -- metric table -------------------------------------------------- #
    metrics = experiment.metrics
    body.write(struct.pack("<I", len(metrics)))
    for desc in metrics:
        body.write(
            struct.pack(
                "<IIIIdBB",
                strings.ref(desc.name),
                strings.ref(desc.unit),
                strings.ref(desc.formula),
                strings.ref(desc.description),
                desc.period,
                _METRIC_KINDS.index(desc.kind),
                1 if desc.show_percent else 0,
            )
        )

    # -- structure ------------------------------------------------------ #
    struct_ids: dict[int, int] = {}

    def write_struct(node: StructureNode) -> None:
        struct_ids[node.uid] = len(struct_ids)
        body.write(
            struct.pack(
                "<BIIII",
                _STRUCT_KINDS.index(node.kind),
                strings.ref(node.name),
                strings.ref(node.location.file),
                node.location.line,
                node.location.end_line,
            )
        )
        body.write(struct.pack("<H", len(node.calls)))
        for line, callee in node.calls:
            body.write(struct.pack("<II", line, strings.ref(callee)))
        body.write(struct.pack("<I", len(node.children)))
        for child in node.children:
            write_struct(child)

    write_struct(experiment.structure.root)

    # -- CCT ------------------------------------------------------------ #
    def write_cct(node: CCTNode) -> None:
        sid = struct_ids.get(node.struct.uid, -1) if node.struct is not None else -1
        raw_items = [
            (mid, v)
            for mid, v in sorted(node.raw.items())
            if metrics.by_id(mid).kind is MetricKind.RAW
        ]
        summary_items = [
            (0, mid, v)
            for mid, v in sorted(node.inclusive.items())
            if metrics.by_id(mid).kind is MetricKind.SUMMARY
        ] + [
            (1, mid, v)
            for mid, v in sorted(node.exclusive.items())
            if metrics.by_id(mid).kind is MetricKind.SUMMARY
        ]
        body.write(
            struct.pack(
                "<BIIHH",
                _CCT_KINDS.index(node.kind),
                sid + 1,
                node.line,
                len(raw_items),
                len(summary_items),
            )
        )
        for mid, value in raw_items:
            body.write(struct.pack("<Id", mid, value))
        for flavor, mid, value in summary_items:
            body.write(struct.pack("<BId", flavor, mid, value))
        body.write(struct.pack("<I", len(node.children)))
        for child in node.children:
            write_cct(child)

    write_cct(experiment.cct.root)

    # -- assemble -------------------------------------------------------- #
    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(struct.pack("<H", _VERSION))
    _pack_str(out, experiment.name)
    out.write(struct.pack("<I", len(strings.strings)))
    for s in strings.strings:
        _pack_str(out, s)
    out.write(body.getvalue())
    return out.getvalue()


def write_binary(experiment: Experiment, path: str) -> None:
    with open(path, "wb") as fh:
        fh.write(dumps_binary(experiment))


# --------------------------------------------------------------------- #
# reading
# --------------------------------------------------------------------- #
def loads_binary(data: bytes) -> Experiment:
    """Deserialize, converting any malformed-input failure to DatabaseError.

    Fuzzing showed single-byte corruption can surface as IndexError (bad
    string/struct references), ValueError (bad enum ordinals), Unicode
    errors, RecursionError (corrupted child counts), or MetricError (a
    flipped byte in a descriptor field failing validation); a loader must
    present exactly one failure mode for bad bytes.
    """
    try:
        return _loads_binary(data)
    except DatabaseError:
        raise
    except (IndexError, KeyError, ValueError, OverflowError, MemoryError,
            UnicodeDecodeError, RecursionError, struct.error,
            StructureError, CorrelationError, MetricError) as exc:
        raise DatabaseError(f"malformed binary database: {exc!r}") from exc


def _loads_binary(data: bytes) -> Experiment:
    reader = _Reader(data)
    if data[:4] != _MAGIC:
        raise DatabaseError("not a binary experiment database (bad magic)")
    reader.pos = 4
    (version,) = reader.unpack("<H")
    if version != _VERSION:
        raise DatabaseError(f"unsupported binary database version {version}")
    name = reader.read_str()
    (nstrings,) = reader.unpack("<I")
    strings = [reader.read_str() for _ in range(nstrings)]

    # -- metric table ----------------------------------------------------- #
    metrics = MetricTable()
    (nmetrics,) = reader.unpack("<I")
    for _ in range(nmetrics):
        sname, sunit, sformula, sdesc, period, kind_idx, pct = reader.unpack("<IIIIdBB")
        metrics.add(
            strings[sname],
            unit=strings[sunit],
            period=period,
            kind=_METRIC_KINDS[kind_idx],
            formula=strings[sformula],
            description=strings[sdesc],
            show_percent=bool(pct),
        )

    # -- structure --------------------------------------------------------- #
    model = StructureModel()
    by_id: list[StructureNode] = []

    def read_struct(parent: StructureNode | None) -> StructureNode:
        kind_idx, sname, sfile, line, end_line = reader.unpack("<BIIII")
        kind = _STRUCT_KINDS[kind_idx]
        if kind is StructKind.ROOT:
            node = model.root
            node.name = strings[sname]
        else:
            node = StructureNode(
                kind,
                name=strings[sname],
                location=SourceLocation(
                    file=strings[sfile], line=line, end_line=end_line
                ),
                parent=parent,
            )
        (ncalls,) = reader.unpack("<H")
        calls = []
        for _ in range(ncalls):
            cline, callee = reader.unpack("<II")
            calls.append((cline, strings[callee]))
        node.calls = tuple(calls)
        if kind is StructKind.PROCEDURE:
            model._register_procedure(node)
        by_id.append(node)
        (nchildren,) = reader.unpack("<I")
        for _ in range(nchildren):
            read_struct(node)
        return node

    read_struct(None)

    # -- CCT ----------------------------------------------------------------- #
    cct = CCT()

    def read_cct(parent: CCTNode | None) -> CCTNode:
        kind_idx, sid, line, nraw, nsummary = reader.unpack("<BIIHH")
        kind = _CCT_KINDS[kind_idx]
        if kind is CCTKind.ROOT:
            node = cct.root
        else:
            struct_ref = by_id[sid - 1] if sid > 0 else None
            node = CCTNode(kind, struct=struct_ref, line=line, parent=parent)
        for _ in range(nraw):
            mid, value = reader.unpack("<Id")
            node.raw[mid] = value
        summaries = []
        for _ in range(nsummary):
            flavor, mid, value = reader.unpack("<BId")
            summaries.append((flavor, mid, value))
        (nchildren,) = reader.unpack("<I")
        for _ in range(nchildren):
            read_cct(node)
        for flavor, mid, value in summaries:
            store = node.inclusive if flavor == 0 else node.exclusive
            store[mid] = value
        return node

    read_cct(None)
    # stored summary values must survive re-attribution, so reapply them
    stored = [
        (node, dict(node.inclusive), dict(node.exclusive)) for node in cct.walk()
        if node.inclusive or node.exclusive
    ]
    attribute(cct)
    for node, incl, excl in stored:
        node.inclusive.update(incl)
        node.exclusive.update(excl)
    return Experiment(name, metrics, model, cct)


def read_binary(path: str) -> Experiment:
    with open(path, "rb") as fh:
        return loads_binary(fh.read())

"""Deterministic fault injection for the resilience test suites.

Everything here is seed-driven and free of wall-clock dependence, so a
failing chaos run reproduces from its seed alone.  See
:mod:`repro.testing.faults`.
"""

from repro.testing.faults import (
    FakeClock,
    FaultPlan,
    apply_fault,
    bit_flip,
    failing,
    fault_plans,
    flaky,
    frame_boundaries,
    patched,
    slow_call,
    truncate,
)

__all__ = [
    "FakeClock",
    "FaultPlan",
    "apply_fault",
    "bit_flip",
    "failing",
    "fault_plans",
    "flaky",
    "frame_boundaries",
    "patched",
    "slow_call",
    "truncate",
]

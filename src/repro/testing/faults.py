"""Seedable fault plans: the deterministic chaos vocabulary.

A :class:`FaultPlan` names one fault to inject — a byte-level corruption
of a serialized database, an exception thrown from inside a pipeline
stage, or a simulated slowdown — plus the seed-derived parameters that
make it reproducible.  The chaos suite generates hundreds of plans from
a base seed (:func:`fault_plans`), applies each
(:func:`apply_fault`, :func:`patched`), and asserts the system-wide
invariants: structured errors only, no tainted caches, salvage never
crashes.  A failing case is reproduced by its plan's ``describe()``
string alone; nothing depends on wall-clock time or global RNG state.

The injectors are deliberately tiny and stdlib-only:

* :func:`bit_flip` / :func:`truncate` / :func:`apply_fault` — byte-level
  corruption of a serialized database;
* :func:`frame_boundaries` — the v2 section-frame offsets of a database,
  for exhaustive boundary truncation;
* :func:`patched` — a context-managed attribute swap (monkeypatching
  without pytest, usable inside helper processes and Hypothesis bodies);
* :func:`failing` / :func:`flaky` — callables that raise (always, or the
  first *n* times) to inject exceptions inside view construction;
* :func:`slow_call` — wrap a function with a simulated slow stage that
  cooperates with the deadline watchdog via ``checkpoint()``;
* :class:`FakeClock` — a manually-advanced monotonic clock for
  deterministic deadline-expiry and TTL-eviction tests;
* :func:`crash_point` / :func:`crashing_at` / :data:`REPRO_CRASH_POINT`
  — named kill-anywhere crash points inside multi-step state
  transitions (corpus ingest/compact/evict), either hard-killing the
  process via an environment variable (real ``SIGKILL`` batteries) or
  raising :class:`CrashPointHit` in-process (fast batteries that leave
  the identical on-disk state).
"""

from __future__ import annotations

import os
import random
import signal
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.hpcprof import binio

__all__ = [
    "FAULT_KINDS",
    "CrashPointHit",
    "FakeClock",
    "FaultPlan",
    "REPRO_CRASH_POINT",
    "apply_fault",
    "bit_flip",
    "crash_point",
    "crash_points",
    "crashing_at",
    "failing",
    "fault_plans",
    "flaky",
    "frame_boundaries",
    "patched",
    "register_crash_points",
    "slow_call",
    "truncate",
]

#: the fault vocabulary; ``fault_plans`` cycles through these
FAULT_KINDS = (
    "bit-flip",       # flip one bit somewhere in the database bytes
    "truncate",       # cut the database at an arbitrary offset
    "truncate-frame", # cut the database exactly at a section boundary
    "garble-run",     # overwrite a short run of bytes with noise
    "exception",      # raise from inside view construction
    "slow-render",    # make a render stage consume the request deadline
)


# --------------------------------------------------------------------- #
# byte-level corruption primitives
# --------------------------------------------------------------------- #
def bit_flip(data: bytes, offset: int, bit: int = 0) -> bytes:
    """*data* with bit *bit* of byte *offset* inverted."""
    if not 0 <= offset < len(data):
        raise ValueError(f"offset {offset} outside [0, {len(data)})")
    out = bytearray(data)
    out[offset] ^= 1 << (bit & 7)
    return bytes(out)


def truncate(data: bytes, offset: int) -> bytes:
    """The first *offset* bytes of *data* (a torn write / short read)."""
    return data[: max(0, offset)]


def frame_boundaries(data: bytes) -> list[int]:
    """Every v2 frame-boundary offset of *data*, ends inclusive.

    Truncating at any returned offset tears the database exactly
    between or inside section frames — the cut points salvage promises
    to recover a validated prefix from.
    """
    offsets: set[int] = {0, len(data)}
    for _sid, header, payload, end in binio.section_frames(data):
        offsets.update((header, payload, end))
    return sorted(o for o in offsets if 0 <= o <= len(data))


# --------------------------------------------------------------------- #
# fault plans
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultPlan:
    """One reproducible fault: a kind plus seed-derived parameters.

    ``position`` and ``magnitude`` are unit-interval floats scaled to
    the target at application time (a byte offset within the database,
    a run length, a delay fraction), so one plan applies meaningfully
    to databases of any size.
    """

    seed: int
    kind: str
    position: float
    magnitude: float
    bit: int

    def describe(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, kind={self.kind!r}, "
            f"position={self.position:.6f}, magnitude={self.magnitude:.6f}, "
            f"bit={self.bit})"
        )


def fault_plans(n: int, base_seed: int = 0xC0FFEE) -> list[FaultPlan]:
    """*n* deterministic plans cycling the fault vocabulary.

    Same ``(n, base_seed)`` → byte-identical plan list, on any machine;
    each plan's own parameters come from an RNG seeded with
    ``base_seed + index`` so a single plan regenerates without the rest.
    """
    plans = []
    for index in range(n):
        rng = random.Random(base_seed + index)
        plans.append(
            FaultPlan(
                seed=base_seed + index,
                kind=FAULT_KINDS[index % len(FAULT_KINDS)],
                position=rng.random(),
                magnitude=rng.random(),
                bit=rng.randrange(8),
            )
        )
    return plans


def apply_fault(data: bytes, plan: FaultPlan) -> bytes:
    """Corrupt *data* per *plan* (byte-level kinds only).

    Non-byte kinds (``exception``, ``slow-render``) return *data*
    unchanged — those faults are injected at the pipeline layer with
    :func:`patched`, not into the serialized form.
    """
    if not data:
        return data
    offset = min(len(data) - 1, int(plan.position * len(data)))
    if plan.kind == "bit-flip":
        return bit_flip(data, offset, plan.bit)
    if plan.kind == "truncate":
        return truncate(data, offset)
    if plan.kind == "truncate-frame":
        cuts = frame_boundaries(data)
        return truncate(data, cuts[min(len(cuts) - 1, int(plan.position * len(cuts)))])
    if plan.kind == "garble-run":
        run = 1 + int(plan.magnitude * 16)
        rng = random.Random(plan.seed)
        out = bytearray(data)
        for i in range(offset, min(len(out), offset + run)):
            out[i] = rng.randrange(256)
        return bytes(out)
    return data


# --------------------------------------------------------------------- #
# pipeline-level injection
# --------------------------------------------------------------------- #
@contextmanager
def patched(target: object, name: str, value: object):
    """Swap ``target.name`` for *value* inside the block, then restore.

    Monkeypatching without pytest: usable inside Hypothesis bodies,
    nested context stacks, and plain scripts.
    """
    sentinel = object()
    original = getattr(target, name, sentinel)
    setattr(target, name, value)
    try:
        yield
    finally:
        if original is sentinel:
            delattr(target, name)
        else:
            setattr(target, name, original)


def failing(exc: Exception | type[Exception]) -> Callable:
    """A callable that always raises *exc* (any signature)."""

    def _fail(*args, **kwargs):
        raise exc if isinstance(exc, Exception) else exc()

    return _fail


def flaky(fn: Callable, failures: int, exc: type[Exception] = RuntimeError) -> Callable:
    """Wrap *fn* to raise for its first *failures* calls, then pass through.

    The retry-client tests use this as a scripted transport: shed twice,
    then succeed.
    """
    remaining = [failures]

    def _flaky(*args, **kwargs):
        if remaining[0] > 0:
            remaining[0] -= 1
            raise exc(f"injected failure ({remaining[0]} more to come)")
        return fn(*args, **kwargs)

    return _flaky


def slow_call(
    fn: Callable,
    clock: "FakeClock",
    cost_s: float,
    steps: int = 10,
    what: str = "slow stage",
) -> Callable:
    """Wrap *fn* as a cooperative slow stage (simulated slow I/O).

    Each call advances *clock* by ``cost_s`` in *steps* increments,
    calling :func:`repro.server.deadline.checkpoint` between increments —
    exactly how a well-behaved long-running stage yields to the
    watchdog.  With a request deadline installed on the same clock, the
    call aborts mid-"I/O" with ``DeadlineExceeded`` once the budget is
    spent; without one, it completes and delegates to *fn*.
    """
    from repro.server.deadline import checkpoint

    def _slow(*args, **kwargs):
        for _ in range(steps):
            clock.advance(cost_s / steps)
            checkpoint(what)
        return fn(*args, **kwargs)

    return _slow


# --------------------------------------------------------------------- #
# named crash points (kill-anywhere batteries)
# --------------------------------------------------------------------- #
#: environment variable naming the crash point at which the process
#: hard-kills itself (``SIGKILL`` — no cleanup handlers, no flushing),
#: exactly like an external ``kill -9`` landing at that instruction.
REPRO_CRASH_POINT = "REPRO_CRASH_POINT"

#: every crash-point name declared via :func:`register_crash_points`;
#: batteries iterate this so new points are covered automatically.
_CRASH_POINTS: set[str] = set()

#: in-process crash handler installed by :func:`crashing_at` (or ``None``)
_crash_handler: Callable[[str], None] | None = None


class CrashPointHit(BaseException):
    """In-process stand-in for ``kill -9`` at a named crash point.

    Derives from ``BaseException`` so no ``except Exception`` cleanup
    path can swallow it — from the moment it is raised, the on-disk
    state is identical to a real ``SIGKILL`` at that instruction.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name


def register_crash_points(*names: str) -> None:
    """Declare crash-point names so batteries can enumerate them."""
    _CRASH_POINTS.update(names)


def crash_points(prefix: str = "") -> list[str]:
    """All registered crash-point names, optionally filtered by prefix."""
    return sorted(n for n in _CRASH_POINTS if n.startswith(prefix))


def crash_point(name: str) -> None:
    """Die here if this crash point is armed; otherwise a no-op.

    Two arming mechanisms, checked in order:

    1. an in-process handler installed by :func:`crashing_at` — raises
       :class:`CrashPointHit` (fast batteries, hundreds of crashes per
       second, identical on-disk state to a kill);
    2. the :data:`REPRO_CRASH_POINT` environment variable — the process
       sends itself ``SIGKILL`` (subprocess batteries and the tier-1
       smoke stage, exercising the real no-cleanup path).
    """
    handler = _crash_handler
    if handler is not None:
        handler(name)
        return
    if os.environ.get(REPRO_CRASH_POINT) == name:
        os.kill(os.getpid(), signal.SIGKILL)


@contextmanager
def crashing_at(name: str) -> Iterator[None]:
    """Arm *name* in-process for the block: reaching it raises
    :class:`CrashPointHit`."""
    global _crash_handler

    def _hit(reached: str) -> None:
        if reached == name:
            raise CrashPointHit(reached)

    previous = _crash_handler
    _crash_handler = _hit
    try:
        yield
    finally:
        _crash_handler = previous


class FakeClock:
    """A monotonic clock advanced by hand; drop-in for ``time.monotonic``."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("clocks only move forward")
        self.now += dt
        return self.now

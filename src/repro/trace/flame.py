"""Flame-chart slabs and time-binned imbalance series over traces.

Both functions accept either backend — an in-memory
:class:`~repro.trace.model.TraceSet` or an on-disk
:class:`~repro.trace.store.TraceStore` — through the shared windowing
protocol (``events_window`` / ``window_ticks``), so the server's
``/v1/trace`` endpoint is storage-agnostic.

A **flame slab** is the per-depth span decomposition of one rank's
window: consecutive events that share the same call-path prefix up to a
depth merge into one span at that depth.  Spans carry their time
extent plus an exact per-metric tick total, materialized once — the
same integer-exactness discipline as window queries.  The slab ships
as a :class:`~repro.server.wire.TableSnapshot` (rows of
``[scope, depth, begin, end, value]``), which is precisely the shape
the columnar wire encoder frames, so ``/v1/trace`` negotiates
``application/x-repro-columnar`` for free.

The **idleness series** bins the window into equal-width intervals and
reports, per bin, per-rank busy time reduced to mean/max plus the two
derived ratios the imbalance literature uses: ``idleness = 1 -
mean/max`` (the fraction of aggregate capacity wasted waiting on the
slowest rank) and ``imbalance = max/mean - 1``.  A phase shift shows
as a step in the per-bin profile; a straggler rank shows as rising
idleness late in the run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TraceError
from repro.server.wire import TableSnapshot
from repro.trace.model import check_window

__all__ = ["flame_slab", "flame_snapshot", "idleness_series"]


def _duration_seconds(source, ticks: np.ndarray) -> np.ndarray:
    """Per-event trace-time extents from the designated time metric."""
    tm = source.time_metric
    unit = source.resolutions[tm] * source.time_scale
    return ticks[:, tm].astype(np.float64) * unit


def flame_slab(
    source,
    rank: int = 0,
    t0: float | None = None,
    t1: float | None = None,
    metric: str | None = None,
    max_spans: int = 2000,
) -> dict:
    """Per-depth span arrays of one rank's window.

    Returns ``{"rank", "t0", "t1", "metric", "depths": [[span, ...],
    ...], "span_count", "truncated"}`` where each span is
    ``{"name", "file", "begin", "end", "value"}`` (value = the span's
    exact metric total, ticks x resolution).  ``depths[d]`` lists the
    spans at call-path depth ``d`` in time order.
    """
    if max_spans < 1:
        raise TraceError(f"max_spans must be >= 1, got {max_spans}")
    metrics = source.metrics
    mid = (
        metrics.by_name(metric).mid
        if metric is not None
        else source.time_metric
    )
    resolution = source.resolutions[mid]
    times, ctx_ids, ticks = source.events_window(rank, t0, t1)
    durs = _duration_seconds(source, ticks)
    contexts = source.contexts
    paths = [contexts[int(ci)][0] for ci in ctx_ids]

    max_depth = max((len(p) for p in paths), default=0)
    depth_spans: list[list[dict]] = [[] for _ in range(max_depth)]
    # open[d] = [frames-prefix, begin, end, tick_total]
    open_spans: list[list | None] = [None] * max_depth
    span_count = 0
    truncated = 0

    def close(d: int) -> None:
        nonlocal span_count, truncated
        span = open_spans[d]
        open_spans[d] = None
        if span is None:
            return
        if span_count >= max_spans:
            truncated += 1
            return
        frame = span[0][d]
        depth_spans[d].append(
            {
                "name": frame.proc,
                "file": frame.file,
                "begin": span[1],
                "end": span[2],
                "value": int(span[3]) * resolution,
            }
        )
        span_count += 1

    prev_path: tuple | None = None
    for i in range(len(times)):
        p = paths[i]
        begin = float(times[i])
        end = begin + float(durs[i])
        event_ticks = int(ticks[i, mid])
        for d in range(len(p)):
            span = open_spans[d]
            if (
                span is not None
                and prev_path is not None
                and len(prev_path) > d
                and prev_path[: d + 1] == p[: d + 1]
            ):
                span[2] = max(span[2], end)
                span[3] += event_ticks
            else:
                close(d)
                open_spans[d] = [p, begin, end, event_ticks]
        for d in range(len(p), max_depth):
            close(d)
        prev_path = p
    for d in range(max_depth):
        close(d)

    lo, hi = check_window(t0, t1)
    return {
        "rank": rank,
        "t0": None if math.isinf(lo) else lo,
        "t1": None if math.isinf(hi) else hi,
        "metric": metrics.by_id(mid).name,
        "event_count": int(len(times)),
        "span_count": span_count,
        "truncated": truncated,
        "depths": depth_spans,
    }


def flame_snapshot(slab: dict) -> TableSnapshot:
    """A flame slab as a wire table: ``[scope, depth, begin, end, value]``.

    The row order (depth-major, time within a depth) and the float
    values are exactly those of the ``depths`` arrays, so the columnar
    encoding decodes to the same cells the JSON response carries.
    """
    names: list[str] = []
    depths: list[int] = []
    rows: list[list[float]] = []
    for d, spans in enumerate(slab["depths"]):
        for span in spans:
            names.append(span["name"])
            depths.append(d)
            rows.append([span["begin"], span["end"], span["value"]])
    values = (
        np.asarray(rows, dtype=np.float64)
        if rows
        else np.zeros((0, 3), dtype=np.float64)
    )
    return TableSnapshot(
        view="trace-flame",
        generation=0,
        names=tuple(names),
        depths=np.asarray(depths, dtype=np.int64),
        labels=("begin", "end", slab["metric"]),
        values=values,
        truncated=slab["truncated"],
    )


def idleness_series(
    source,
    t0: float | None = None,
    t1: float | None = None,
    bins: int = 32,
) -> dict:
    """Time-binned busy/idleness/imbalance over all ranks of a window.

    Each event's time extent is distributed across the bins it overlaps
    (proportionally), yielding per-rank busy seconds per bin; the
    reductions are ``idleness = 1 - mean/max`` and ``imbalance =
    max/mean - 1`` (0 where the bin is empty).
    """
    if bins < 1:
        raise TraceError(f"bins must be >= 1, got {bins}")
    lo, hi = check_window(t0, t1)
    if math.isinf(lo):
        if source.t_begin is None:
            raise TraceError("cannot bin an empty trace without bounds")
        lo = float(source.t_begin)
    if math.isinf(hi):
        if source.t_end is None:
            raise TraceError("cannot bin an empty trace without bounds")
        # include the extent of the last events
        hi = float(source.t_end)
        for r in range(source.nranks):
            times, _ctx, ticks = source.events_window(r, None, None)
            if len(times):
                durs = _duration_seconds(source, ticks)
                hi = max(hi, float(np.max(times + durs)))
    if not hi > lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    width = (hi - lo) / bins

    busy = np.zeros((source.nranks, bins), dtype=np.float64)
    for r in range(source.nranks):
        times, _ctx, ticks = source.events_window(r, t0, t1)
        if not len(times):
            continue
        durs = _duration_seconds(source, ticks)
        begins = np.clip(times, lo, hi)
        ends = np.clip(times + durs, lo, hi)
        first = np.clip(((begins - lo) / width).astype(np.int64), 0, bins - 1)
        last = np.clip(((ends - lo) / width).astype(np.int64), 0, bins - 1)
        for i in range(len(times)):
            b0, b1 = int(first[i]), int(last[i])
            if ends[i] <= begins[i]:
                continue
            if b0 == b1:
                busy[r, b0] += ends[i] - begins[i]
                continue
            for b in range(b0, b1 + 1):
                seg_lo = max(begins[i], edges[b])
                seg_hi = min(ends[i], edges[b + 1])
                if seg_hi > seg_lo:
                    busy[r, b] += seg_hi - seg_lo

    mean = busy.mean(axis=0)
    peak = busy.max(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        idleness = np.where(peak > 0, 1.0 - mean / np.where(peak > 0, peak, 1.0), 0.0)
        imbalance = np.where(mean > 0, peak / np.where(mean > 0, mean, 1.0) - 1.0, 0.0)
    return {
        "t0": float(lo),
        "t1": float(hi),
        "bins": bins,
        "nranks": source.nranks,
        "edges": edges.tolist(),
        "mean_busy": mean.tolist(),
        "max_busy": peak.tolist(),
        "idleness": idleness.tolist(),
        "imbalance": imbalance.tolist(),
    }

"""The time dimension: timestamped call-path traces and windowed CCTs.

* :mod:`repro.trace.model` — in-memory event streams
  (:class:`TraceData`, :class:`TraceSet`) with exact int64-tick costs
  and ``window(t0, t1)`` materialization.
* :mod:`repro.trace.store` — chunked time-partitioned on-disk storage
  with pre-aggregated per-chunk CCT slabs and manifest-last commits.
* :mod:`repro.trace.flame` — flame-chart slabs and the time-binned
  idleness/imbalance series behind ``/v1/trace``.

See ``docs/traces.md`` for the full design.
"""

from repro.trace.flame import flame_slab, flame_snapshot, idleness_series
from repro.trace.model import (
    DEFAULT_RESOLUTION,
    TIME_RESOLUTION,
    TraceData,
    TraceSet,
    materialize_profile,
    quantize,
)
from repro.trace.store import (
    CRASH_POINTS,
    TRACE_FORMAT,
    TraceStore,
    create_trace_store,
    is_trace_path,
    open_trace,
)

__all__ = [
    "DEFAULT_RESOLUTION",
    "TIME_RESOLUTION",
    "TraceData",
    "TraceSet",
    "TraceStore",
    "TRACE_FORMAT",
    "CRASH_POINTS",
    "create_trace_store",
    "flame_slab",
    "flame_snapshot",
    "idleness_series",
    "is_trace_path",
    "materialize_profile",
    "open_trace",
    "quantize",
]

"""Timestamped call-path traces — the time dimension over the CCT.

A profile answers *where* time went; a trace also answers *when*.  This
module holds the in-memory trace model: per-rank streams of timestamped
call-path samples (:class:`TraceData`) and the multi-rank bundle
(:class:`TraceSet`) that materializes time-windowed CCTs through the
exact same correlation pipeline the untimed profiles use.

Exactness is the load-bearing design decision.  Windowed results must
be **bit-identical** whether they are computed from in-memory events or
from the chunked on-disk store (:mod:`repro.trace.store`), and disjoint
windows covering the trace must sum *exactly* to the whole-trace CCT.
Floating-point addition is non-associative, so event costs are carried
as **int64 ticks** with a per-metric float ``resolution``: the
materialized value of a scope is ``total_ticks * resolution``, computed
once after an exact integer sum.  Integer sums are order-independent,
so every backend and every partition of the event stream produces the
same float64 values down to the last bit.  Timestamps are float64
seconds; they are only ever *compared* (``t0 <= t < t1``), never
summed, so they carry no rounding hazard.

``window(None, None)`` materializes every event — by construction it
is the trace's untimed profile (:meth:`TraceData.profile` with no
bounds), which is the contract the query layer and the property suite
pin.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import TraceError
from repro.core.metrics import MetricTable
from repro.hpcrun.profile_data import Frame, ProfileData

__all__ = [
    "DEFAULT_RESOLUTION",
    "TIME_RESOLUTION",
    "TraceData",
    "TraceSet",
    "materialize_profile",
    "quantize",
]

#: Default cost resolution: one tick is 2**-20 metric units.  Dyadic on
#: purpose — ``ticks * DEFAULT_RESOLUTION`` is an *exact* float64
#: product for every |ticks| < 2**53, so quantized costs materialize
#: without rounding.
DEFAULT_RESOLUTION = 2.0 ** -20

#: Resolution for wall-clock metrics measured in seconds: one tick is
#: one nanosecond.
TIME_RESOLUTION = 1e-9

_TICK_LIMIT = 2 ** 62  # leave headroom below int64 overflow for sums


def quantize(value: float, resolution: float = DEFAULT_RESOLUTION) -> int:
    """The tick count nearest to *value* at *resolution*."""
    ticks = round(value / resolution)
    if not -_TICK_LIMIT < ticks < _TICK_LIMIT:
        raise TraceError(
            f"cost {value!r} overflows int64 ticks at resolution {resolution!r}"
        )
    return int(ticks)


def materialize_profile(
    ticks: np.ndarray,
    contexts: Sequence[tuple[tuple[Frame, ...], int]],
    metrics: MetricTable,
    resolutions: Mapping[int, float],
    rank: int = 0,
    program: str = "",
) -> ProfileData:
    """Turn a per-context tick matrix into a :class:`ProfileData`.

    *ticks* is ``(n_contexts, n_metrics)`` int64; row *i* belongs to
    ``contexts[i]``.  Each non-zero cell materializes exactly once as
    ``ticks * resolution`` — no float accumulation happens here, which
    is what makes every caller (in-memory window, chunked store,
    partition-of-windows) agree bit for bit.
    """
    profile = ProfileData(metrics, rank=rank, program=program)
    n_metrics = ticks.shape[1] if ticks.ndim == 2 else 0
    for ci, (frames, leaf_line) in enumerate(contexts):
        row = ticks[ci]
        costs: dict[int, float] = {}
        for mid in range(n_metrics):
            t = int(row[mid])
            if t:
                costs[mid] = t * resolutions[mid]
        if costs:
            profile.add_sample(frames, leaf_line, costs)
    return profile


def _bound(t: float | None, default: float) -> float:
    if t is None:
        return default
    t = float(t)
    if math.isnan(t):
        raise TraceError("window bound must not be NaN")
    return t


def check_window(t0: float | None, t1: float | None) -> tuple[float, float]:
    """Validate and normalize window bounds to ``(-inf, +inf)`` floats."""
    lo = _bound(t0, -math.inf)
    hi = _bound(t1, math.inf)
    if lo > hi:
        raise TraceError(f"window is inverted: t0={t0!r} > t1={t1!r}")
    return lo, hi


class TraceData:
    """One rank's timestamped call-path sample stream.

    Events are recorded via :meth:`record` and frozen with
    :meth:`seal`, after which the trace exposes sorted columnar arrays
    (``times`` float64, ``ctx_ids`` int64, ``ticks`` int64
    ``(n_events, n_metrics)``) and answers window queries.

    Parameters
    ----------
    metrics:
        The metric table; event ticks are keyed by metric id.
    resolutions:
        Optional per-metric tick resolution overrides (metric id ->
        units per tick); defaults to :data:`DEFAULT_RESOLUTION`.
    time_metric:
        Metric id whose ticks measure the passage of trace time (used
        to reconstruct event durations for flame charts).
    time_scale:
        Seconds of trace time per materialized unit of the time metric.
    """

    def __init__(
        self,
        metrics: MetricTable,
        resolutions: Mapping[int, float] | None = None,
        rank: int = 0,
        program: str = "",
        time_metric: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        self.metrics = metrics
        self.rank = rank
        self.program = program
        self.resolutions: dict[int, float] = {
            mid: DEFAULT_RESOLUTION for mid in range(len(metrics))
        }
        if resolutions:
            for mid, res in resolutions.items():
                if mid not in self.resolutions:
                    raise TraceError(f"resolution for unknown metric id {mid}")
                if not (res > 0 and math.isfinite(res)):
                    raise TraceError(f"resolution must be positive, got {res!r}")
                self.resolutions[mid] = float(res)
        if len(metrics) and not (0 <= time_metric < len(metrics)):
            raise TraceError(f"time_metric id {time_metric} out of range")
        self.time_metric = time_metric
        self.time_scale = float(time_scale)

        self._contexts: list[tuple[tuple[Frame, ...], int]] = []
        self._ctx_index: dict[tuple, int] = {}
        self._rec_times: list[float] = []
        self._rec_ctx: list[int] = []
        self._rec_ticks: list[list[int]] = []
        self._sealed = False
        self.times: np.ndarray | None = None
        self.ctx_ids: np.ndarray | None = None
        self.ticks: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def intern_context(self, frames: Sequence[Frame], leaf_line: int) -> int:
        """The stable integer id of a ``(call path, leaf line)`` context."""
        key = (tuple(f.key for f in frames), leaf_line)
        ci = self._ctx_index.get(key)
        if ci is None:
            if not frames:
                raise TraceError("a trace event needs at least one frame")
            ci = len(self._contexts)
            self._contexts.append((tuple(frames), int(leaf_line)))
            self._ctx_index[key] = ci
        return ci

    def record(
        self,
        frames: Sequence[Frame],
        leaf_line: int,
        t: float,
        ticks: Mapping[int, int],
    ) -> None:
        """Record one timestamped sample.

        *frames* runs outermost-first (like
        :meth:`ProfileData.add_sample`); *t* is the sample timestamp in
        trace seconds; *ticks* maps metric id -> integer tick cost.
        """
        if self._sealed:
            raise TraceError("trace is sealed; no further events")
        t = float(t)
        if not math.isfinite(t) or t < 0.0:
            raise TraceError(f"event timestamp must be finite and >= 0, got {t!r}")
        ci = self.intern_context(frames, leaf_line)
        row = [0] * len(self.metrics)
        for mid, count in ticks.items():
            if not (0 <= mid < len(self.metrics)):
                raise TraceError(f"event ticks for unknown metric id {mid}")
            count = int(count)
            if not -_TICK_LIMIT < count < _TICK_LIMIT:
                raise TraceError(f"tick count {count} overflows int64 headroom")
            row[mid] = count
        self._rec_times.append(t)
        self._rec_ctx.append(ci)
        self._rec_ticks.append(row)

    def seal(self) -> "TraceData":
        """Freeze the stream: sort events by time, build the arrays.

        The metric table may have grown while recording (the sim
        executor registers metrics lazily); earlier events are padded
        with zero ticks for the late columns and late metrics pick up
        the default resolution.
        """
        if self._sealed:
            return self
        n = len(self._rec_times)
        width = len(self.metrics)
        for mid in range(width):
            self.resolutions.setdefault(mid, DEFAULT_RESOLUTION)
        times = np.asarray(self._rec_times, dtype=np.float64)
        ctx = np.asarray(self._rec_ctx, dtype=np.int64)
        ticks = np.zeros((n, width), dtype=np.int64)
        for i, row in enumerate(self._rec_ticks):
            ticks[i, : len(row)] = row
        order = np.argsort(times, kind="stable")
        self.times = times[order]
        self.ctx_ids = ctx[order]
        self.ticks = ticks[order]
        self._rec_times = []
        self._rec_ctx = []
        self._rec_ticks = []
        self._sealed = True
        return self

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def n_events(self) -> int:
        self._require_sealed()
        return len(self.times)

    @property
    def contexts(self) -> list[tuple[tuple[Frame, ...], int]]:
        return list(self._contexts)

    @property
    def t_begin(self) -> float | None:
        self._require_sealed()
        return float(self.times[0]) if len(self.times) else None

    @property
    def t_end(self) -> float | None:
        self._require_sealed()
        return float(self.times[-1]) if len(self.times) else None

    def _require_sealed(self) -> None:
        if not self._sealed:
            raise TraceError("trace must be sealed first (call seal())")

    # ------------------------------------------------------------------ #
    # windowing
    # ------------------------------------------------------------------ #
    def window_slice(self, t0: float | None, t1: float | None) -> slice:
        """Index slice of events with ``t0 <= t < t1`` (None = unbounded)."""
        self._require_sealed()
        lo, hi = check_window(t0, t1)
        start = int(np.searchsorted(self.times, lo, side="left"))
        stop = int(np.searchsorted(self.times, hi, side="left"))
        return slice(start, stop)

    def window_ticks(
        self, t0: float | None = None, t1: float | None = None
    ) -> np.ndarray:
        """Exact int64 ``(n_contexts, n_metrics)`` tick sums over a window."""
        sel = self.window_slice(t0, t1)
        out = np.zeros(
            (len(self._contexts), self.ticks.shape[1]), dtype=np.int64
        )
        np.add.at(out, self.ctx_ids[sel], self.ticks[sel])
        return out

    def profile(
        self, t0: float | None = None, t1: float | None = None
    ) -> ProfileData:
        """Materialize the (optionally windowed) untimed profile."""
        return materialize_profile(
            self.window_ticks(t0, t1),
            self._contexts,
            self.metrics,
            self.resolutions,
            rank=self.rank,
            program=self.program,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.n_events} events" if self._sealed else "recording"
        return (
            f"<TraceData rank={self.rank} {state}, "
            f"{len(self._contexts)} contexts>"
        )


class TraceSet:
    """A multi-rank trace with one shared context table.

    The per-rank :class:`TraceData` context ids are remapped into one
    global table (rank order, first-seen order within a rank) so window
    tick matrices are directly comparable — and byte-comparable — with
    the chunked store, which persists exactly this table.
    """

    def __init__(
        self,
        traces: Sequence[TraceData],
        structure,
        name: str = "trace",
    ) -> None:
        if not traces:
            raise TraceError("a TraceSet needs at least one rank trace")
        self.traces = [t.seal() for t in traces]
        self.structure = structure
        self.name = name
        first = self.traces[0]
        for t in self.traces[1:]:
            if t.metrics.names() != first.metrics.names():
                raise TraceError("rank traces disagree on metric tables")
            if t.resolutions != first.resolutions:
                raise TraceError("rank traces disagree on tick resolutions")
            if (t.time_metric, t.time_scale) != (
                first.time_metric,
                first.time_scale,
            ):
                raise TraceError("rank traces disagree on the time metric")
        self.metrics = first.metrics
        self.resolutions = dict(first.resolutions)
        self.time_metric = first.time_metric
        self.time_scale = first.time_scale
        self.program = first.program

        # global context table + per-rank remap vectors
        self.contexts: list[tuple[tuple[Frame, ...], int]] = []
        index: dict[tuple, int] = {}
        self._remap: list[np.ndarray] = []
        for t in self.traces:
            local = np.zeros(len(t._contexts), dtype=np.int64)
            for ci, (frames, leaf_line) in enumerate(t._contexts):
                key = (tuple(f.key for f in frames), leaf_line)
                gi = index.get(key)
                if gi is None:
                    gi = len(self.contexts)
                    self.contexts.append((frames, leaf_line))
                    index[key] = gi
                local[ci] = gi
            self._remap.append(local)

    # ------------------------------------------------------------------ #
    @property
    def nranks(self) -> int:
        return len(self.traces)

    @property
    def n_events(self) -> int:
        return sum(t.n_events for t in self.traces)

    @property
    def t_begin(self) -> float | None:
        begins = [t.t_begin for t in self.traces if t.t_begin is not None]
        return min(begins) if begins else None

    @property
    def t_end(self) -> float | None:
        ends = [t.t_end for t in self.traces if t.t_end is not None]
        return max(ends) if ends else None

    # ------------------------------------------------------------------ #
    def window_ticks(
        self, t0: float | None = None, t1: float | None = None
    ) -> np.ndarray:
        """Exact int64 ``(nranks, n_contexts, n_metrics)`` window sums."""
        out = np.zeros(
            (self.nranks, len(self.contexts), self.traces[0].ticks.shape[1]),
            dtype=np.int64,
        )
        for r, t in enumerate(self.traces):
            sel = t.window_slice(t0, t1)
            np.add.at(out[r], self._remap[r][t.ctx_ids[sel]], t.ticks[sel])
        return out

    def events_window(
        self, rank: int, t0: float | None = None, t1: float | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One rank's events in a window: ``(times, global ctx ids, ticks)``.

        Times are sorted ascending; ctx ids index :attr:`contexts`.
        """
        if not (0 <= rank < self.nranks):
            raise TraceError(f"rank {rank} out of range [0, {self.nranks})")
        t = self.traces[rank]
        sel = t.window_slice(t0, t1)
        return (
            t.times[sel],
            self._remap[rank][t.ctx_ids[sel]],
            t.ticks[sel],
        )

    # ------------------------------------------------------------------ #
    def window_profiles(
        self, t0: float | None = None, t1: float | None = None
    ) -> list[ProfileData]:
        """Per-rank untimed profiles restricted to a window."""
        ticks = self.window_ticks(t0, t1)
        return [
            materialize_profile(
                ticks[r],
                self.contexts,
                self.metrics,
                self.resolutions,
                rank=self.traces[r].rank,
                program=self.program,
            )
            for r in range(self.nranks)
        ]

    def window_experiment(
        self, t0: float | None = None, t1: float | None = None
    ):
        """The CCT experiment of the window — the trace query backend."""
        return experiment_from_profiles(
            self.window_profiles(t0, t1), self.structure, self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TraceSet {self.name!r}: {self.nranks} rank(s), "
            f"{self.n_events} events, {len(self.contexts)} contexts>"
        )


def experiment_from_profiles(profiles: Iterable[ProfileData], structure, name: str):
    """One shared construction path for windowed experiments.

    Both the in-memory :class:`TraceSet` and the chunked
    :class:`~repro.trace.store.TraceStore` funnel through here, so the
    two backends cannot drift in how a window becomes an
    :class:`~repro.hpcprof.experiment.Experiment`.
    """
    from repro.hpcprof.experiment import Experiment

    profiles = list(profiles)
    if len(profiles) == 1:
        return Experiment.from_profile(profiles[0], structure, name)
    return Experiment.from_profiles(profiles, structure, name)

"""Time-partitioned on-disk trace storage (the ``.rpstore`` trace tier).

A trace store is a directory of fixed-duration **chunk files** plus a
manifest written last::

    <dir>/
      skeleton.rpdb        whole-trace experiment (structure + metrics)
      chunk-00000.events   events of partition 0 (times/rank/ctx/ticks)
      chunk-00000.slab     pre-aggregated int64 CCT tick sums, mmap-able
      manifest.json        time bounds, sizes, CRCs — written LAST

Conventionally it lives as the ``trace/`` subdirectory of an
``.rpstore`` (so one store carries both the untimed rank matrices and
the time dimension), but any directory works; :func:`open_trace`
accepts either the trace directory itself or its enclosing store.

Chunking follows the hypertable idea: events land in the partition
``floor(t / chunk_duration)`` and each partition carries a
pre-aggregated ``(nranks, n_contexts, n_metrics)`` int64 tick slab.  A
window query touches only the chunks whose *recorded* time bounds
overlap the window: fully-covered chunks are answered from the mmap'd
slab without reading a single event, and only the (at most two) edge
chunks read their event arrays.  Because slabs and event ticks are
integers, slab-answered and event-answered chunks compose exactly —
the windowed CCT is bit-identical to the in-memory evaluation (see
:mod:`repro.trace.model`).

Crash safety mirrors the corpus discipline: every chunk and the
skeleton are fully written and fsynced *before* the manifest is
renamed into place, so a writer killed anywhere leaves either a
complete store or a directory with no manifest — never a phantom
window.  Each file's size and CRC32 live in the manifest and are
verified on first touch; corruption raises a structured
:class:`~repro.errors.TraceCorrupt`.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import zlib

import numpy as np

from repro.errors import DatabaseError, TraceCorrupt, TraceError
from repro.core.metrics import MetricTable
from repro.hpcrun.profile_data import Frame
from repro.testing.faults import crash_point, register_crash_points
from repro.trace.model import (
    TraceSet,
    check_window,
    experiment_from_profiles,
    materialize_profile,
)

__all__ = [
    "TRACE_DIR_NAME",
    "TRACE_MANIFEST",
    "TRACE_FORMAT",
    "CRASH_POINTS",
    "TraceStore",
    "create_trace_store",
    "open_trace",
    "is_trace_path",
]

#: conventional trace subdirectory inside an ``.rpstore``
TRACE_DIR_NAME = "trace"
TRACE_MANIFEST = "manifest.json"
SKELETON_NAME = "skeleton.rpdb"
TRACE_FORMAT = "rptrace-v1"

#: named crash points of the chunk writer, in commit order
CRASH_POINTS = (
    "trace.write.dir",
    "trace.write.skeleton",
    "trace.write.chunk",
    "trace.write.slab",
    "trace.write.manifest-staged",
    "trace.write.committed",
)
register_crash_points(*CRASH_POINTS)

_TIMES_DTYPE = np.dtype("<f8")
_IDS_DTYPE = np.dtype("<i8")


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file(path: str, data: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())


def _events_bytes(times, ranks, ctx, ticks) -> bytes:
    return b"".join(
        [
            np.ascontiguousarray(times, dtype=_TIMES_DTYPE).tobytes(),
            np.ascontiguousarray(ranks, dtype=_IDS_DTYPE).tobytes(),
            np.ascontiguousarray(ctx, dtype=_IDS_DTYPE).tobytes(),
            np.ascontiguousarray(ticks, dtype=_IDS_DTYPE).tobytes(),
        ]
    )


def create_trace_store(
    traces: TraceSet,
    path: str,
    chunk_duration: float = 1.0,
    overwrite: bool = False,
) -> "TraceStore":
    """Write *traces* as a chunked trace store at *path*; open and return it.

    *chunk_duration* is the fixed partition width in trace seconds.
    The directory is committed by the final manifest rename — killing
    the writer at any instruction leaves no readable (and therefore no
    wrong) store behind.
    """
    if not (chunk_duration > 0 and math.isfinite(chunk_duration)):
        raise TraceError(
            f"chunk_duration must be positive and finite, got {chunk_duration!r}"
        )
    if os.path.exists(path):
        if not overwrite:
            raise TraceError(f"trace store path exists: {path}")
        if os.path.isdir(path):
            shutil.rmtree(path)
        else:
            os.unlink(path)
    os.makedirs(path)
    crash_point("trace.write.dir")

    # ---- skeleton: the whole-trace experiment, for structure + metrics
    from repro.hpcprof import binio

    whole = traces.window_experiment(None, None)
    skeleton = binio.dumps_binary(whole, version=2)
    skeleton_path = os.path.join(path, SKELETON_NAME)
    _write_file(skeleton_path, skeleton)
    crash_point("trace.write.skeleton")

    # ---- global event arrays, time-ordered (rank order breaks ties)
    n_metrics = len(traces.metrics)
    all_times = []
    all_ranks = []
    all_ctx = []
    all_ticks = []
    for r in range(traces.nranks):
        times, ctx, ticks = traces.events_window(r, None, None)
        all_times.append(times)
        all_ranks.append(np.full(len(times), r, dtype=np.int64))
        all_ctx.append(ctx)
        all_ticks.append(ticks)
    times = np.concatenate(all_times) if all_times else np.zeros(0)
    ranks = np.concatenate(all_ranks) if all_ranks else np.zeros(0, np.int64)
    ctx = np.concatenate(all_ctx) if all_ctx else np.zeros(0, np.int64)
    ticks = (
        np.concatenate(all_ticks)
        if all_ticks
        else np.zeros((0, n_metrics), np.int64)
    )
    order = np.argsort(times, kind="stable")
    times, ranks, ctx, ticks = times[order], ranks[order], ctx[order], ticks[order]

    # ---- chunk partitioning
    indices = (
        np.floor_divide(times, chunk_duration).astype(np.int64)
        if len(times)
        else np.zeros(0, np.int64)
    )
    n_ctx = len(traces.contexts)
    chunks: list[dict] = []
    for idx in np.unique(indices):
        mask = indices == idx
        c_times = times[mask]
        c_ranks = ranks[mask]
        c_ctx = ctx[mask]
        c_ticks = ticks[mask]

        events = _events_bytes(c_times, c_ranks, c_ctx, c_ticks)
        events_name = f"chunk-{int(idx):05d}.events"
        _write_file(os.path.join(path, events_name), events)
        crash_point("trace.write.chunk")

        slab = np.zeros((traces.nranks, n_ctx, n_metrics), dtype=np.int64)
        np.add.at(slab, (c_ranks, c_ctx), c_ticks)
        slab_data = np.ascontiguousarray(slab, dtype=_IDS_DTYPE).tobytes()
        slab_name = f"chunk-{int(idx):05d}.slab"
        _write_file(os.path.join(path, slab_name), slab_data)
        crash_point("trace.write.slab")

        chunks.append(
            {
                "index": int(idx),
                # recorded (data-derived) bounds, robust to any float
                # quirk in the floor-division assignment above
                "t_lo": float(c_times[0]),
                "t_hi": float(c_times[-1]),
                "n_events": int(len(c_times)),
                "events_file": events_name,
                "events_bytes": len(events),
                "events_crc32": zlib.crc32(events),
                "slab_file": slab_name,
                "slab_bytes": len(slab_data),
                "slab_crc32": zlib.crc32(slab_data),
            }
        )

    manifest = {
        "format": TRACE_FORMAT,
        "name": traces.name,
        "program": traces.program,
        "chunk_duration": float(chunk_duration),
        "nranks": traces.nranks,
        "n_events": int(len(times)),
        "n_contexts": n_ctx,
        "time_metric": traces.time_metric,
        "time_scale": traces.time_scale,
        "metrics": [
            {
                "mid": d.mid,
                "name": d.name,
                "unit": d.unit,
                "resolution": traces.resolutions[d.mid],
            }
            for d in traces.metrics
        ],
        "contexts": [
            [[[f.proc, f.file, f.call_line] for f in frames], leaf_line]
            for frames, leaf_line in traces.contexts
        ],
        "t_begin": traces.t_begin,
        "t_end": traces.t_end,
        "skeleton_bytes": len(skeleton),
        "skeleton_crc32": zlib.crc32(skeleton),
        "chunks": chunks,
    }
    # self-CRC over the canonical body: per-file CRCs protect the chunk
    # payloads, this protects the manifest's own numbers (chunk bounds,
    # resolutions) from silent bit damage
    body = json.dumps(manifest, indent=2, sort_keys=True)
    manifest["manifest_crc32"] = zlib.crc32(body.encode("utf-8"))
    payload = (
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8") + b"\n"
    )
    tmp = os.path.join(path, TRACE_MANIFEST + ".tmp")
    _write_file(tmp, payload)
    crash_point("trace.write.manifest-staged")
    os.replace(tmp, os.path.join(path, TRACE_MANIFEST))
    _fsync_dir(path)
    crash_point("trace.write.committed")
    return open_trace(path)


def _resolve_trace_dir(path: str) -> str:
    if os.path.isfile(os.path.join(path, TRACE_MANIFEST)):
        return path
    nested = os.path.join(path, TRACE_DIR_NAME)
    if os.path.isfile(os.path.join(nested, TRACE_MANIFEST)):
        return nested
    raise TraceError(f"no trace store at {path} (no {TRACE_MANIFEST})")


def is_trace_path(path: str) -> bool:
    """Whether *path* is (or contains) a committed trace store."""
    try:
        _resolve_trace_dir(path)
        return True
    except TraceError:
        return False


def open_trace(path: str) -> "TraceStore":
    """Open a committed trace store (the directory or its ``.rpstore``)."""
    return TraceStore(_resolve_trace_dir(path))


class _Chunk:
    """One partition: manifest entry + lazily-verified lazy mmaps."""

    __slots__ = (
        "index", "t_lo", "t_hi", "n_events",
        "events_file", "events_bytes", "events_crc32",
        "slab_file", "slab_bytes", "slab_crc32",
        "_events", "_slab", "_events_ok", "_slab_ok",
    )

    def __init__(self, entry: dict) -> None:
        try:
            self.index = int(entry["index"])
            self.t_lo = float(entry["t_lo"])
            self.t_hi = float(entry["t_hi"])
            self.n_events = int(entry["n_events"])
            self.events_file = str(entry["events_file"])
            self.events_bytes = int(entry["events_bytes"])
            self.events_crc32 = int(entry["events_crc32"])
            self.slab_file = str(entry["slab_file"])
            self.slab_bytes = int(entry["slab_bytes"])
            self.slab_crc32 = int(entry["slab_crc32"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceCorrupt(f"malformed chunk entry in trace manifest: {exc}")
        if self.n_events < 0 or not (
            math.isfinite(self.t_lo) and math.isfinite(self.t_hi)
        ):
            raise TraceCorrupt(
                f"chunk {self.index} has invalid bounds in trace manifest"
            )
        self._events = None
        self._slab = None
        self._events_ok = False
        self._slab_ok = False


class TraceStore:
    """Reader over a committed time-partitioned trace store.

    Chunk slabs and event arrays open as file-backed mmaps on first
    touch (after a one-time CRC verification), so resident memory stays
    flat no matter how many events the trace holds.
    :attr:`chunks_touched` counts the partitions a query actually
    opened — the pruning guarantee the benchmark asserts.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        manifest_path = os.path.join(path, TRACE_MANIFEST)
        try:
            with open(manifest_path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise TraceError(f"no trace store at {path}: {exc}")
        try:
            manifest = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceCorrupt(f"trace manifest unreadable: {exc}")
        if not isinstance(manifest, dict) or manifest.get("format") != TRACE_FORMAT:
            raise TraceCorrupt(
                f"trace manifest has unknown format "
                f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}"
            )
        try:
            declared_crc = int(manifest.pop("manifest_crc32"))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceCorrupt(f"trace manifest is missing fields: {exc}")
        body = json.dumps(manifest, indent=2, sort_keys=True)
        if zlib.crc32(body.encode("utf-8")) != declared_crc:
            raise TraceCorrupt("trace manifest fails its self-CRC32")
        try:
            self.name = str(manifest["name"])
            self.program = str(manifest["program"])
            self.chunk_duration = float(manifest["chunk_duration"])
            self.nranks = int(manifest["nranks"])
            self.n_events = int(manifest["n_events"])
            self.time_metric = int(manifest["time_metric"])
            self.time_scale = float(manifest["time_scale"])
            self.t_begin = manifest["t_begin"]
            self.t_end = manifest["t_end"]
            metric_entries = manifest["metrics"]
            context_entries = manifest["contexts"]
            self._skeleton_bytes = int(manifest["skeleton_bytes"])
            self._skeleton_crc32 = int(manifest["skeleton_crc32"])
            chunk_entries = manifest["chunks"]
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceCorrupt(f"trace manifest is missing fields: {exc}")
        if self.nranks < 1 or self.chunk_duration <= 0:
            raise TraceCorrupt("trace manifest has invalid geometry")

        self.metrics = MetricTable()
        self.resolutions: dict[int, float] = {}
        try:
            for entry in metric_entries:
                desc = self.metrics.add(
                    str(entry["name"]), unit=str(entry.get("unit", ""))
                )
                res = float(entry["resolution"])
                if not (res > 0 and math.isfinite(res)):
                    raise ValueError(f"bad resolution {res!r}")
                self.resolutions[desc.mid] = res
            self.contexts: list[tuple[tuple[Frame, ...], int]] = []
            for frames_entry, leaf_line in context_entries:
                frames = tuple(
                    Frame(proc=str(p), file=str(f), call_line=int(line))
                    for p, f, line in frames_entry
                )
                if not frames:
                    raise ValueError("context with no frames")
                self.contexts.append((frames, int(leaf_line)))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceCorrupt(f"trace manifest tables are malformed: {exc}")

        self._chunks = [_Chunk(e) for e in chunk_entries]
        self._chunks.sort(key=lambda c: c.index)
        self.chunks_total = len(self._chunks)
        self.chunks_touched = 0
        self._skeleton_exp = None

        # fail fast on missing/truncated files; content CRCs are lazy
        for chunk in self._chunks:
            for fname, size in (
                (chunk.events_file, chunk.events_bytes),
                (chunk.slab_file, chunk.slab_bytes),
            ):
                self._check_size(fname, size)
        self._check_size(SKELETON_NAME, self._skeleton_bytes)

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #
    def _check_size(self, fname: str, expected: int) -> None:
        full = os.path.join(self.path, fname)
        try:
            actual = os.path.getsize(full)
        except OSError:
            raise TraceCorrupt(f"trace store is missing {fname}")
        if actual != expected:
            raise TraceCorrupt(
                f"{fname} is {actual} bytes, manifest says {expected} "
                f"(truncated or stray write)"
            )

    def _verified_mmap(self, fname: str, expected_crc: int) -> np.ndarray:
        full = os.path.join(self.path, fname)
        with open(full, "rb") as fh:
            data = fh.read()
        if zlib.crc32(data) != expected_crc:
            raise TraceCorrupt(f"{fname} fails its manifest CRC32")
        return np.memmap(full, dtype=np.uint8, mode="r")

    # ------------------------------------------------------------------ #
    # chunk access
    # ------------------------------------------------------------------ #
    def _chunk_events(self, chunk: _Chunk):
        if chunk._events is None:
            raw = self._verified_mmap(chunk.events_file, chunk.events_crc32)
            n = chunk.n_events
            m = len(self.metrics)
            need = n * 8 * (3 + m)
            if len(raw) != need:
                raise TraceCorrupt(
                    f"{chunk.events_file} payload does not match its "
                    f"event count"
                )
            off = 0
            times = raw[off:off + n * 8].view(_TIMES_DTYPE)
            off += n * 8
            ranks = raw[off:off + n * 8].view(_IDS_DTYPE)
            off += n * 8
            ctx = raw[off:off + n * 8].view(_IDS_DTYPE)
            off += n * 8
            ticks = raw[off:off + n * m * 8].view(_IDS_DTYPE).reshape(n, m)
            bad = (ranks < 0) | (ranks >= self.nranks) \
                | (ctx < 0) | (ctx >= len(self.contexts))
            if bool(bad.any()):
                raise TraceCorrupt(
                    f"{chunk.events_file} references out-of-range ids"
                )
            chunk._events = (times, ranks, ctx, ticks)
        return chunk._events

    def _chunk_slab(self, chunk: _Chunk) -> np.ndarray:
        if chunk._slab is None:
            raw = self._verified_mmap(chunk.slab_file, chunk.slab_crc32)
            shape = (self.nranks, len(self.contexts), len(self.metrics))
            need = int(np.prod(shape)) * 8
            if len(raw) != need:
                raise TraceCorrupt(
                    f"{chunk.slab_file} does not match the manifest geometry"
                )
            chunk._slab = raw.view(_IDS_DTYPE).reshape(shape)
        return chunk._slab

    def _overlapping(self, lo: float, hi: float):
        for chunk in self._chunks:
            if chunk.t_hi < lo or chunk.t_lo >= hi:
                continue
            yield chunk

    def reset_counters(self) -> None:
        self.chunks_touched = 0

    # ------------------------------------------------------------------ #
    # windowing (the same protocol as TraceSet)
    # ------------------------------------------------------------------ #
    def window_ticks(
        self, t0: float | None = None, t1: float | None = None
    ) -> np.ndarray:
        """Exact int64 ``(nranks, n_contexts, n_metrics)`` window sums.

        Fully-covered partitions add their pre-aggregated slab; only
        partially-covered ones read events.
        """
        lo, hi = check_window(t0, t1)
        out = np.zeros(
            (self.nranks, len(self.contexts), len(self.metrics)),
            dtype=np.int64,
        )
        for chunk in self._overlapping(lo, hi):
            self.chunks_touched += 1
            if lo <= chunk.t_lo and chunk.t_hi < hi:
                out += self._chunk_slab(chunk)
                continue
            times, ranks, ctx, ticks = self._chunk_events(chunk)
            mask = (times >= lo) & (times < hi)
            np.add.at(out, (ranks[mask], ctx[mask]), ticks[mask])
        return out

    def events_window(
        self, rank: int, t0: float | None = None, t1: float | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One rank's events in a window: ``(times, ctx ids, ticks)``."""
        if not (0 <= rank < self.nranks):
            raise TraceError(f"rank {rank} out of range [0, {self.nranks})")
        lo, hi = check_window(t0, t1)
        times_parts, ctx_parts, tick_parts = [], [], []
        for chunk in self._overlapping(lo, hi):
            self.chunks_touched += 1
            times, ranks, ctx, ticks = self._chunk_events(chunk)
            mask = (ranks == rank) & (times >= lo) & (times < hi)
            times_parts.append(times[mask])
            ctx_parts.append(ctx[mask])
            tick_parts.append(ticks[mask])
        if not times_parts:
            return (
                np.zeros(0),
                np.zeros(0, np.int64),
                np.zeros((0, len(self.metrics)), np.int64),
            )
        return (
            np.concatenate(times_parts),
            np.concatenate(ctx_parts),
            np.concatenate(tick_parts),
        )

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    @property
    def skeleton(self):
        """The whole-trace experiment saved at write time (lazy)."""
        if self._skeleton_exp is None:
            from repro.hpcprof import database

            with open(os.path.join(self.path, SKELETON_NAME), "rb") as fh:
                data = fh.read()
            if zlib.crc32(data) != self._skeleton_crc32:
                raise TraceCorrupt(f"{SKELETON_NAME} fails its manifest CRC32")
            try:
                self._skeleton_exp = database.loads(data)
            except DatabaseError as exc:
                raise TraceCorrupt(f"{SKELETON_NAME} is unreadable: {exc}")
        return self._skeleton_exp

    def window_profiles(
        self, t0: float | None = None, t1: float | None = None
    ):
        ticks = self.window_ticks(t0, t1)
        metrics = self.skeleton.metrics
        return [
            materialize_profile(
                ticks[r],
                self.contexts,
                metrics,
                self.resolutions,
                rank=r,
                program=self.program,
            )
            for r in range(self.nranks)
        ]

    def window_experiment(
        self, t0: float | None = None, t1: float | None = None
    ):
        """The CCT experiment of the window, built exactly like the
        in-memory path (same correlate pipeline, same tick sums)."""
        return experiment_from_profiles(
            self.window_profiles(t0, t1), self.skeleton.structure, self.name
        )

    def info(self) -> dict:
        """A JSON-friendly summary of the store's layout."""
        return {
            "name": self.name,
            "program": self.program,
            "format": TRACE_FORMAT,
            "nranks": self.nranks,
            "n_events": self.n_events,
            "n_contexts": len(self.contexts),
            "t_begin": self.t_begin,
            "t_end": self.t_end,
            "chunk_duration": self.chunk_duration,
            "chunks": self.chunks_total,
            "time_metric": self.time_metric,
            "time_scale": self.time_scale,
            "metrics": [
                {
                    "name": d.name,
                    "unit": d.unit,
                    "resolution": self.resolutions[d.mid],
                }
                for d in self.metrics
            ],
        }

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        for chunk in self._chunks:
            chunk._events = None
            chunk._slab = None
        self._skeleton_exp = None

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TraceStore {self.path!r}: {self.nranks} rank(s), "
            f"{self.n_events} events, {self.chunks_total} chunk(s)>"
        )

"""The single error taxonomy of the toolkit and its service surface.

Historically the library and the analysis server grew *parallel*
hierarchies — ``repro.core.errors`` for domain failures and
``repro.server.errors`` for client-visible HTTP failures — with the
mapping between them spread across ``isinstance`` chains.  This module
unifies both sides and makes the mapping itself part of the public
contract:

* the **domain hierarchy** (:class:`ReproError` and friends) — what
  library code raises; independent of any transport;
* the **API hierarchy** (:class:`ApiError` and friends) — what clients
  of the JSON service observe: an HTTP status, a stable machine-readable
  ``code``, and a human-readable message;
* :data:`WIRE_CODES` — the one shared mapping from every domain error
  class to exactly one JSON error code (and status), consumed by
  :func:`translate_domain_error` at the application boundary and by the
  generated endpoint reference in ``docs/api.md``.

The old module paths remain importable as deprecation shims, so code
written against ``repro.core.errors`` / ``repro.server.errors`` keeps
working (with a :class:`DeprecationWarning`); new code should import
from :mod:`repro.errors` or the :mod:`repro.api` facade.
"""

from __future__ import annotations

__all__ = [
    # domain hierarchy
    "ReproError",
    "StructureError",
    "CorrelationError",
    "MetricError",
    "FormulaError",
    "ViewError",
    "QueryError",
    "DatabaseError",
    "SimulationError",
    "ProfilerError",
    "CorpusError",
    "CorpusCorrupt",
    "ProfilePinned",
    "TraceError",
    "TraceCorrupt",
    # API hierarchy
    "ApiError",
    "BadRequest",
    "NotFound",
    "MethodNotAllowed",
    "Conflict",
    "PayloadTooLarge",
    "TooManyRequests",
    "ServiceUnavailable",
    "DeadlineExceeded",
    # the shared mapping
    "WIRE_CODES",
    "wire_code",
    "translate_domain_error",
]


# --------------------------------------------------------------------- #
# domain hierarchy (library-side; transport-independent)
# --------------------------------------------------------------------- #
class ReproError(Exception):
    """Base class for all toolkit errors."""


class StructureError(ReproError):
    """Invalid or inconsistent static program structure."""


class CorrelationError(ReproError):
    """A dynamic call path could not be correlated with static structure."""


class MetricError(ReproError):
    """Invalid metric definition or metric table operation."""


class FormulaError(MetricError):
    """A derived-metric formula failed to parse or evaluate."""


class ViewError(ReproError):
    """Invalid view construction or view operation."""


class QueryError(ReproError):
    """A call-path query failed to parse or evaluate (repro.query)."""


class DatabaseError(ReproError):
    """Experiment database serialization or deserialization failure."""


class SimulationError(ReproError):
    """Invalid synthetic program model or simulation parameters."""


class ProfilerError(ReproError):
    """Measurement-layer (hpcrun substrate) failure."""


class CorpusError(ReproError):
    """Profile-corpus catalog operation failure (ingest, policy, lookup)."""


class CorpusCorrupt(CorpusError):
    """The corpus on disk is damaged beyond the journal's recovery rules.

    Raised when the corpus marker is unreadable or a *committed* profile
    fails its recorded checksum — never for a torn journal tail, which
    replay truncates silently as designed.
    """


class ProfilePinned(CorpusError):
    """A corpus profile cannot be deleted while an open session pins it."""


class TraceError(ReproError):
    """Invalid trace operation (recording, windowing, chunked storage)."""


class TraceCorrupt(TraceError):
    """A time-partitioned trace store on disk is damaged.

    Raised when a chunk file or the trace manifest fails its recorded
    size or checksum — never for a store whose manifest simply is not
    there yet (an interrupted writer leaves no manifest, and the
    directory reads as "not a trace store" rather than a phantom)."""


# --------------------------------------------------------------------- #
# API hierarchy (client-side; what the JSON service serves)
# --------------------------------------------------------------------- #
class ApiError(Exception):
    """A client-visible failure with an HTTP status and stable code."""

    status = 500
    code = "internal"

    def __init__(
        self,
        message: str,
        code: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        #: seconds after which retrying may succeed; surfaces as both a
        #: payload field and the HTTP ``Retry-After`` header
        self.retry_after = retry_after

    @property
    def message(self) -> str:
        return str(self)

    def to_payload(self, trace_id: str | None = None) -> dict:
        """The JSON body clients receive."""
        error = {
            "status": self.status,
            "code": self.code,
            "message": self.message,
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        if trace_id is not None:
            error["trace_id"] = trace_id
        return {"error": error}


class BadRequest(ApiError):
    """400 — the request is syntactically or semantically malformed."""

    status = 400
    code = "bad-request"


class NotFound(ApiError):
    """404 — unknown session, metric, endpoint, or database path."""

    status = 404
    code = "not-found"


class MethodNotAllowed(ApiError):
    """405 — the endpoint exists but not for this HTTP method."""

    status = 405
    code = "method-not-allowed"


class Conflict(ApiError):
    """409 — the request conflicts with the resource's current state."""

    status = 409
    code = "conflict"


class PayloadTooLarge(ApiError):
    """413 — request body exceeds the configured limit."""

    status = 413
    code = "payload-too-large"


class TooManyRequests(ApiError):
    """429 — admission control shed the request; retry after backoff."""

    status = 429
    code = "too-many-requests"


class ServiceUnavailable(ApiError):
    """503 — the server cannot serve this request right now."""

    status = 503
    code = "unavailable"


class DeadlineExceeded(ServiceUnavailable):
    """503 — the request's deadline expired; partial work was discarded."""

    code = "deadline-exceeded"


# --------------------------------------------------------------------- #
# the one shared mapping: domain error class -> (JSON code, status)
# --------------------------------------------------------------------- #
#: Every domain error class maps to exactly one wire code.  Subclasses
#: inherit their nearest ancestor's entry unless they appear themselves
#: (``FormulaError`` before ``MetricError`` — :func:`wire_code` walks
#: the MRO, so insertion order here is documentation, not dispatch).
WIRE_CODES: dict[type, tuple[str, int]] = {
    FormulaError: ("bad-formula", 400),
    MetricError: ("bad-metric", 400),
    ViewError: ("bad-view-operation", 400),
    QueryError: ("bad-query", 400),
    DatabaseError: ("bad-database", 400),
    StructureError: ("bad-structure", 400),
    CorrelationError: ("bad-correlation", 400),
    SimulationError: ("bad-simulation", 400),
    ProfilerError: ("profiler-error", 400),
    ProfilePinned: ("profile-pinned", 409),
    CorpusCorrupt: ("corpus-corrupt", 500),
    CorpusError: ("corpus-error", 400),
    TraceCorrupt: ("trace-corrupt", 500),
    TraceError: ("trace-error", 400),
    ReproError: ("domain-error", 400),
}


def wire_code(exc: ReproError) -> tuple[str, int]:
    """The ``(code, status)`` a domain error serializes as on the wire."""
    for cls in type(exc).__mro__:
        entry = WIRE_CODES.get(cls)
        if entry is not None:
            return entry
    return WIRE_CODES[ReproError]


def translate_domain_error(exc: ReproError) -> ApiError:
    """Map a toolkit exception to the client-visible taxonomy.

    The status/code pair comes from :data:`WIRE_CODES`, with one
    addressing special case: an *unknown metric* lookup is a 404 (the
    client addressed a resource that does not exist), while every other
    metric failure — duplicates, bad formulas — stays a 400 (the request
    itself is wrong, not the address).
    """
    text = str(exc)
    if (
        isinstance(exc, MetricError)
        and not isinstance(exc, FormulaError)
        and text.startswith("unknown metric")
    ):
        return NotFound(text, code="unknown-metric")
    if (
        isinstance(exc, CorpusError)
        and not isinstance(exc, (CorpusCorrupt, ProfilePinned))
        and text.startswith(("unknown tenant", "unknown profile"))
    ):
        return NotFound(text, code="unknown-profile")
    if (
        isinstance(exc, TraceError)
        and not isinstance(exc, TraceCorrupt)
        and text.startswith("no trace store")
    ):
        return NotFound(text, code="unknown-trace")
    code, status = wire_code(exc)
    if status == 404:
        return NotFound(text, code=code)
    if status == 409:
        return Conflict(text, code=code)
    if status == 500:
        err = ApiError(text, code=code)
        err.status = status
        return err
    return BadRequest(text, code=code)

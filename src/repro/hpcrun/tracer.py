"""Deterministic tracing call-path profiler for Python code.

Uses ``sys.settrace`` line events to attribute exact costs to every
executed source line in full calling context — the deterministic
counterpart of the asynchronous sampler, useful for tests and small
programs where exactness beats overhead.

Two metrics are collected:

* ``line events`` — the number of line events executed at the scope, a
  machine-independent work measure;
* ``wall time (s)`` — elapsed wall-clock attributed to the line that was
  executing when time passed.

With ``trace=True`` the profiler additionally emits timestamped
call-path samples into a :class:`~repro.trace.model.TraceData`: every
attribution becomes one event stamped with seconds since ``start()``,
costs quantized to int64 ticks (wall time at nanosecond resolution,
line events at one tick per event).  The profile is attributed from the
same quantized values; ``trace.profile()`` — the whole-window
materialization, which is what the ``window(None, None)`` contract
pins — agrees with it to within float summation order (exactly, for
the integer event counts).
"""

from __future__ import annotations

import os
import sys
import time
from types import FrameType
from typing import Callable, Iterable

from repro.errors import ProfilerError
from repro.core.metrics import MetricTable
from repro.hpcrun.profile_data import ProfileData
from repro.hpcrun.unwind import unwind

__all__ = ["TracingProfiler", "trace_call"]


class TracingProfiler:
    """Exact line-level call path profiler (``sys.settrace``-based)."""

    def __init__(
        self,
        roots: Iterable[str] = (),
        collapse_foreign: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        trace: bool = False,
    ) -> None:
        self.roots = tuple(os.path.abspath(r) for r in roots)
        self.collapse_foreign = collapse_foreign
        self.clock = clock
        self.metrics = MetricTable()
        self._events_mid = self.metrics.add("line events", unit="events").mid
        self._time_mid = self.metrics.add("wall time (s)", unit="seconds").mid
        self.profile = ProfileData(self.metrics, program="traced")
        self.trace = None
        self._t0 = 0.0
        if trace:
            from repro.trace.model import TIME_RESOLUTION, TraceData

            self.trace = TraceData(
                self.metrics,
                resolutions={self._events_mid: 1.0,
                             self._time_mid: TIME_RESOLUTION},
                program="traced",
                time_metric=self._time_mid,
            )
        self._active = False
        #: pending time attribution: (frames, leaf_line, start_time) — the
        #: path is unwound eagerly at event time; unwinding lazily at flush
        #: time would read ancestor frames whose line numbers have already
        #: advanced past the call, fabricating contexts that never existed.
        self._last: tuple[list, int, float] | None = None

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "TracingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        if self._active:
            raise ProfilerError("tracer already active")
        self._active = True
        self._last = None
        self._t0 = self.clock()
        sys.settrace(self._trace)

    def stop(self) -> None:
        if not self._active:
            return
        sys.settrace(None)
        self._flush_time(self.clock())
        self._active = False
        if self.trace is not None:
            self.trace.seal()

    # ------------------------------------------------------------------ #
    def _trace(self, frame: FrameType, event: str, arg):
        if event == "call":
            # skip tracing inside the profiler's own machinery
            if frame.f_code.co_filename == __file__:
                return None
            return self._trace
        if event == "line":
            now = self.clock()
            self._flush_time(now)
            frames, leaf_line = unwind(
                frame, roots=self.roots, collapse_foreign=self.collapse_foreign
            )
            if frames:
                self.profile.add_sample(frames, leaf_line, {self._events_mid: 1.0})
                if self.trace is not None:
                    self.trace.record(
                        frames, leaf_line, max(0.0, now - self._t0),
                        {self._events_mid: 1},
                    )
                self._last = (frames, leaf_line, now)
        return self._trace

    def _flush_time(self, now: float) -> None:
        if self._last is None:
            return
        frames, leaf_line, then = self._last
        elapsed = now - then
        if elapsed > 0:
            if self.trace is None:
                self.profile.add_sample(
                    frames, leaf_line, {self._time_mid: elapsed}
                )
            else:
                # attribute the quantized value so profile and trace
                # carry the same costs (the trace's own whole-window
                # materialization is the exact artifact)
                from repro.trace.model import TIME_RESOLUTION, quantize

                ticks = quantize(elapsed, TIME_RESOLUTION)
                if ticks > 0:
                    self.profile.add_sample(
                        frames, leaf_line,
                        {self._time_mid: ticks * TIME_RESOLUTION},
                    )
                    self.trace.record(
                        frames, leaf_line, max(0.0, then - self._t0),
                        {self._time_mid: ticks},
                    )
        self._last = None


def trace_call(fn: Callable, *args, roots: Iterable[str] = (), **kwargs):
    """Trace one call; returns ``(result, profile_data)``."""
    tracer = TracingProfiler(roots=roots)
    with tracer:
        result = fn(*args, **kwargs)
    return result, tracer.profile

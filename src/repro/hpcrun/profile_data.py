"""Call path profile data — the output of measurement (``hpcrun`` substrate).

A call path profile is a compact trie of dynamic call paths.  Each trie
node is one procedure activation context, keyed by *who* was called and
*from which source line*; raw sample costs hang off trie nodes keyed by the
leaf source line where the sample's program counter landed.

This is the measurement-side picture only: no loops, no inlining, no
static structure — exactly what an asynchronous-sampling profiler can see
from stack unwinds.  Fusing these paths with static structure into a
canonical CCT is the job of :mod:`repro.hpcprof.correlate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import ProfilerError
from repro.core.metrics import MetricTable, MetricValues, add_into

__all__ = ["Frame", "PathNode", "ProfileData"]


@dataclass(frozen=True, slots=True)
class Frame:
    """One dynamic frame on a call path.

    ``call_line`` is the source line *in the caller* where this frame was
    invoked (0 for entry frames with no caller, e.g. ``main``).
    """

    proc: str
    file: str
    call_line: int = 0

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.proc, self.file, self.call_line)


class PathNode:
    """One node of the call-path trie (one procedure activation context)."""

    __slots__ = ("frame", "children", "leaf_costs")

    def __init__(self, frame: Frame | None = None) -> None:
        self.frame = frame
        self.children: dict[tuple[str, str, int], PathNode] = {}
        #: raw sample cost by leaf source line within this frame
        self.leaf_costs: dict[int, MetricValues] = {}

    def ensure_child(self, frame: Frame) -> "PathNode":
        node = self.children.get(frame.key)
        if node is None:
            node = PathNode(frame)
            self.children[frame.key] = node
        return node

    def add_cost(self, line: int, costs: Mapping[int, float]) -> None:
        if not costs:
            return
        slot = self.leaf_costs.setdefault(line, {})
        add_into(slot, costs)

    def walk(self) -> Iterator["PathNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())


class ProfileData:
    """A single-thread (or single-rank) call path profile.

    Parameters
    ----------
    metrics:
        The metric table; sample costs are keyed by metric id.
    rank, thread:
        Identity of the measured execution stream.
    """

    def __init__(
        self,
        metrics: MetricTable | None = None,
        rank: int = 0,
        thread: int = 0,
        program: str = "",
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricTable()
        self.rank = rank
        self.thread = thread
        self.program = program
        self.root = PathNode()
        self.sample_count = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def add_sample(
        self,
        frames: Sequence[Frame],
        leaf_line: int,
        costs: Mapping[int, float],
    ) -> None:
        """Record one sample: a full call path plus leaf-line costs.

        *frames* runs outermost-first.  Costs are keyed by metric id and
        already include the sampling period (cost = samples × period).
        """
        if not frames:
            raise ProfilerError("a sample needs at least one frame")
        node = self.root
        for frame in frames:
            node = node.ensure_child(frame)
        node.add_cost(leaf_line, costs)
        self.sample_count += 1

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(1 for _ in self.root.walk()) - 1  # exclude synthetic root

    def totals(self) -> MetricValues:
        """Total raw cost per metric over the whole profile."""
        out: MetricValues = {}
        for node in self.root.walk():
            for costs in node.leaf_costs.values():
                add_into(out, costs)
        return out

    def paths(self) -> Iterator[tuple[list[Frame], int, MetricValues]]:
        """Yield ``(frames, leaf_line, costs)`` for every recorded context."""

        def visit(node: PathNode, prefix: list[Frame]):
            if node.frame is not None:
                prefix = prefix + [node.frame]
            for line, costs in node.leaf_costs.items():
                yield prefix, line, costs
            for child in node.children.values():
                yield from visit(child, prefix)

        yield from visit(self.root, [])

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def merge_into(self, other: "ProfileData") -> None:
        """Accumulate this profile's costs into *other* (same metric table)."""
        if other.metrics.names() != self.metrics.names():
            raise ProfilerError("cannot merge profiles with different metric tables")

        def visit(src: PathNode, dst: PathNode) -> None:
            for line, costs in src.leaf_costs.items():
                dst.add_cost(line, costs)
            for key, child in src.children.items():
                visit(child, dst.ensure_child(child.frame))

        visit(self.root, other.root)
        other.sample_count += self.sample_count

    def resampled(self, period: float, rng) -> "ProfileData":
        """Simulate asynchronous statistical sampling of this exact profile.

        Each leaf cost ``c`` becomes ``Poisson(c / period) × period`` — the
        unbiased async-sampling estimator.  Useful for studying how the
        presentation behaves under realistic sampling noise.
        """
        if period <= 0:
            raise ProfilerError(f"period must be positive, got {period}")
        out = ProfileData(self.metrics, rank=self.rank, thread=self.thread,
                          program=self.program)

        def visit(src: PathNode, dst: PathNode) -> None:
            for line, costs in src.leaf_costs.items():
                noisy = {}
                for mid, value in costs.items():
                    drawn = float(rng.poisson(value / period)) * period
                    if drawn:
                        noisy[mid] = drawn
                if noisy:
                    dst.add_cost(line, noisy)
            for child in src.children.values():
                visit(child, dst.ensure_child(child.frame))

        visit(self.root, out.root)
        out.sample_count = self.sample_count
        return out

"""Asynchronous statistical sampling call-path profiler.

The measurement technique of the paper: at a fixed period, interrupt the
target thread, unwind its call stack, and attribute one sample (cost =
period) to the leaf statement in its full calling context.  The CPython
rendition interrupts nothing — a sampling thread reads the target
thread's frame via ``sys._current_frames()``, which is exactly the
"asynchronous" part: samples land wherever the program happens to be,
yielding accurate, low-overhead profiles whose expected values equal the
true cost distribution.

``SamplingProfiler.sample_once`` is exposed for deterministic testing:
the machinery from unwinding through attribution is exercised without a
timing dependence.

With ``trace=True`` (single-thread mode only) every sample additionally
becomes one timestamped event in a
:class:`~repro.trace.model.TraceData` — the sampled rendition of
hpcrun's trace files: period-cost events stamped with seconds since
``start()``, quantized to nanosecond ticks.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Callable, Iterable

from repro.errors import ProfilerError
from repro.core.metrics import MetricTable
from repro.hpcrun.profile_data import ProfileData
from repro.hpcrun.unwind import unwind

__all__ = ["SamplingProfiler", "sample_call"]


class SamplingProfiler:
    """Wall-clock asynchronous sampling profiler for one Python thread."""

    def __init__(
        self,
        period: float = 0.001,
        roots: Iterable[str] = (),
        collapse_foreign: bool = True,
        all_threads: bool = False,
        trace: bool = False,
    ) -> None:
        if period <= 0:
            raise ProfilerError(f"sampling period must be positive, got {period}")
        self.period = period
        self.roots = tuple(os.path.abspath(r) for r in roots)
        self.collapse_foreign = collapse_foreign
        #: sample every application thread (one profile per thread, as
        #: hpcrun does), not just the starting thread
        self.all_threads = all_threads
        self.metrics = MetricTable()
        self._samples_mid = self.metrics.add(
            "wall time (s)", unit="seconds", period=period
        ).mid
        self.profile = ProfileData(self.metrics, program="sampled")
        self.trace = None
        self._t0 = time.perf_counter()
        self._period_ticks = 0
        if trace:
            if all_threads:
                raise ProfilerError(
                    "trace mode samples one thread (all_threads=False)"
                )
            from repro.trace.model import TIME_RESOLUTION, TraceData, quantize

            self._period_ticks = max(1, quantize(period, TIME_RESOLUTION))
            self.trace = TraceData(
                self.metrics,
                resolutions={self._samples_mid: TIME_RESOLUTION},
                program="sampled",
                time_metric=self._samples_mid,
            )
        #: per-thread profiles, populated in all-threads mode
        self.thread_profiles: dict[int, ProfileData] = {}
        self._target_tid: int | None = None
        self._sampler_tid: int | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.samples_taken = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self, target_tid: int | None = None) -> None:
        """Begin sampling the given thread (default: the calling thread)."""
        if self._thread is not None:
            raise ProfilerError("sampler already running")
        self._target_tid = target_tid if target_tid is not None else threading.get_ident()
        self._t0 = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self.trace is not None:
            self.trace.seal()

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        self._sampler_tid = threading.get_ident()
        while not self._stop.wait(self.period):
            self.sample_once()

    def sample_once(self) -> bool:
        """Take one sample; True when any cost was attributed."""
        if self.all_threads:
            return self._sample_all()
        tid = self._target_tid
        if tid is None:
            tid = threading.get_ident()
        frame = sys._current_frames().get(tid)
        if frame is None:
            return False
        attributed = self._attribute(self.profile, frame)
        del frame  # break the reference cycle promptly
        return attributed

    def _sample_all(self) -> bool:
        """One synchronous sweep over every application thread."""
        hit = False
        current = sys._current_frames()
        try:
            for tid, frame in current.items():
                if tid == self._sampler_tid:
                    continue  # never profile the profiler
                profile = self.thread_profiles.get(tid)
                if profile is None:
                    profile = ProfileData(self.metrics, thread=tid,
                                          program="sampled")
                    self.thread_profiles[tid] = profile
                hit = self._attribute(profile, frame) or hit
        finally:
            del current
        return hit

    def _attribute(self, profile: ProfileData, frame) -> bool:
        frames, leaf_line = unwind(
            frame, roots=self.roots, collapse_foreign=self.collapse_foreign
        )
        if not frames:
            return False
        profile.add_sample(frames, leaf_line, {self._samples_mid: self.period})
        if self.trace is not None and not self.trace.sealed:
            t = max(0.0, time.perf_counter() - self._t0)
            self.trace.record(
                frames, leaf_line, t, {self._samples_mid: self._period_ticks}
            )
        self.samples_taken += 1
        return True

    def merged_profile(self) -> ProfileData:
        """All threads' profiles merged into one (the process profile)."""
        if not self.all_threads:
            return self.profile
        merged = ProfileData(self.metrics, program="sampled")
        for profile in self.thread_profiles.values():
            profile.merge_into(merged)
        return merged


def sample_call(
    fn: Callable,
    *args,
    period: float = 0.001,
    roots: Iterable[str] = (),
    **kwargs,
):
    """Sample one call; returns ``(result, profile_data)``."""
    sampler = SamplingProfiler(period=period, roots=roots)
    with sampler:
        result = fn(*args, **kwargs)
    return result, sampler.profile

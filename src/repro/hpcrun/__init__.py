"""Measurement substrate: call path profilers and synthetic counters."""

"""Call stack unwinding for live Python frames.

Converts a CPython frame chain into the measurement-side
:class:`~repro.hpcrun.profile_data.Frame` path (outermost first), the
same operation hpcrun's unwinder performs on native stacks at every
asynchronous sample.

Frames are named by qualified name (``Outer.method``,
``outer.<locals>.inner``) so they match the static structure recovered by
:mod:`repro.hpcstruct.pystruct` from the same sources.  Frames whose code
lives outside the requested source roots (interpreter internals, site
packages) can be filtered or collapsed into a single ``<foreign>``
placeholder frame, mirroring hpcviewer's binary-only scopes.
"""

from __future__ import annotations

import os
from types import FrameType

from repro.hpcrun.profile_data import Frame

__all__ = ["unwind", "qualname_of", "FOREIGN_PROC"]

FOREIGN_PROC = "<foreign code>"


def qualname_of(frame: FrameType) -> str:
    """The qualified name of a frame's code object."""
    code = frame.f_code
    return getattr(code, "co_qualname", code.co_name)


def _in_roots(path: str, roots: tuple[str, ...]) -> bool:
    return any(path.startswith(root) for root in roots)


def unwind(
    frame: FrameType,
    roots: tuple[str, ...] = (),
    collapse_foreign: bool = True,
) -> tuple[list[Frame], int]:
    """Unwind *frame* to an outermost-first path plus the leaf line.

    ``roots`` restricts attribution to files under those directories;
    foreign frames either collapse into :data:`FOREIGN_PROC` entries
    (default) or are skipped entirely.  Returns ``([], 0)`` when no frame
    survives filtering.
    """
    chain: list[FrameType] = []
    cursor: FrameType | None = frame
    while cursor is not None:
        chain.append(cursor)
        cursor = cursor.f_back
    chain.reverse()

    frames: list[Frame] = []
    leaf_line = 0
    prev_line = 0
    for fr in chain:
        path = fr.f_code.co_filename
        native = os.path.abspath(path) if not path.startswith("<") else path
        foreign = bool(roots) and not _in_roots(native, roots)
        if foreign:
            if not collapse_foreign:
                prev_line = fr.f_lineno
                continue
            name, file = FOREIGN_PROC, "<unknown file>"
        else:
            name, file = qualname_of(fr), native
        if frames and foreign and frames[-1].proc == FOREIGN_PROC:
            # collapse consecutive foreign frames into one scope
            prev_line = fr.f_lineno
            leaf_line = 0 if foreign else fr.f_lineno
            continue
        frames.append(Frame(proc=name, file=file, call_line=prev_line))
        prev_line = fr.f_lineno
        leaf_line = fr.f_lineno if not foreign else 0
    return frames, leaf_line

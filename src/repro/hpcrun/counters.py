"""Synthetic hardware performance counters and a simple machine model.

The paper's metrics come from hardware counters (PAPI_TOT_CYC, L1 data
cache misses, floating-point operations, …) unavailable in this setting,
so the workload simulator substitutes an explicit cost model: a kernel is
described by its operation mix — floating-point ops, memory references,
locality — and the model produces the counter vector a sampling run would
have attributed to it.

The model is deliberately first-order (issue-width-limited FLOPs, miss
penalties charged per level) — its purpose is to give the presentation
layer realistic, internally consistent multi-metric data, not to predict
absolute hardware numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import MetricTable

__all__ = [
    "CYCLES",
    "FLOPS",
    "L1_DCM",
    "L2_DCM",
    "INSTRUCTIONS",
    "STANDARD_COUNTERS",
    "MachineModel",
    "standard_metric_table",
]

#: canonical counter names, PAPI-style
CYCLES = "PAPI_TOT_CYC"
FLOPS = "PAPI_FP_OPS"
L1_DCM = "PAPI_L1_DCM"
L2_DCM = "PAPI_L2_DCM"
INSTRUCTIONS = "PAPI_TOT_INS"

STANDARD_COUNTERS: tuple[tuple[str, str], ...] = (
    (CYCLES, "cycles"),
    (FLOPS, "operations"),
    (L1_DCM, "misses"),
    (L2_DCM, "misses"),
    (INSTRUCTIONS, "instructions"),
)


def standard_metric_table() -> MetricTable:
    """A metric table pre-registered with the standard counters."""
    table = MetricTable()
    for name, unit in STANDARD_COUNTERS:
        table.add(name, unit=unit)
    return table


@dataclass(frozen=True)
class MachineModel:
    """First-order core + memory-hierarchy model.

    ``peak_flops_per_cycle`` is the number the paper's floating-point
    waste metric multiplies total cycles by (4 for the Opteron-class
    machines of the era).
    """

    peak_flops_per_cycle: float = 4.0
    l1_miss_penalty: float = 10.0      # cycles per L1 miss (hits in L2)
    l2_miss_penalty: float = 100.0     # cycles per L2 miss (to memory)
    instructions_per_flop: float = 1.5
    instructions_per_mem_ref: float = 1.0

    def kernel_costs(
        self,
        flops: float = 0.0,
        mem_refs: float = 0.0,
        l1_miss_rate: float = 0.0,
        l2_miss_fraction: float = 0.1,
        efficiency: float = 1.0,
        overhead_cycles: float = 0.0,
    ) -> dict[str, float]:
        """Counter vector for one kernel execution.

        ``efficiency`` is the fraction of peak floating-point throughput
        the kernel achieves computing its FLOPs (1.0 = peak); memory
        stalls are charged on top, so a streaming kernel with a high miss
        rate lands at a low *relative efficiency* under the paper's
        derived metric, exactly the Figure 6 situation.
        """
        if not (0.0 <= l1_miss_rate <= 1.0):
            raise ValueError(f"l1_miss_rate must be in [0,1], got {l1_miss_rate}")
        if not (0.0 <= l2_miss_fraction <= 1.0):
            raise ValueError(f"l2_miss_fraction must be in [0,1], got {l2_miss_fraction}")
        if efficiency <= 0.0:
            raise ValueError(f"efficiency must be positive, got {efficiency}")
        l1_misses = mem_refs * l1_miss_rate
        l2_misses = l1_misses * l2_miss_fraction
        compute_cycles = flops / (self.peak_flops_per_cycle * efficiency) if flops else 0.0
        stall_cycles = (
            l1_misses * self.l1_miss_penalty + l2_misses * self.l2_miss_penalty
        )
        cycles = compute_cycles + stall_cycles + overhead_cycles
        instructions = (
            flops * self.instructions_per_flop
            + mem_refs * self.instructions_per_mem_ref
        )
        out = {
            CYCLES: cycles,
            FLOPS: flops,
            L1_DCM: l1_misses,
            L2_DCM: l2_misses,
            INSTRUCTIONS: instructions,
        }
        return {k: v for k, v in out.items() if v != 0.0}

    def waste(self, cycles: float, flops: float) -> float:
        """The paper's floating-point waste for given totals."""
        return cycles * self.peak_flops_per_cycle - flops

    def relative_efficiency(self, cycles: float, flops: float) -> float:
        """Measured FLOPS / potential peak FLOPS."""
        peak = cycles * self.peak_flops_per_cycle
        return flops / peak if peak else 0.0

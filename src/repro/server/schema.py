"""Typed request/response schemas and the endpoint registry — the v1 API.

This module is the single source of truth for the service's public HTTP
surface:

* **request dataclasses** — every endpoint that reads fields parses its
  body through one of these, replacing the ad-hoc ``_field`` plumbing
  that grew in ``app.py``; validation semantics (types, ranges, error
  codes) are identical to the historical behaviour, which the fuzz and
  chaos suites pin;
* **response dataclasses** — the structured (non-cached) responses are
  built through typed wrappers whose ``to_payload`` produces exactly
  the wire shape; snapshot payloads (render, hot path) stay dicts for
  cacheability but their shape is documented here for the generated
  reference;
* **the endpoint registry** (:data:`ENDPOINTS`) — path templates,
  methods, handler names, schemas, and doc strings; the application
  builds its router from it, ``tools/gen_api_docs.py`` renders it into
  ``docs/api.md``, and ``tools/gen_api_surface.py`` snapshots it into
  the public-API drift test.

Versioning: the canonical mount point for every endpoint is
``/v1<path>``; the bare path is a deprecated alias that serves the
byte-identical body plus a ``Deprecation`` header (see
``docs/server.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields
from typing import Any, ClassVar

from repro.errors import BadRequest

__all__ = [
    "API_VERSION",
    "BinaryBody",
    "ENDPOINTS",
    "EndpointDef",
    "FieldSpec",
    "Operation",
    "RawBody",
    "REQUIRED",
    "DeriveMetricRequest",
    "DerivedMetricCreated",
    "DiffRequest",
    "EnsembleRequest",
    "FlattenResponse",
    "HotPathRequest",
    "HotPathResult",
    "MetricList",
    "MutationResponse",
    "OpenSessionRequest",
    "RenderRequest",
    "RenderResponse",
    "SessionClosed",
    "SessionInfoResponse",
    "SessionList",
    "SessionOpened",
    "SortRequest",
    "SortResponse",
    "TableRequest",
    "parse_fields",
]

#: the current (only) stable API version; endpoints mount at /v1/...
API_VERSION = "v1"

#: sentinel for fields with no default: omitting them is a 400
REQUIRED = object()


# --------------------------------------------------------------------- #
# raw (non-JSON) responses
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RawBody:
    """A non-JSON response body (the Prometheus ``/metrics`` text).

    The HTTP layer writes ``text`` verbatim with ``content_type``; the
    in-process :meth:`AnalysisApp.handle` compatibility surface wraps it
    in a JSON object so programmatic callers still get a dict.
    """

    content_type: str
    text: str

    def to_payload(self) -> dict:
        return {"content_type": self.content_type, "text": self.text}


@dataclass(frozen=True)
class BinaryBody:
    """A binary response body (the framed columnar table encoding).

    The HTTP layer writes ``data`` verbatim with ``content_type``; the
    in-process :meth:`AnalysisApp.handle` compatibility surface wraps it
    in a JSON object (base64) so programmatic callers still get a dict.
    """

    content_type: str
    data: bytes

    def to_payload(self) -> dict:
        import base64

        return {
            "content_type": self.content_type,
            "base64": base64.b64encode(self.data).decode("ascii"),
        }


# --------------------------------------------------------------------- #
# request field machinery
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FieldSpec:
    """One validated request field (type, default, range, docs)."""

    name: str
    kind: type
    default: Any = REQUIRED
    lo: float | None = None
    hi: float | None = None
    doc: str = ""
    choices: tuple[str, ...] | None = None

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    @property
    def type_name(self) -> str:
        return self.kind.__name__

    def extract(self, body: dict) -> Any:
        """Fetch and validate this field from a decoded body.

        ``bool`` is rejected where a number is expected (it *is* an
        ``int`` in Python, but ``{"depth": true}`` is a client bug, not
        depth 1).  ``None`` counts as absent.
        """
        value = body.get(self.name, REQUIRED)
        if value is REQUIRED or value is None:
            if self.default is REQUIRED:
                raise BadRequest(
                    f"missing required field {self.name!r}", code="missing-field"
                )
            return self.default
        ok = isinstance(value, self.kind)
        if self.kind is not bool and isinstance(value, bool):
            ok = False
        if (
            self.kind is float
            and isinstance(value, int)
            and not isinstance(value, bool)
        ):
            ok, value = True, float(value)
        if not ok:
            raise BadRequest(
                f"field {self.name!r} must be {self.kind.__name__}, "
                f"got {type(value).__name__}",
                code="bad-field-type",
            )
        if self.kind in (int, float) and (
            (self.lo is not None and value < self.lo)
            or (self.hi is not None and value > self.hi)
        ):
            raise BadRequest(
                f"field {self.name!r} must be in [{self.lo}, {self.hi}], "
                f"got {value!r}",
                code="bad-field-value",
            )
        return value


def parse_fields(body: dict, specs: tuple[FieldSpec, ...]) -> dict:
    """Extract every spec'd field from *body*, in declaration order."""
    return {spec.name: spec.extract(body) for spec in specs}


class _Request:
    """Base for request dataclasses: ``from_body`` drives the specs."""

    FIELDS: ClassVar[tuple[FieldSpec, ...]] = ()

    @classmethod
    def from_body(cls, body: dict):
        return cls(**parse_fields(body, cls.FIELDS))


# --------------------------------------------------------------------- #
# request schemas
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class OpenSessionRequest(_Request):
    """``POST /v1/sessions`` — open a database or synthetic workload.

    Exactly one of ``database`` / ``workload`` must be given.  The
    source-specific knobs are validated only on the branch they apply
    to, preserving the historical lenience for unrelated extras.
    """

    database: str | None
    workload: str | None
    salvage: bool = False
    nranks: int = 1
    seed: int = 12345

    FIELDS = (
        FieldSpec("database", str, default=None,
                  doc="path of an experiment database (.xml / .rpdb)"),
        FieldSpec("workload", str, default=None,
                  doc="bundled synthetic workload name",
                  choices=("fig1", "s3d", "moab", "pflotran")),
    )
    _DB_FIELDS = (
        FieldSpec("salvage", bool, default=False,
                  doc="recover a corrupted/truncated binary database "
                      "instead of failing"),
    )
    _WORKLOAD_FIELDS = (
        FieldSpec("nranks", int, default=1, lo=1, hi=256,
                  doc="simulated MPI ranks"),
        FieldSpec("seed", int, default=12345, doc="simulation seed"),
    )

    @classmethod
    def from_body(cls, body: dict) -> "OpenSessionRequest":
        base = parse_fields(body, cls.FIELDS)
        if (base["database"] is None) == (base["workload"] is None):
            raise BadRequest(
                "open a session with exactly one of 'database' or 'workload'",
                code="bad-session-source",
            )
        if base["database"] is not None:
            base.update(parse_fields(body, cls._DB_FIELDS))
        else:
            base.update(parse_fields(body, cls._WORKLOAD_FIELDS))
        return cls(**base)


@dataclass(frozen=True)
class RenderRequest(_Request):
    """``GET/POST /v1/sessions/<sid>/render`` — render one view."""

    view: str
    metric: str | None
    flavor: str | None
    descending: bool | None
    depth: int
    hot_path: bool
    threshold: float | None
    max_rows: int

    FIELDS = (
        FieldSpec("view", str, default="cct",
                  doc="which view to render",
                  choices=("cct", "calling-context", "callers", "flat")),
        FieldSpec("metric", str, default=None,
                  doc="metric column to sort by (default: session sort, "
                      "else first metric)"),
        FieldSpec("flavor", str, default=None,
                  doc="metric flavor for the sort column",
                  choices=("inclusive", "exclusive", "i", "e")),
        FieldSpec("descending", bool, default=None,
                  doc="sort direction (default: session sort, else true)"),
        FieldSpec("depth", int, default=3, lo=0, hi=1000,
                  doc="expansion depth of the tree-table"),
        FieldSpec("hot_path", bool, default=False,
                  doc="expand the hot path instead of a fixed depth"),
        FieldSpec("threshold", float, default=None,
                  doc="hot-path threshold in (0, 1] (default: session "
                      "preference)"),
        FieldSpec("max_rows", int, default=60, lo=1, hi=100_000,
                  doc="row cap of the rendered table"),
    )


@dataclass(frozen=True)
class TableRequest(_Request):
    """``GET/POST /v1/sessions/<sid>/table`` — one view as a data table.

    Same row set and order as a ``render`` of the same arguments, but
    shipped as data (scope names, depths, metric columns) instead of
    formatted text.  The response encoding is negotiated: JSON rows by
    default; ``Accept: application/x-repro-columnar`` selects the framed
    binary columnar encoding (see ``docs/server.md``).
    """

    view: str
    metric: str | None
    flavor: str | None
    descending: bool | None
    depth: int
    max_rows: int

    FIELDS = (
        FieldSpec("view", str, default="cct",
                  doc="which view to tabulate",
                  choices=("cct", "calling-context", "callers", "flat")),
        FieldSpec("metric", str, default=None,
                  doc="metric column to sort by (default: session sort, "
                      "else first metric)"),
        FieldSpec("flavor", str, default=None,
                  doc="metric flavor for the sort column",
                  choices=("inclusive", "exclusive", "i", "e")),
        FieldSpec("descending", bool, default=None,
                  doc="sort direction (default: session sort, else true)"),
        FieldSpec("depth", int, default=3, lo=0, hi=1000,
                  doc="expansion depth of the tree-table"),
        FieldSpec("max_rows", int, default=60, lo=1, hi=100_000,
                  doc="row cap of the table"),
    )


@dataclass(frozen=True)
class HotPathRequest(_Request):
    """``GET/POST /v1/sessions/<sid>/hotpath`` — Eq. 3 without a render."""

    view: str
    metric: str | None
    threshold: float | None

    FIELDS = (
        FieldSpec("view", str, default="cct",
                  doc="view to run hot-path analysis on",
                  choices=("cct", "calling-context", "callers", "flat")),
        FieldSpec("metric", str, default=None,
                  doc="metric to descend by (default: session sort, else "
                      "first metric)"),
        FieldSpec("threshold", float, default=None,
                  doc="hot-path threshold in (0, 1] (default: session "
                      "preference)"),
    )


@dataclass(frozen=True)
class SortRequest(_Request):
    """``POST /v1/sessions/<sid>/sort`` — set the session sort column."""

    metric: str
    flavor: str | None
    descending: bool

    FIELDS = (
        FieldSpec("metric", str, doc="metric name to sort by"),
        FieldSpec("flavor", str, default=None,
                  doc="metric flavor (default: inclusive)",
                  choices=("inclusive", "exclusive", "i", "e")),
        FieldSpec("descending", bool, default=True, doc="sort direction"),
    )


@dataclass(frozen=True)
class DeriveMetricRequest(_Request):
    """``POST /v1/sessions/<sid>/metrics`` — define a derived metric."""

    name: str
    formula: str
    unit: str

    FIELDS = (
        FieldSpec("name", str, doc="name of the new metric column"),
        FieldSpec("formula", str,
                  doc="spreadsheet-like formula over existing metrics"),
        FieldSpec("unit", str, default="", doc="display unit"),
    )


def _member_selector(body: dict, name: str, default):
    """Validate a member selector: an index, a member name, or 'mean'."""
    value = body.get(name, None)
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise BadRequest(
            f"field {name!r} must be a member index, a member name, or "
            f"'mean', got {type(value).__name__}",
            code="bad-field-type",
        )
    return value


def _member_paths(base: dict) -> None:
    """Validate the member lists of a diff/ensemble request in place."""
    for name in ("databases", "sessions"):
        paths = base.get(name)
        if paths is None:
            continue
        if len(paths) < 2:
            raise BadRequest(
                f"{name!r} needs at least two members, got {len(paths)}",
                code="bad-diff-members",
            )
        if not all(isinstance(p, str) for p in paths):
            raise BadRequest(
                f"{name!r} entries must all be strings",
                code="bad-diff-members",
            )
        base[name] = list(paths)


@dataclass(frozen=True)
class DiffRequest(_Request):
    """``GET/POST /v1/diff`` — align members and serve a diff view.

    Members come from exactly one of ``databases`` (paths, streamed
    one at a time) or ``sessions`` (open session ids).  ``baseline``
    and ``target`` select members by index, name, or ``"mean"`` (the
    corpus mean — baseline-vs-corpus diffing); the diff's per-scope
    values are ``target - factor * baseline``, re-attributed, rendered
    through the requested view.  ``detect`` additionally runs the
    regression detector and reports structured findings.
    """

    databases: list | None
    sessions: list | None
    baseline: object
    target: object
    factor: float
    metric: str | None
    flavor: str | None
    view: str
    depth: int
    max_rows: int
    descending: bool
    salvage: bool
    detect: bool
    threshold: float
    sigma: float
    min_share: float

    FIELDS = (
        FieldSpec("databases", list, default=None,
                  doc="experiment database paths to align "
                      "(.xml / .rpdb / .rpstore)"),
        FieldSpec("sessions", list, default=None,
                  doc="open session ids to align"),
        FieldSpec("factor", float, default=1.0, lo=1e-12,
                  doc="baseline scale factor (Section VI-A "
                      "scale-and-subtract)"),
        FieldSpec("metric", str, default=None,
                  doc="raw metric to diff and sort by (default: first)"),
        FieldSpec("flavor", str, default=None,
                  doc="metric flavor for the sort column",
                  choices=("inclusive", "exclusive", "i", "e")),
        FieldSpec("view", str, default="flat",
                  doc="view to render the diff through",
                  choices=("cct", "calling-context", "callers", "flat")),
        FieldSpec("depth", int, default=3, lo=0, hi=1000,
                  doc="expansion depth of the diff table"),
        FieldSpec("max_rows", int, default=60, lo=1, hi=100_000,
                  doc="row cap of the diff table"),
        FieldSpec("descending", bool, default=True, doc="sort direction"),
        FieldSpec("salvage", bool, default=False,
                  doc="salvage corrupted/truncated binary members "
                      "instead of failing"),
        FieldSpec("detect", bool, default=True,
                  doc="run the regression detector and report findings"),
        FieldSpec("threshold", float, default=0.02, lo=0.0, hi=1.0,
                  doc="absolute inclusive-share shift that flags a scope"),
        FieldSpec("sigma", float, default=3.0, lo=0.0,
                  doc="flag shifts beyond this many standard deviations "
                      "of the baseline corpus (0 disables the rule)"),
        FieldSpec("min_share", float, default=0.005, lo=0.0, hi=1.0,
                  doc="ignore scopes under this share on both sides"),
    )

    @classmethod
    def from_body(cls, body: dict) -> "DiffRequest":
        base = parse_fields(body, cls.FIELDS)
        if (base["databases"] is None) == (base["sessions"] is None):
            raise BadRequest(
                "diff members come from exactly one of 'databases' or "
                "'sessions'",
                code="bad-diff-members",
            )
        _member_paths(base)
        base["baseline"] = _member_selector(body, "baseline", 0)
        base["target"] = _member_selector(body, "target", -1)
        return cls(**base)


@dataclass(frozen=True)
class EnsembleRequest(_Request):
    """``GET/POST /v1/ensemble`` — open N databases as an ensemble session.

    Aligns the databases into a union-CCT experiment (member sums),
    attaches per-scope mean/min/max/stddev columns over the members
    (``stats``: ``"all"`` raw metrics, ``"none"``, or one metric name),
    and registers it as a regular session — every session endpoint
    (render/table/hotpath/metrics/...) works on it from there.
    """

    databases: list
    salvage: bool
    stats: str
    label: str | None

    FIELDS = (
        FieldSpec("databases", list,
                  doc="experiment database paths to align "
                      "(.xml / .rpdb / .rpstore; at least two)"),
        FieldSpec("salvage", bool, default=False,
                  doc="salvage corrupted/truncated binary members "
                      "instead of failing"),
        FieldSpec("stats", str, default="all",
                  doc="ensemble stat columns to attach: 'all', 'none', "
                      "or one raw metric name"),
        FieldSpec("label", str, default=None,
                  doc="session label (default: ensemble:<n>)"),
    )

    @classmethod
    def from_body(cls, body: dict) -> "EnsembleRequest":
        base = parse_fields(body, cls.FIELDS)
        _member_paths(base)
        return cls(**base)


@dataclass(frozen=True)
class CorpusUploadRequest(_Request):
    """``POST /v1/corpus/<tenant>/profiles`` — ingest one profile.

    The payload comes from exactly one of ``data`` (a base64-encoded
    ``.rpdb``) or ``path`` (a server-side database file or ``.rpstore``
    directory).  Uploads are validated through the salvage loader
    before anything is journaled: a corrupt payload is refused unless
    ``salvage`` is set, in which case the recovered prefix is
    re-serialized and stored clean.
    """

    name: str | None
    data: str | None
    path: str | None
    group: str | None
    meta: dict | None
    salvage: bool

    FIELDS = (
        FieldSpec("name", str, default=None,
                  doc="profile display name (required for base64 uploads; "
                      "defaults to the file name for path ingests)"),
        FieldSpec("data", str, default=None,
                  doc="base64-encoded .rpdb payload"),
        FieldSpec("path", str, default=None,
                  doc="server-side database file or .rpstore directory "
                      "to ingest"),
        FieldSpec("group", str, default=None,
                  doc="compaction group tag (grouped single-rank uploads "
                      "auto-merge into one .rpstore)"),
        FieldSpec("meta", dict, default=None,
                  doc="searchable key/value metadata (short scalars, "
                      "at most 32 keys)"),
        FieldSpec("salvage", bool, default=False,
                  doc="accept a corrupted upload by storing what the "
                      "salvage loader recovers"),
    )

    @classmethod
    def from_body(cls, body: dict) -> "CorpusUploadRequest":
        base = parse_fields(body, cls.FIELDS)
        if (base["data"] is None) == (base["path"] is None):
            raise BadRequest(
                "upload exactly one of 'data' (base64) or 'path'",
                code="bad-upload-source",
            )
        if base["data"] is not None and base["name"] is None:
            raise BadRequest(
                "base64 uploads need a 'name'", code="missing-field"
            )
        return cls(**base)


@dataclass(frozen=True)
class CorpusSearchRequest(_Request):
    """``GET /v1/corpus/<tenant>/profiles`` — list / search filters.

    ``meta.<key>=<value>`` query parameters additionally filter on
    metadata equality (subset match); they bypass the field specs and
    are read by the handler.
    """

    name: str | None
    group: str | None

    FIELDS = (
        FieldSpec("name", str, default=None,
                  doc="substring match on profile name"),
        FieldSpec("group", str, default=None, doc="exact group tag match"),
    )


@dataclass(frozen=True)
class QueryRequest(_Request):
    """``GET/POST /v1/query`` — run a call-path query or a diagnosis.

    The target is exactly one of ``session`` (an open session) or
    ``tenant`` (the profile corpus).  Corpus targets take three forms:
    with ``profile``, one stored profile is opened, queried, and
    released; with ``diagnose``, the rule set (load imbalance, scaling
    loss, hot-path drift) streams over every profile of the tenant one
    at a time; otherwise the query itself streams over every profile
    and the response carries one result table per profile.  ``query``
    is the :meth:`repro.query.Query.to_spec` shape (a bare string is
    accepted as ``{"pattern": ...}``).
    """

    session: str | None
    tenant: str | None
    profile: str | None
    query: dict | None
    diagnose: bool
    metric: str | None
    baseline: str | None
    rank_cov: float
    scaling_floor: float
    drift_share: float
    salvage: bool

    FIELDS = (
        FieldSpec("session", str, default=None,
                  doc="open session id to query"),
        FieldSpec("tenant", str, default=None,
                  doc="corpus tenant to query (corpus mode)"),
        FieldSpec("profile", str, default=None,
                  doc="corpus profile id (with 'tenant': query one "
                      "stored profile instead of the whole tenant)"),
        FieldSpec("query", dict, default=None,
                  doc="query spec (repro.query Query.to_spec() shape; "
                      "a bare pattern string is accepted)"),
        FieldSpec("diagnose", bool, default=False,
                  doc="corpus mode: run the diagnosis rules over the "
                      "tenant instead of a query"),
        FieldSpec("metric", str, default=None,
                  doc="diagnosis metric (default: the cycle counter of "
                      "the first profile, else its first metric)"),
        FieldSpec("baseline", str, default=None,
                  doc="diagnosis hot-path baseline profile id (default: "
                      "each group's first member)"),
        FieldSpec("rank_cov", float, default=0.10, lo=0.0,
                  doc="load-imbalance coefficient-of-variation threshold"),
        FieldSpec("scaling_floor", float, default=0.8, lo=0.0, hi=1.0,
                  doc="scaling-loss parallel-efficiency floor"),
        FieldSpec("drift_share", float, default=0.05, lo=0.0, hi=1.0,
                  doc="hot-path drift hotspot-share threshold"),
        FieldSpec("salvage", bool, default=False,
                  doc="salvage stored payloads that no longer load "
                      "strictly"),
    )

    @classmethod
    def from_body(cls, body: dict) -> "QueryRequest":
        if isinstance(body.get("query"), str):
            # GET ?query=main shorthand: a bare pattern string
            body = dict(body)
            body["query"] = {"pattern": body["query"]}
        base = parse_fields(body, cls.FIELDS)
        if (base["session"] is None) == (base["tenant"] is None):
            raise BadRequest(
                "query target is exactly one of 'session' or 'tenant'",
                code="bad-query",
            )
        if base["profile"] is not None and base["tenant"] is None:
            raise BadRequest("'profile' requires 'tenant'", code="bad-query")
        if base["diagnose"]:
            if base["tenant"] is None:
                raise BadRequest(
                    "'diagnose' requires 'tenant'", code="bad-query"
                )
        elif base["query"] is None:
            raise BadRequest("missing 'query' spec", code="bad-query")
        return cls(**base)


@dataclass(frozen=True)
class TraceRequest(_Request):
    """``GET/POST /v1/trace`` — windowed views over a trace store.

    ``path`` names a time-partitioned trace store on disk (the
    ``.rpstore`` directory or its ``trace/`` subdirectory).  ``view``
    selects the product: ``flame`` renders per-depth span arrays for a
    flame chart over the window (columnar wire negotiation like
    ``/table``); ``series`` renders the time-binned idleness/imbalance
    series (JSON only).
    """

    path: str
    view: str
    t0: float | None
    t1: float | None
    rank: int
    metric: str | None
    bins: int
    max_spans: int

    FIELDS = (
        FieldSpec("path", str,
                  doc="trace store directory (.rpstore or its trace/ "
                      "subdirectory)"),
        FieldSpec("view", str, default="flame", choices=("flame", "series"),
                  doc="'flame': per-depth span slab; 'series': time-binned "
                      "idleness/imbalance"),
        FieldSpec("t0", float, default=None,
                  doc="window start in trace seconds (default: trace begin)"),
        FieldSpec("t1", float, default=None,
                  doc="window end, exclusive (default: trace end)"),
        FieldSpec("rank", int, default=0, lo=0,
                  doc="flame view: which rank's timeline to render"),
        FieldSpec("metric", str, default=None,
                  doc="flame view: span-value metric (default: the trace's "
                      "time metric)"),
        FieldSpec("bins", int, default=32, lo=1, hi=4096,
                  doc="series view: number of time bins"),
        FieldSpec("max_spans", int, default=2000, lo=1, hi=1_000_000,
                  doc="flame view: span budget; deepest spans are dropped "
                      "first and the response is marked truncated"),
    )

    @classmethod
    def from_body(cls, body: dict) -> "TraceRequest":
        base = parse_fields(body, cls.FIELDS)
        if base["view"] not in ("flame", "series"):
            raise BadRequest(
                f"trace view must be 'flame' or 'series', "
                f"got {base['view']!r}",
                code="bad-trace-view",
            )
        return cls(**base)


@dataclass(frozen=True)
class CorpusOpenRequest(_Request):
    """``POST /v1/corpus/<tenant>/profiles/<pid>/open`` — open-by-id."""

    salvage: bool
    sid: str | None

    FIELDS = (
        FieldSpec("salvage", bool, default=False,
                  doc="salvage the stored payload instead of failing if "
                      "it no longer loads strictly"),
        FieldSpec("sid", str, default=None,
                  doc="claim this session id instead of allocating one; "
                      "pass it as a query parameter (?sid=...) so a "
                      "worker pool can route the open — and every "
                      "follow-up session request — to the same worker "
                      "by session affinity (409 if already in use)"),
    )


@dataclass(frozen=True)
class CorpusCompactRequest(_Request):
    """``POST /v1/corpus/<tenant>/compact`` — run compaction now."""

    group: str | None
    min_sources: int

    FIELDS = (
        FieldSpec("group", str, default=None,
                  doc="compact only this group (default: every eligible "
                      "group of the tenant)"),
        FieldSpec("min_sources", int, default=2, lo=2, hi=10_000,
                  doc="minimum group members before a merge is worthwhile"),
    )


@dataclass(frozen=True)
class CorpusPolicyRequest(_Request):
    """``POST /v1/corpus/<tenant>/policy`` — set retention limits.

    Omitted fields are unlimited; the posted policy *replaces* the
    tenant's previous one and is enforced immediately.
    """

    max_bytes: int | None
    max_profiles: int | None
    ttl_s: float | None

    FIELDS = (
        FieldSpec("max_bytes", int, default=None, lo=1,
                  doc="total committed payload bytes allowed for the "
                      "tenant"),
        FieldSpec("max_profiles", int, default=None, lo=1,
                  doc="committed profile count allowed for the tenant"),
        FieldSpec("ttl_s", float, default=None, lo=0.0,
                  doc="seconds after commit at which a profile expires"),
    )


# --------------------------------------------------------------------- #
# response schemas
# --------------------------------------------------------------------- #
class _Response:
    """Base for response dataclasses: ``to_payload`` drops ``None``
    optionals so wire shapes match the historical dict plumbing."""

    def to_payload(self) -> dict:
        out = {}
        for f in dc_fields(self):
            value = getattr(self, f.name)
            if value is None and f.metadata.get("omit_none"):
                continue
            out[f.name] = value
        return out


def _optional():
    return field(default=None, metadata={"omit_none": True})


@dataclass(frozen=True)
class SessionList(_Response):
    """``GET /v1/sessions`` — info blocks of every resident session."""

    sessions: list


@dataclass(frozen=True)
class SessionOpened(_Response):
    """``POST /v1/sessions`` (201) — the new session's info block;
    ``load_report`` appears only for salvage loads."""

    session: dict
    load_report: dict | None = _optional()


@dataclass(frozen=True)
class SessionInfoResponse(_Response):
    """``GET /v1/sessions/<sid>`` — one session's info block."""

    session: dict


@dataclass(frozen=True)
class SessionClosed(_Response):
    """``DELETE /v1/sessions/<sid>`` — the id that was closed."""

    closed: str


@dataclass(frozen=True)
class MetricList(_Response):
    """``GET /v1/sessions/<sid>/metrics`` — the metric table."""

    metrics: list


@dataclass(frozen=True)
class DerivedMetricCreated(_Response):
    """``POST /v1/sessions/<sid>/metrics`` (201) — the new descriptor
    and the session generation after the mutation."""

    metric: dict
    generation: int


@dataclass(frozen=True)
class SortResponse(_Response):
    """``POST /v1/sessions/<sid>/sort`` — the sort spec now in effect."""

    sort: dict


@dataclass(frozen=True)
class MutationResponse(_Response):
    """``POST /v1/sessions/<sid>/flatten|unflatten`` — new flatten depth
    and the session generation after the mutation."""

    flatten_depth: int
    generation: int


@dataclass(frozen=True)
class FlattenResponse(MutationResponse):
    """Alias kept for symmetry with the docs."""


@dataclass(frozen=True)
class RenderResponse(_Response):
    """``GET/POST /v1/sessions/<sid>/render`` — a rendered tree-table.

    ``hot_path`` appears only when the request asked for hot-path
    expansion.  (Served from the render cache; the cached snapshot is
    exactly ``{view, text[, hot_path]}`` and ``session`` is stamped per
    request.)
    """

    view: str
    text: str
    session: str
    hot_path: dict | None = _optional()


@dataclass(frozen=True)
class HotPathResult(_Response):
    """``GET/POST /v1/sessions/<sid>/hotpath`` — the Eq. 3 descent."""

    view: str
    metric: str
    threshold: float
    path: list
    values: list
    hotspot: str


@dataclass(frozen=True)
class CorpusInfo(_Response):
    """``GET /v1/corpus`` — catalog stats (tenants, bytes, policies)."""

    corpus: dict


@dataclass(frozen=True)
class ProfileList(_Response):
    """``GET /v1/corpus/<tenant>/profiles`` — matching entries."""

    tenant: str
    profiles: list


@dataclass(frozen=True)
class ProfileIngested(_Response):
    """``POST /v1/corpus/<tenant>/profiles`` (201) — the committed entry."""

    profile: dict


@dataclass(frozen=True)
class ProfileInfo(_Response):
    """``GET /v1/corpus/<tenant>/profiles/<pid>`` — one entry."""

    profile: dict


@dataclass(frozen=True)
class ProfileDeleted(_Response):
    """``DELETE /v1/corpus/<tenant>/profiles/<pid>`` — what was removed."""

    tenant: str
    deleted: str


@dataclass(frozen=True)
class CorpusOpened(_Response):
    """``POST .../profiles/<pid>/open`` (201) — session + its profile."""

    session: dict
    profile: dict
    load_report: dict | None = _optional()


@dataclass(frozen=True)
class CompactionReport(_Response):
    """``POST /v1/corpus/<tenant>/compact`` — stores created this sweep."""

    tenant: str
    compacted: list


@dataclass(frozen=True)
class PolicyResponse(_Response):
    """``GET/POST /v1/corpus/<tenant>/policy`` — the policy in effect;
    ``evicted`` appears when setting it evicted profiles immediately."""

    tenant: str
    policy: dict
    evicted: list | None = _optional()


# --------------------------------------------------------------------- #
# the endpoint registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Operation:
    """One method on one endpoint."""

    method: str
    handler: str                 #: AnalysisApp attribute name
    summary: str
    request: type | None = None  #: request dataclass (None: no body read)
    response: type | None = None #: response dataclass (None: raw/dict)
    status: int = 200
    errors: tuple[str, ...] = ()


@dataclass(frozen=True)
class EndpointDef:
    """One path template and the operations mounted on it."""

    path: str                    #: canonical label, e.g. "/sessions/<sid>/render"
    ops: tuple[Operation, ...]
    admission_exempt: bool = False
    raw: bool = False            #: serves a non-JSON body (RawBody)

    @property
    def segments(self) -> tuple[str, ...]:
        return tuple(s for s in self.path.split("/") if s)

    def methods(self) -> tuple[str, ...]:
        return tuple(op.method for op in self.ops)


ENDPOINTS: tuple[EndpointDef, ...] = (
    EndpointDef("/", ops=(
        Operation("GET", "_ep_help", "service and endpoint listing"),
    )),
    EndpointDef("/healthz", admission_exempt=True, ops=(
        Operation("GET", "_ep_healthz",
                  "liveness + readiness probe (503 with a reason when "
                  "shedding)", errors=("overloaded",)),
    )),
    EndpointDef("/stats", admission_exempt=True, ops=(
        Operation("GET", "_ep_stats",
                  "request counters, latency aggregates, cache and "
                  "session stats, slow-request ring"),
    )),
    EndpointDef("/metrics", admission_exempt=True, raw=True, ops=(
        Operation("GET", "_ep_prometheus",
                  "service counters and latency histograms in Prometheus "
                  "text exposition format"),
    )),
    EndpointDef("/diff", ops=(
        Operation("GET", "_ep_diff",
                  "align N experiments and serve a pairwise or "
                  "baseline-vs-corpus diff view with regression findings "
                  "(JSON rows, or the framed columnar encoding via Accept "
                  "negotiation)",
                  request=DiffRequest,
                  errors=("bad-diff-members", "bad-metric", "bad-view-kind",
                          "bad-flavor", "unknown-database",
                          "unknown-session", "unknown-metric",
                          "bad-database")),
        Operation("POST", "_ep_diff",
                  "align N experiments and serve a pairwise or "
                  "baseline-vs-corpus diff view with regression findings "
                  "(JSON rows, or the framed columnar encoding via Accept "
                  "negotiation)",
                  request=DiffRequest,
                  errors=("bad-diff-members", "bad-metric", "bad-view-kind",
                          "bad-flavor", "unknown-database",
                          "unknown-session", "unknown-metric",
                          "bad-database")),
    )),
    EndpointDef("/ensemble", ops=(
        Operation("GET", "_ep_ensemble",
                  "align N experiment databases into a union-CCT ensemble "
                  "session with per-scope member statistics",
                  request=EnsembleRequest, status=201,
                  errors=("bad-diff-members", "bad-metric",
                          "unknown-database", "bad-database")),
        Operation("POST", "_ep_ensemble",
                  "align N experiment databases into a union-CCT ensemble "
                  "session with per-scope member statistics",
                  request=EnsembleRequest, status=201,
                  errors=("bad-diff-members", "bad-metric",
                          "unknown-database", "bad-database")),
    )),
    EndpointDef("/query", ops=(
        Operation("GET", "_ep_query",
                  "run a composable call-path query against an open "
                  "session or the profile corpus, or a corpus-wide "
                  "diagnosis (JSON rows, or the framed columnar encoding "
                  "via Accept negotiation for single-target queries)",
                  request=QueryRequest,
                  errors=("bad-query", "unknown-session", "unknown-metric",
                          "no-corpus", "unknown-profile", "bad-database")),
        Operation("POST", "_ep_query",
                  "run a composable call-path query against an open "
                  "session or the profile corpus, or a corpus-wide "
                  "diagnosis (JSON rows, or the framed columnar encoding "
                  "via Accept negotiation for single-target queries)",
                  request=QueryRequest,
                  errors=("bad-query", "unknown-session", "unknown-metric",
                          "no-corpus", "unknown-profile", "bad-database")),
    )),
    EndpointDef("/trace", ops=(
        Operation("GET", "_ep_trace",
                  "windowed views over a time-partitioned trace store: "
                  "per-depth flame-chart span slabs (JSON rows, or the "
                  "framed columnar encoding via Accept negotiation) or a "
                  "time-binned idleness/imbalance series",
                  request=TraceRequest,
                  errors=("unknown-trace", "trace-error", "trace-corrupt",
                          "bad-trace-view", "unknown-metric")),
        Operation("POST", "_ep_trace",
                  "windowed views over a time-partitioned trace store: "
                  "per-depth flame-chart span slabs (JSON rows, or the "
                  "framed columnar encoding via Accept negotiation) or a "
                  "time-binned idleness/imbalance series",
                  request=TraceRequest,
                  errors=("unknown-trace", "trace-error", "trace-corrupt",
                          "bad-trace-view", "unknown-metric")),
    )),
    EndpointDef("/corpus", ops=(
        Operation("GET", "_ep_corpus_info",
                  "corpus catalog stats: tenants, profile counts and "
                  "bytes, retention policies, compaction counters",
                  response=CorpusInfo, errors=("no-corpus",)),
    )),
    EndpointDef("/corpus/<tenant>/profiles", ops=(
        Operation("GET", "_ep_corpus_list",
                  "list / search a tenant's committed profiles (name "
                  "substring, group tag, meta.<key> equality filters)",
                  request=CorpusSearchRequest, response=ProfileList,
                  errors=("no-corpus", "corpus-error")),
        Operation("POST", "_ep_corpus_upload",
                  "ingest one profile (base64 .rpdb payload or a "
                  "server-side file/store path): staged, validated by "
                  "the salvage loader, fsynced, journaled — crash-safe "
                  "at every instruction boundary",
                  request=CorpusUploadRequest, response=ProfileIngested,
                  status=201,
                  errors=("no-corpus", "bad-upload-source",
                          "bad-upload-encoding", "bad-database",
                          "corpus-error")),
    )),
    EndpointDef("/corpus/<tenant>/profiles/<pid>", ops=(
        Operation("GET", "_ep_corpus_profile",
                  "one committed profile's entry (checksums, provenance, "
                  "metadata)",
                  response=ProfileInfo,
                  errors=("no-corpus", "unknown-profile")),
        Operation("DELETE", "_ep_corpus_delete",
                  "durably delete a committed profile (journal record "
                  "first, then unlink); refused with 409 while an open "
                  "session pins it",
                  response=ProfileDeleted,
                  errors=("no-corpus", "unknown-profile", "profile-pinned")),
    )),
    EndpointDef("/corpus/<tenant>/profiles/<pid>/open", ops=(
        Operation("POST", "_ep_corpus_open",
                  "open a committed profile as a regular analysis session "
                  "(checksum-verified first, pinned against eviction "
                  "until the session closes)",
                  request=CorpusOpenRequest, response=CorpusOpened,
                  status=201,
                  errors=("no-corpus", "unknown-profile", "corpus-corrupt",
                          "bad-database")),
    )),
    EndpointDef("/corpus/<tenant>/compact", ops=(
        Operation("POST", "_ep_corpus_compact",
                  "merge grouped single-rank uploads into .rpstore column "
                  "stores now (the background worker's sweep, run "
                  "synchronously)",
                  request=CorpusCompactRequest, response=CompactionReport,
                  errors=("no-corpus", "corpus-error", "profile-pinned")),
    )),
    EndpointDef("/corpus/<tenant>/policy", ops=(
        Operation("GET", "_ep_corpus_policy",
                  "the tenant's retention policy",
                  response=PolicyResponse, errors=("no-corpus",)),
        Operation("POST", "_ep_corpus_policy_set",
                  "set the tenant's retention policy (a journaled catalog "
                  "fact, not server config) and enforce it immediately",
                  request=CorpusPolicyRequest, response=PolicyResponse,
                  errors=("no-corpus", "corpus-error")),
    )),
    EndpointDef("/sessions", ops=(
        Operation("GET", "_ep_sessions_list", "list open sessions",
                  response=SessionList),
        Operation("POST", "_ep_sessions_open",
                  "open a session from a database path or a bundled "
                  "synthetic workload",
                  request=OpenSessionRequest, response=SessionOpened,
                  status=201,
                  errors=("bad-session-source", "unknown-database",
                          "unknown-workload", "bad-database")),
    )),
    EndpointDef("/sessions/<sid>", ops=(
        Operation("GET", "_ep_session_info", "one session's info block",
                  response=SessionInfoResponse, errors=("unknown-session",)),
        Operation("DELETE", "_ep_session_close", "close a session",
                  response=SessionClosed, errors=("unknown-session",)),
    )),
    EndpointDef("/sessions/<sid>/metrics", ops=(
        Operation("GET", "_ep_metrics_list", "the session's metric table",
                  response=MetricList, errors=("unknown-session",)),
        Operation("POST", "_ep_metrics_derive",
                  "define a derived metric from a formula",
                  request=DeriveMetricRequest, response=DerivedMetricCreated,
                  status=201,
                  errors=("unknown-session", "bad-formula", "bad-metric",
                          "unknown-metric")),
    )),
    EndpointDef("/sessions/<sid>/sort", ops=(
        Operation("POST", "_ep_sort", "set the session's sort column",
                  request=SortRequest, response=SortResponse,
                  errors=("unknown-session", "unknown-metric", "bad-flavor")),
    )),
    EndpointDef("/sessions/<sid>/hotpath", ops=(
        Operation("GET", "_ep_hotpath", "hot path analysis (Eq. 3)",
                  request=HotPathRequest, response=HotPathResult,
                  errors=("unknown-session", "bad-view-kind",
                          "unknown-metric")),
        Operation("POST", "_ep_hotpath", "hot path analysis (Eq. 3)",
                  request=HotPathRequest, response=HotPathResult,
                  errors=("unknown-session", "bad-view-kind",
                          "unknown-metric")),
    )),
    EndpointDef("/sessions/<sid>/flatten", ops=(
        Operation("POST", "_ep_flatten",
                  "flatten the Flat View one level",
                  response=MutationResponse,
                  errors=("unknown-session", "bad-view-operation")),
    )),
    EndpointDef("/sessions/<sid>/unflatten", ops=(
        Operation("POST", "_ep_unflatten", "undo one flatten",
                  response=MutationResponse,
                  errors=("unknown-session", "bad-view-operation")),
    )),
    EndpointDef("/sessions/<sid>/table", ops=(
        Operation("GET", "_ep_table",
                  "one view as a data table (JSON rows, or the framed "
                  "columnar encoding via Accept negotiation)",
                  request=TableRequest,
                  errors=("unknown-session", "bad-view-kind", "bad-flavor",
                          "unknown-metric", "no-metrics")),
        Operation("POST", "_ep_table",
                  "one view as a data table (JSON rows, or the framed "
                  "columnar encoding via Accept negotiation)",
                  request=TableRequest,
                  errors=("unknown-session", "bad-view-kind", "bad-flavor",
                          "unknown-metric", "no-metrics")),
    )),
    EndpointDef("/sessions/<sid>/render", ops=(
        Operation("GET", "_ep_render", "render one view as a tree-table",
                  request=RenderRequest, response=RenderResponse,
                  errors=("unknown-session", "bad-view-kind", "bad-flavor",
                          "unknown-metric", "no-metrics")),
        Operation("POST", "_ep_render", "render one view as a tree-table",
                  request=RenderRequest, response=RenderResponse,
                  errors=("unknown-session", "bad-view-kind", "bad-flavor",
                          "unknown-metric", "no-metrics")),
    )),
)
